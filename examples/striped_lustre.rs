//! Lustre-style striping: write bandwidth scales with stripe count.
//!
//! The paper ran on a Lustre file system, which stripes each file across
//! object storage targets. This example writes the same MSP fragment
//! through 1, 2, 4, and 8 simulated OSTs and shows the end-to-end write
//! time dropping as device transfers overlap.
//!
//! ```sh
//! cargo run --release --example striped_lustre
//! ```

use artsparse::patterns::{Dataset, Pattern, PatternParams};
use artsparse::storage::{SimulatedDisk, StorageEngine, StripedBackend};
use artsparse::{FormatKind, Shape};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shape = Shape::new(vec![512, 512])?;
    let ds = Dataset::generate(Pattern::Msp, shape.clone(), PatternParams::default());
    let values = ds.values();
    println!(
        "dataset: {} ({} points, ~{} KiB fragment)\n",
        ds.label(),
        ds.nnz(),
        ds.nnz() * 16 / 1024
    );

    // Each simulated OST: 50 MiB/s, 0.2 ms per op.
    let make_ost = || SimulatedDisk::new(50.0 * (1 << 20) as f64, Duration::from_micros(200));

    println!("{:<8} {:>10} {:>12}", "stripes", "write s", "speedup");
    let mut baseline = None;
    for stripes in [1usize, 2, 4, 8] {
        let backend = StripedBackend::new((0..stripes).map(|_| make_ost()).collect(), 1 << 16);
        let engine = StorageEngine::open(backend, FormatKind::Linear, shape.clone(), 8)?;
        let report = engine.write_points::<f64>(&ds.coords, &values)?;
        let secs = report.breakdown.write;
        let speedup = baseline.get_or_insert(secs).max(1e-12) / secs.max(1e-12);
        println!("{stripes:<8} {secs:>10.4} {speedup:>11.1}x");

        // Reads reassemble correctly from the stripes.
        let q = ds.read_region().to_coords();
        let hits = engine
            .read_values::<f64>(&q)?
            .iter()
            .filter(|v| v.is_some())
            .count();
        assert!(hits > 0, "striped read must find the region's points");
    }
    println!("\nstriping overlaps per-OST transfer time, like Lustre");
    Ok(())
}
