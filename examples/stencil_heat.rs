//! TSP scenario: the banded matrix of a 1D heat-equation stencil.
//!
//! A finite-difference discretization of `∂u/∂t = α ∂²u/∂x²` produces a
//! tridiagonal system matrix — exactly the paper's TSP pattern (§III cites
//! stencil computing as a TSP source). We assemble the matrix as a sparse
//! 2D tensor, persist it through the fragment engine, read the band back,
//! and run a few Jacobi iterations from the stored matrix.
//!
//! ```sh
//! cargo run --release --example stencil_heat
//! ```

use artsparse::storage::{MemBackend, StorageEngine};
use artsparse::{CoordBuffer, FormatKind, Region, Shape};

const N: u64 = 1024; // grid points
const ALPHA: f64 = 0.1; // diffusion coefficient × dt/dx²

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Assemble the tridiagonal stencil matrix A = I + α·L row by row.
    let shape = Shape::new(vec![N, N])?;
    let mut coords = CoordBuffer::new(2);
    let mut values = Vec::new();
    for i in 0..N {
        if i > 0 {
            coords.push(&[i, i - 1])?;
            values.push(ALPHA);
        }
        coords.push(&[i, i])?;
        values.push(1.0 - 2.0 * ALPHA);
        if i + 1 < N {
            coords.push(&[i, i + 1])?;
            values.push(ALPHA);
        }
    }
    println!(
        "stencil matrix: {}x{}, {} nonzeros ({:.3}% dense)",
        N,
        N,
        values.len(),
        100.0 * values.len() as f64 / (N * N) as f64
    );

    // Persist under GCSR++ — rows are the natural access unit of SpMV.
    let engine = StorageEngine::open(MemBackend::new(), FormatKind::GcsrPP, shape, 8)?;
    let report = engine.write_points::<f64>(&coords, &values)?;
    println!(
        "fragment {}: {} bytes (build {:.4}s)",
        report.fragment, report.total_bytes, report.breakdown.build
    );

    // Jacobi iterations: u ← A·u, reading each row's band from storage.
    let mut u: Vec<f64> = (0..N)
        .map(|i| {
            if (N / 4..3 * N / 4).contains(&i) {
                1.0
            } else {
                0.0
            }
        })
        .collect();
    for step in 0..5 {
        let mut next = vec![0.0f64; N as usize];
        for i in 0..N {
            // The row's band lives in [i-1, i+1] × matrix width.
            let lo = i.saturating_sub(1);
            let hi = (i + 1).min(N - 1);
            let row_band = Region::from_corners(&[i, lo], &[i, hi])?;
            let read = engine.read_region(&row_band)?;
            for hit in &read.hits {
                let j = hit.coord[1] as usize;
                let a = f64::from_le_bytes(hit.value.as_slice().try_into()?);
                next[i as usize] += a * u[j];
            }
        }
        u = next;
        let total: f64 = u.iter().sum();
        println!("step {step}: mass = {total:.6}");
    }

    // Diffusion conserves mass (interior) and flattens the profile.
    let mid = u[(N / 2) as usize];
    let edge = u[0];
    assert!(mid > edge, "profile should stay peaked in the middle");
    println!("u[mid]={mid:.4}, u[edge]={edge:.4} — diffusion behaves");
    Ok(())
}
