//! MSP scenario: LCLS-II-style detector frames.
//!
//! The paper's MSP pattern comes from the Linac Coherent Light Source
//! experiment (§III [29]): each detector frame is mostly empty, with a
//! dense illuminated region plus scattered hot pixels. We write a sequence
//! of frames as fragments (one WRITE per frame — exactly Algorithm 3's
//! fragment-per-write model), then run region-of-interest reads across
//! all fragments through the simulated parallel file system.
//!
//! ```sh
//! cargo run --release --example lcls_detector
//! ```

use artsparse::patterns::{Dataset, Pattern, PatternParams};
use artsparse::storage::{SimulatedDisk, StorageEngine};
use artsparse::{FormatKind, Region, Shape};

const SIDE: u64 = 256;
const FRAMES: u64 = 4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shape = Shape::new(vec![SIDE, SIDE])?;
    let disk = SimulatedDisk::lustre_like();
    let engine = StorageEngine::open(disk, FormatKind::Linear, shape.clone(), 8)?;

    // Each frame: an MSP instance with a different seed (beam jitter).
    let mut total_points = 0usize;
    for frame in 0..FRAMES {
        let params = PatternParams {
            seed: 7000 + frame,
            msp_threshold: 0.999,
            ..PatternParams::default()
        };
        let ds = Dataset::generate(Pattern::Msp, shape.clone(), params);
        let report = engine.write_points::<f64>(&ds.coords, &ds.values())?;
        total_points += ds.nnz();
        println!(
            "frame {frame}: {} px -> {} ({} bytes, write {:.4}s)",
            ds.nnz(),
            report.fragment,
            report.total_bytes,
            report.breakdown.sum()
        );
    }
    println!(
        "\nstored {total_points} pixels in {} fragments, {} bytes total",
        engine.fragments()?.len(),
        engine.total_stored_bytes()?
    );
    println!(
        "simulated disk: {} bytes written",
        engine.backend().bytes_written()
    );

    // Region-of-interest read: the center of the illuminated area, across
    // every frame (each fragment has points there, so all must merge).
    let roi = Region::from_start_size(&[SIDE / 2, SIDE / 2], &[8, 8])?;
    let result = engine.read_region(&roi)?;
    println!(
        "\nROI {roi}: {} hits from {}/{} fragments",
        result.hits.len(),
        result.fragments_matched,
        result.fragments_scanned
    );
    assert_eq!(result.fragments_matched, FRAMES as usize);
    // Every ROI cell is inside the dense region of every frame, so the hit
    // count is (8·8) cells × FRAMES fragments.
    assert_eq!(result.hits.len() as u64, 64 * FRAMES);

    // Hits are merged sorted by linear address (Algorithm 3 line 12).
    assert!(result.hits.windows(2).all(|w| w[0].addr <= w[1].addr));
    println!("hits are address-sorted across fragments — merge OK");

    // A dark-corner read touches no fragment data.
    let dark = Region::from_start_size(&[0, 0], &[4, 4])?;
    let dark_result = engine.read_region(&dark)?;
    println!(
        "dark corner: {} hits (hot pixels only)",
        dark_result.hits.len()
    );
    Ok(())
}
