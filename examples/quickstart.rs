//! Quickstart: build a sparse tensor, encode it under every organization,
//! query points and regions, and compare footprints.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use artsparse::{FormatKind, Region, Shape, SparseTensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 3D tensor, 512³ cells, with a handful of points — the Fig. 1
    // setting scaled up.
    let shape = Shape::new(vec![512, 512, 512])?;
    let mut tensor = SparseTensor::<f64>::new(shape);
    tensor.insert(&[0, 0, 1], 1.0)?;
    tensor.insert(&[0, 1, 1], 2.0)?;
    tensor.insert(&[0, 1, 2], 3.0)?;
    tensor.insert(&[2, 2, 1], 4.0)?;
    tensor.insert(&[2, 2, 2], 5.0)?;
    for k in 0..200u64 {
        tensor.insert(&[k % 512, (k * 7) % 512, (k * 13) % 512], k as f64)?;
    }
    println!(
        "tensor: {} nnz, density {:.6}%",
        tensor.nnz(),
        tensor.density() * 100.0
    );

    // Encode under each of the paper's five organizations and query back.
    println!(
        "\n{:<14} {:>12} {:>12}",
        "format", "index bytes", "total bytes"
    );
    for kind in FormatKind::PAPER_FIVE {
        let encoded = tensor.encode(kind)?;
        assert_eq!(encoded.get::<f64>(&[0, 1, 2])?, Some(3.0));
        assert_eq!(encoded.get::<f64>(&[500, 500, 500])?, None);
        println!(
            "{:<14} {:>12} {:>12}",
            kind.name(),
            encoded.index_bytes().len(),
            encoded.total_bytes()
        );
    }

    // Region query: every stored point inside a box, in row-major order.
    let encoded = tensor.encode(FormatKind::Csf)?;
    let region = Region::from_corners(&[0, 0, 0], &[2, 2, 2])?;
    let hits = encoded.read_region::<f64>(&region)?;
    println!("\npoints in {region}:");
    for (coord, value) in &hits {
        println!("  {coord:?} = {value}");
    }
    assert!(hits.len() >= 5);

    Ok(())
}
