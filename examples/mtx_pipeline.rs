//! Real-data pipeline: MatrixMarket in → fragments → kernels → out.
//!
//! The paper surveys real sparse matrices through SuiteSparse [25], which
//! ships MatrixMarket files. This example writes a small `.mtx`, loads it,
//! lets the advisor pick an organization, stores it as fragments, runs an
//! SpMV straight off the encoded index, consolidates, and exports back to
//! `.mtx`.
//!
//! ```sh
//! cargo run --release --example mtx_pipeline
//! ```

use artsparse::core::advisor::{recommend, AccessProfile};
use artsparse::core::ops::spmv;
use artsparse::metrics::OpCounter;
use artsparse::patterns::mtx::{read_mtx_file, write_mtx};
use artsparse::storage::{MemBackend, StorageEngine};
use artsparse::tensor::value::unpack;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Produce a small banded test matrix as a .mtx file.
    let dir = tempfile::tempdir()?;
    let path = dir.path().join("banded.mtx");
    {
        use std::io::Write as _;
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "%%MatrixMarket matrix coordinate real general")?;
        writeln!(f, "% 6x6 tridiagonal demo")?;
        writeln!(f, "6 6 16")?;
        for i in 1..=6 {
            if i > 1 {
                writeln!(f, "{i} {} -1.0", i - 1)?;
            }
            writeln!(f, "{i} {i} 2.0")?;
            if i < 6 {
                writeln!(f, "{i} {} -1.0", i + 1)?;
            }
        }
    }

    // 2. Load it.
    let m = read_mtx_file(&path)?;
    println!(
        "loaded {}: {} nnz, density {:.1}%",
        path.display(),
        m.nnz(),
        100.0 * m.nnz() as f64 / m.shape.volume() as f64
    );

    // 3. Ask the advisor, then store under its pick.
    let rec = recommend(m.nnz() as u64, &m.shape, &AccessProfile::read_heavy(), &[]);
    println!("advisor picked {} for read-heavy use", rec.best().name());
    let engine = StorageEngine::open(MemBackend::new(), rec.best(), m.shape.clone(), 8)?;
    engine.write_points::<f64>(&m.coords, &m.values)?;

    // 4. SpMV against the stored fragment: A · 1 for the 1D Laplacian has
    // zeros in the interior and 1 at the boundary rows.
    let (coords, payload) = engine.export()?;
    let counter = OpCounter::new();
    let built = rec.best().create().build(&coords, &m.shape, &counter)?;
    let values: Vec<f64> = unpack(&built.reorganize_values(&payload, 8))?;
    let x = vec![1.0; 6];
    let y = spmv(&m.shape, &built.index, &values, &x, &counter)?;
    println!("A·1 = {y:?}");
    assert_eq!(y, vec![1.0, 0.0, 0.0, 0.0, 0.0, 1.0]);

    // 5. Consolidate (trivially, one fragment) and export back to .mtx.
    let out_path = dir.path().join("roundtrip.mtx");
    let vals: Vec<f64> = unpack(&payload)?;
    write_mtx(std::fs::File::create(&out_path)?, &m.shape, &coords, &vals)?;
    let again = read_mtx_file(&out_path)?;
    assert_eq!(again.nnz(), m.nnz());
    println!(
        "round-tripped {} entries through {}",
        again.nnz(),
        out_path.display()
    );
    Ok(())
}
