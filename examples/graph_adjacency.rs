//! GSP scenario: a social-graph adjacency matrix.
//!
//! The paper's GSP pattern models adjacency matrices (§III cites social
//! networks / recommender systems). We generate a random directed graph,
//! store its adjacency matrix under each organization, answer edge
//! queries and neighborhood scans, and ask the advisor which organization
//! fits a read-heavy serving workload.
//!
//! ```sh
//! cargo run --release --example graph_adjacency
//! ```

use artsparse::core::advisor::{recommend, AccessProfile};
use artsparse::patterns::rng::SplitMix64;
use artsparse::{CoordBuffer, FormatKind, Region, Shape, SparseTensor};

const USERS: u64 = 4096;
const EDGES: usize = 40_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Random edges with a deterministic seed.
    let mut rng = SplitMix64::new(2024);
    let shape = Shape::new(vec![USERS, USERS])?;
    let mut tensor = SparseTensor::<f32>::new(shape.clone());
    let mut some_edge = None;
    for _ in 0..EDGES {
        let src = rng.next_below(USERS);
        let dst = rng.next_below(USERS);
        let weight = rng.next_f64() as f32;
        tensor.insert(&[src, dst], weight)?;
        some_edge.get_or_insert((src, dst));
    }
    println!(
        "graph: {USERS} users, {} edges, density {:.4}%",
        tensor.nnz(),
        tensor.density() * 100.0
    );

    // Edge-existence queries under every organization.
    let (src, dst) = some_edge.unwrap();
    let probes = CoordBuffer::from_points(2, &[[src, dst], [0, 0], [1, 1]])?;
    println!("\n{:<14} {:>12} edge({src},{dst})", "format", "bytes");
    for kind in FormatKind::PAPER_FIVE {
        let enc = tensor.encode(kind)?;
        let hits = enc.get_many::<f32>(&probes)?;
        println!(
            "{:<14} {:>12} {}",
            kind.name(),
            enc.total_bytes(),
            if hits[0].is_some() {
                "found"
            } else {
                "MISSING!"
            }
        );
        assert!(hits[0].is_some());
    }

    // Out-neighborhood scan of one user = one row of the matrix.
    let enc = tensor.encode(FormatKind::GcsrPP)?;
    let row = Region::from_corners(&[src, 0], &[src, USERS - 1])?;
    let neighbors = enc.read_region::<f32>(&row)?;
    println!(
        "\nuser {src} follows {} accounts (first: {:?})",
        neighbors.len(),
        neighbors.first().map(|(c, _)| c[1])
    );
    assert!(!neighbors.is_empty());

    // Which organization should a read-heavy edge service use?
    let rec = recommend(
        tensor.nnz() as u64,
        &shape,
        &AccessProfile::read_heavy(),
        &[],
    );
    println!("\nadvisor (read-heavy): ");
    for c in &rec.ranking {
        println!("  {:<8} score {:.3}", c.kind.name(), c.score);
    }
    Ok(())
}
