//! The organization advisor — the paper's future work, exercised.
//!
//! §VI: "we plan to explore automatic strategies for selecting different
//! organization for applications based on the characterization of sparsity
//! in their data." This example characterizes three workloads, asks the
//! Table I cost model for a recommendation, then *validates* the
//! recommendation by measuring actual encode/read costs.
//!
//! ```sh
//! cargo run --release --example format_advisor
//! ```

use artsparse::core::advisor::{recommend, AccessProfile};
use artsparse::patterns::{Dataset, Pattern, PatternParams};
use artsparse::{FormatKind, Shape, SparseTensor};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cases = [
        (
            "checkpoint archive (write-heavy)",
            AccessProfile::write_heavy(),
        ),
        (
            "interactive analysis (read-heavy)",
            AccessProfile::read_heavy(),
        ),
        ("balanced pipeline", AccessProfile::balanced()),
    ];

    let shape = Shape::new(vec![128, 128, 128])?;
    let ds = Dataset::generate(Pattern::Gsp, shape.clone(), PatternParams::default());
    let values = ds.values();
    println!("workload tensor: {} ({} points)\n", ds.label(), ds.nnz());

    for (name, profile) in cases {
        let rec = recommend(ds.nnz() as u64, &shape, &profile, &[]);
        println!("== {name} ==");
        for c in rec.ranking.iter().take(3) {
            println!(
                "  {:<8} score {:.3} (write {:.2}, read {:.2}, space {:.2})",
                c.kind.name(),
                c.score,
                c.components.0,
                c.components.1,
                c.components.2
            );
        }
        println!("  → recommended: {}\n", rec.best().name());
    }

    // Validate the read-heavy pick empirically: measure encode + query
    // time for the recommendation vs the baseline COO.
    let rec = recommend(ds.nnz() as u64, &shape, &AccessProfile::read_heavy(), &[]);
    let tensor = SparseTensor::from_parts(shape.clone(), ds.coords.clone(), values)?;
    let queries = ds.read_region().to_coords();

    let measure = |kind: FormatKind| -> Result<(f64, f64), Box<dyn std::error::Error>> {
        let t0 = Instant::now();
        let enc = tensor.encode(kind)?;
        let encode_s = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let hits = enc.get_many::<f64>(&queries)?;
        let read_s = t1.elapsed().as_secs_f64();
        assert!(hits.iter().any(Option::is_some) || hits.len() < 50);
        Ok((encode_s, read_s))
    };

    let (enc_best, read_best) = measure(rec.best())?;
    let (enc_coo, read_coo) = measure(FormatKind::Coo)?;
    println!("validation ({} queries):", queries.len());
    println!(
        "  {:<8} encode {enc_best:.4}s  read {read_best:.4}s",
        rec.best().name()
    );
    println!("  COO      encode {enc_coo:.4}s  read {read_coo:.4}s");
    assert!(
        read_best < read_coo,
        "the read-heavy recommendation must out-read COO"
    );
    println!(
        "\n→ {} reads {:.0}× faster than COO, as the model predicted",
        rec.best().name(),
        read_coo / read_best.max(1e-9)
    );
    Ok(())
}
