//! Linear-address overflow and the blocked-LINEAR fix (§II.B).
//!
//! "The risk of using the LINEAR organization is the overflow of linear
//! address when converting a multiple dimensional coordinate for an
//! extremely large tensor into a single value. A practical solution … is
//! to break large tensors into small blocks." This example stores points
//! of a 2⁴⁰ × 2⁴⁰ virtual tensor — whose 2⁸⁰-cell address space no `u64`
//! can index — using the blocked-LINEAR extension.
//!
//! ```sh
//! cargo run --release --example overflow_blocked
//! ```

use artsparse::core::formats::ext::blocked_linear::BlockedLinear;
use artsparse::metrics::OpCounter;
use artsparse::tensor::value::{pack, unpack};
use artsparse::{CoordBuffer, Shape};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let big = 1u64 << 40;
    let dims = vec![big, big];

    // Flat addressing is impossible: Shape itself refuses the tensor.
    match Shape::new(dims.clone()) {
        Err(e) => println!("LINEAR cannot address 2^40 x 2^40: {e}"),
        Ok(_) => unreachable!("2^80 cells must overflow"),
    }

    // Blocked addressing handles it: 2^20-sided tiles.
    let bl = BlockedLinear::with_block_side(1 << 20);
    let coords = CoordBuffer::from_points(
        2,
        &[
            [0u64, 0],
            [big - 1, big - 1],
            [123_456_789_012, 42],
            [1 << 30, 1 << 35],
        ],
    )?;
    let values = [10.0f64, 20.0, 30.0, 40.0];

    let counter = OpCounter::new();
    let built = bl.build_raw(&coords, &dims, &counter)?;
    let payload = built.reorganize_values(&pack(&values), 8);
    println!(
        "stored {} points of the virtual tensor in a {}-byte index",
        coords.len(),
        built.index.len()
    );

    // Query every stored point plus a miss.
    let queries = CoordBuffer::from_points(
        2,
        &[
            [big - 1, big - 1],
            [123_456_789_012, 42],
            [0, 0],
            [1 << 30, 1 << 35],
            [7, 7],
        ],
    )?;
    let slots = bl.read_raw(&built.index, &queries, &counter)?;
    let stored: Vec<f64> = unpack(&payload)?;
    for (q, slot) in queries.iter().zip(&slots) {
        match slot {
            Some(s) => println!("  {q:?} -> {}", stored[*s as usize]),
            None => println!("  {q:?} -> (absent)"),
        }
    }
    assert_eq!(slots[0].map(|s| stored[s as usize]), Some(20.0));
    assert_eq!(slots[1].map(|s| stored[s as usize]), Some(30.0));
    assert_eq!(slots[2].map(|s| stored[s as usize]), Some(10.0));
    assert_eq!(slots[3].map(|s| stored[s as usize]), Some(40.0));
    assert_eq!(slots[4], None);
    println!("blocked-LINEAR addressed the 2^80-cell tensor correctly");
    Ok(())
}
