//! Offline stand-in for `tempfile`.
//!
//! Provides [`tempdir`]/[`TempDir`]: a uniquely named directory under
//! `std::env::temp_dir()` that is recursively deleted on drop.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static SEQ: AtomicU64 = AtomicU64::new(0);

/// A temporary directory, removed (recursively) when dropped.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create a fresh temporary directory.
    pub fn new() -> std::io::Result<TempDir> {
        tempdir()
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Persist the directory (skip deletion), returning its path.
    pub fn keep(self) -> PathBuf {
        let path = self.path.clone();
        std::mem::forget(self);
        path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// Create a uniquely named temporary directory.
pub fn tempdir() -> std::io::Result<TempDir> {
    let base = std::env::temp_dir();
    let pid = std::process::id();
    loop {
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        let path = base.join(format!(".artsparse-tmp-{pid}-{n}-{nanos}"));
        match std::fs::create_dir(&path) {
            Ok(()) => return Ok(TempDir { path }),
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_removes_on_drop() {
        let dir = tempdir().unwrap();
        let path = dir.path().to_path_buf();
        assert!(path.is_dir());
        std::fs::write(path.join("f"), b"x").unwrap();
        drop(dir);
        assert!(!path.exists());
    }

    #[test]
    fn dirs_are_unique() {
        let a = tempdir().unwrap();
        let b = tempdir().unwrap();
        assert_ne!(a.path(), b.path());
    }
}
