//! Offline stand-in for `serde_json`.
//!
//! Re-exports the vendored `serde` crate's [`Value`]/[`Map`] tree and
//! provides the construction/rendering entry points artsparse uses:
//! [`json!`], [`to_value`], [`to_string`], and [`to_string_pretty`] —
//! plus [`from_str`], a strict recursive-descent parser back into the
//! [`Value`] tree (used by the telemetry schema validator).

mod parse;

use std::fmt;

pub use parse::from_str;
pub use serde::{Map, Value};

/// Error type for (de)serialization entry points.
///
/// Rendering into a [`Value`] tree cannot fail; parsing can, and carries
/// a message with the byte offset of the problem.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    pub(crate) fn parse(offset: usize, msg: impl fmt::Display) -> Self {
        Error {
            msg: format!("JSON parse error at byte {offset}: {msg}"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Result alias matching the real crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Render any [`serde::Serialize`] type as a [`Value`].
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_json_value())
}

/// Render compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_json_value().to_json_string())
}

/// Render pretty-printed JSON text.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_json_value().to_json_string_pretty())
}

/// Build a [`Value`] from JSON-ish syntax: `json!({"k": expr, ...})`,
/// `json!([a, b])`, `json!(null)`, or any serializable expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $( $key:literal : $value:expr ),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $( m.insert($key.to_string(), $crate::json!($value)); )*
        $crate::Value::Object(m)
    }};
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serializes")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(7u64), Value::U64(7));
        assert_eq!(json!([1, 4, 5]), json!([1u64, 4u64, 5u64]));
        let nested = json!([[0, 2, 3], [0, 1, 3, 5]]);
        assert_eq!(nested[1][3].as_u64(), Some(5));
        let v = json!({"x": 1, "name": "demo", "arr": vec![1.5f64]});
        assert_eq!(v["x"].as_u64(), Some(1));
        assert_eq!(v["name"], "demo");
        assert_eq!(v["arr"][0].as_f64(), Some(1.5));
        assert_eq!(json!({}), Value::Object(Map::new()));
    }

    #[test]
    fn to_string_pretty_roundtrips_visually() {
        // Nested objects inside arrays use explicit json! calls (the
        // abbreviated macro does not re-parse raw braces inside arrays).
        let v = json!({"rows": [json!({"a": 1})]});
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"rows\""));
        assert!(s.contains("\"a\": 1"));
    }
}
