//! A strict recursive-descent JSON parser into the [`Value`] tree.
//!
//! Accepts exactly the JSON grammar (RFC 8259): no trailing commas, no
//! comments, no bare control characters in strings. Integers without a
//! fraction/exponent parse as `U64`/`I64`; everything else numeric is
//! `F64`. Input must be one value followed only by whitespace.

use crate::{Error, Map, Value};

/// Parse a JSON document into a [`Value`].
pub fn from_str(s: &str) -> crate::Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::parse(p.pos, "trailing characters after the value"));
    }
    Ok(value)
}

/// Nesting ceiling: malformed deeply-nested input must error, not blow
/// the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> crate::Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(self.pos, format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> crate::Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::parse(self.pos, format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> crate::Result<Value> {
        if self.depth >= MAX_DEPTH {
            return Err(Error::parse(self.pos, "nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::parse(
                self.pos,
                format!("unexpected character '{}'", c as char),
            )),
            None => Err(Error::parse(self.pos, "unexpected end of input")),
        }
    }

    fn array(&mut self) -> crate::Result<Value> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::parse(self.pos, "expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> crate::Result<Value> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::parse(self.pos, "expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> crate::Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::parse(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            out.push(self.unicode_escape()?);
                            continue;
                        }
                        _ => return Err(Error::parse(self.pos, "invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(Error::parse(self.pos, "bare control character in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> crate::Result<char> {
        let hex4 = |p: &mut Self| -> crate::Result<u32> {
            let end = p.pos + 4;
            if end > p.bytes.len() {
                return Err(Error::parse(p.pos, "truncated \\u escape"));
            }
            let s = std::str::from_utf8(&p.bytes[p.pos..end])
                .map_err(|_| Error::parse(p.pos, "non-ASCII \\u escape"))?;
            let v = u32::from_str_radix(s, 16)
                .map_err(|_| Error::parse(p.pos, "invalid \\u escape"))?;
            p.pos = end;
            Ok(v)
        };
        let hi = hex4(self)?;
        // Surrogate pair?
        if (0xD800..0xDC00).contains(&hi) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = hex4(self)?;
                if !(0xDC00..0xE000).contains(&lo) {
                    return Err(Error::parse(self.pos, "invalid low surrogate"));
                }
                let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                return char::from_u32(c)
                    .ok_or_else(|| Error::parse(self.pos, "invalid surrogate pair"));
            }
            return Err(Error::parse(self.pos, "unpaired high surrogate"));
        }
        if (0xDC00..0xE000).contains(&hi) {
            return Err(Error::parse(self.pos, "unpaired low surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| Error::parse(self.pos, "invalid \\u escape"))
    }

    fn number(&mut self) -> crate::Result<Value> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        // Integer part: a single 0, or a nonzero digit followed by more.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(Error::parse(self.pos, "expected digit")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(Error::parse(self.pos, "expected digit after '.'"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(Error::parse(self.pos, "expected digit in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number spans are ASCII by construction");
        if !is_float {
            if negative {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Value::I64(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
            // Integer out of 64-bit range: fall through to f64 like the
            // real crate's arbitrary-precision-off behavior.
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::parse(start, "invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str(" true ").unwrap(), Value::Bool(true));
        assert_eq!(from_str("false").unwrap(), Value::Bool(false));
        assert_eq!(from_str("42").unwrap(), Value::U64(42));
        assert_eq!(from_str("-7").unwrap(), Value::I64(-7));
        assert_eq!(from_str("2.5").unwrap(), Value::F64(2.5));
        assert_eq!(from_str("1e3").unwrap(), Value::F64(1000.0));
        assert_eq!(from_str("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            from_str(r#""a\"b\\c\nA""#).unwrap(),
            Value::String("a\"b\\c\nA".into())
        );
        assert_eq!(from_str(r#""😀""#).unwrap(), Value::String("😀".into()));
        assert!(from_str(r#""\ud83d""#).is_err());
        assert!(from_str("\"\n\"").is_err());
    }

    #[test]
    fn containers() {
        let v = from_str(r#"{"a": [1, 2.0, "x"], "b": {"c": null}}"#).unwrap();
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert_eq!(v["a"][1].as_f64(), Some(2.0));
        assert_eq!(v["a"][2].as_str(), Some("x"));
        assert!(v["b"]["c"].is_null());
        assert_eq!(from_str("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(from_str("{}").unwrap(), Value::Object(Map::new()));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "01",
            "1.",
            "+1",
            "nul",
            "truex",
            "[1] x",
            "'s'",
            "{a: 1}",
        ] {
            assert!(from_str(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let deep = "[".repeat(100_000);
        assert!(from_str(&deep).is_err());
    }

    #[test]
    fn roundtrips_rendered_output() {
        let span = crate::json!({"kind": "engine.read", "count": 3, "mean": 1.5});
        let v = crate::json!({
            "version": 1,
            "spans": [span],
            "flag": true
        });
        let parsed = from_str(&v.to_json_string_pretty()).unwrap();
        assert_eq!(parsed, v);
        let parsed = from_str(&v.to_json_string()).unwrap();
        assert_eq!(parsed, v);
    }
}
