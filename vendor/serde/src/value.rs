//! The JSON value tree shared by the offline `serde`/`serde_json` pair.

use std::collections::BTreeMap;
use std::fmt;

/// An ordered (sorted-key) JSON object.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: BTreeMap<String, Value>,
}

impl Map {
    /// An empty object.
    pub fn new() -> Self {
        Map::default()
    }

    /// Insert a key/value pair, returning the previous value if any.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        self.entries.insert(key, value)
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.get(key)
    }

    /// Whether a key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the object is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter()
    }

    /// Iterate keys in order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.keys()
    }

    /// Iterate values in key order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.values()
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::collections::btree_map::Iter<'a, String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        Map {
            entries: iter.into_iter().collect(),
        }
    }
}

/// A JSON value.
#[derive(Debug, Clone)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// `&value["key"]` helper: `None` if not an object or key missing.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Any numeric value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(v) => Some(*v as f64),
            Value::U64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Any non-negative integer value as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::I64(v) => u64::try_from(*v).ok(),
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// Any representable integer value as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    fn write_json(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::F64(v) => {
                if v.is_finite() {
                    // Keep a decimal point so floats stay floats on reparse.
                    let s = v.to_string();
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write_json(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            Value::Object(m) => {
                if m.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write_json(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }

    /// Render compact JSON.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, None, 0);
        out
    }

    /// Render human-readable JSON with 2-space indentation.
    pub fn to_json_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, Some(2), 0);
        out
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json_string())
    }
}

/// Numeric comparison across integer variants (1i64 == 1u64); floats
/// compare only against floats, as in real serde_json.
impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (I64(a), I64(b)) => a == b,
            (U64(a), U64(b)) => a == b,
            (F64(a), F64(b)) => a == b,
            (I64(a), U64(b)) | (U64(b), I64(a)) => u64::try_from(*a).is_ok_and(|a| a == *b),
            (String(a), String(b)) => a == b,
            (Array(a), Array(b)) => a == b,
            (Object(a), Object(b)) => a == b,
            _ => false,
        }
    }
}

macro_rules! eq_str {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_str() == Some(other.as_ref())
            }
        }
        impl PartialEq<$t> for &Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_str() == Some(other.as_ref())
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other.as_str() == Some(self.as_ref())
            }
        }
    )*};
}

eq_str!(&str, String);

impl PartialEq<Value> for &Value {
    fn eq(&self, other: &Value) -> bool {
        **self == *other
    }
}

macro_rules! eq_num {
    ($($t:ty => $variant:ident as $cast:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                *self == Value::$variant(*other as $cast)
            }
        }
        impl PartialEq<$t> for &Value {
            fn eq(&self, other: &$t) -> bool {
                **self == Value::$variant(*other as $cast)
            }
        }
    )*};
}

eq_num!(
    i32 => I64 as i64,
    i64 => I64 as i64,
    u32 => U64 as u64,
    u64 => U64 as u64,
    usize => U64 as u64,
    f64 => F64 as f64
);

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_variant_integer_equality() {
        assert_eq!(Value::I64(5), Value::U64(5));
        assert_ne!(Value::I64(-5), Value::U64(5));
        assert_ne!(Value::I64(1), Value::F64(1.0));
    }

    #[test]
    fn indexing_and_accessors() {
        let mut m = Map::new();
        m.insert(
            "k".into(),
            Value::Array(vec![Value::U64(1), Value::F64(2.5)]),
        );
        let v = Value::Object(m);
        assert_eq!(v["k"][0].as_u64(), Some(1));
        assert_eq!(v["k"][1].as_f64(), Some(2.5));
        assert!(v["missing"].is_null());
        assert!(v["k"][9].is_null());
    }

    #[test]
    fn string_equality_with_str() {
        let v = Value::String("COO".into());
        assert!(v == "COO");
        assert!(&v == "COO");
        assert!(v != "CSF");
    }

    #[test]
    fn pretty_printing_shape() {
        let mut m = Map::new();
        m.insert("a".into(), Value::U64(1));
        m.insert("b".into(), Value::F64(1.0));
        let s = Value::Object(m).to_json_string_pretty();
        assert!(s.contains("\"a\": 1"));
        assert!(s.contains("\"b\": 1.0"));
        let compact = Value::Array(vec![Value::Null, Value::Bool(true)]).to_json_string();
        assert_eq!(compact, "[null,true]");
    }

    #[test]
    fn escaping() {
        let s = Value::String("a\"b\\c\n".into()).to_json_string();
        assert_eq!(s, "\"a\\\"b\\\\c\\n\"");
    }
}
