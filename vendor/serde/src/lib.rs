//! Offline stand-in for `serde`.
//!
//! The container cannot reach crates.io, so this crate supplies the
//! serialization surface artsparse actually uses. Instead of serde's
//! visitor-based data model, [`Serialize`] renders directly into a JSON
//! [`Value`] tree (artsparse only ever serializes *to JSON*, via
//! `serde_json`). The companion `serde_derive` proc-macro generates the
//! impls for `#[derive(Serialize, Deserialize)]`; nothing in the repo
//! deserializes at runtime, so [`Deserialize`] is a marker trait.

pub use serde_derive::{Deserialize, Serialize};

mod value;

pub use value::{Map, Value};

/// Types renderable as a JSON [`Value`].
pub trait Serialize {
    /// Render `self` as a JSON value.
    fn to_json_value(&self) -> Value;
}

/// Marker for types that declare `#[derive(Deserialize)]`.
///
/// No runtime deserialization exists in this offline stand-in; the trait
/// records intent (and keeps derive lines compiling) only.
pub trait Deserialize {}

// --- Serialize impls for std types ----------------------------------------

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
    )*};
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}

ser_signed!(i8, i16, i32, i64, isize);
ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for std::path::Path {
    fn to_json_value(&self) -> Value {
        Value::String(self.display().to_string())
    }
}

impl Serialize for std::path::PathBuf {
    fn to_json_value(&self) -> Value {
        self.as_path().to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json_value(&self) -> Value {
        Value::Array(vec![self.0.to_json_value(), self.1.to_json_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_json_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_json_value(),
            self.1.to_json_value(),
            self.2.to_json_value(),
        ])
    }
}

impl<K: AsRef<str>, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.as_ref().to_string(), v.to_json_value());
        }
        Value::Object(m)
    }
}

impl<K: AsRef<str>, V: Serialize, S: std::hash::BuildHasher> Serialize
    for std::collections::HashMap<K, V, S>
{
    fn to_json_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.as_ref().to_string(), v.to_json_value());
        }
        Value::Object(m)
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for Map {
    fn to_json_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_render() {
        assert_eq!(3u64.to_json_value(), Value::U64(3));
        assert_eq!((-3i32).to_json_value(), Value::I64(-3));
        assert_eq!(true.to_json_value(), Value::Bool(true));
        assert_eq!("x".to_json_value(), Value::String("x".into()));
        assert_eq!(Option::<u8>::None.to_json_value(), Value::Null);
    }

    #[test]
    fn collections_render() {
        let v = vec![1u8, 2];
        assert_eq!(
            v.to_json_value(),
            Value::Array(vec![Value::U64(1), Value::U64(2)])
        );
        let mut m = std::collections::BTreeMap::new();
        m.insert("a".to_string(), 1u32);
        let Value::Object(obj) = m.to_json_value() else {
            panic!("expected object")
        };
        assert_eq!(obj.get("a"), Some(&Value::U64(1)));
    }
}
