//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against
//! the vendored `serde` crate's JSON-value data model, parsing the item
//! token stream by hand (no `syn`/`quote` in the offline container).
//!
//! Supported shapes — everything artsparse derives on:
//! * structs with named fields → JSON object keyed by field name;
//! * enums with unit variants → JSON string of the variant name.
//!
//! Generics, tuple structs, and data-carrying enum variants produce a
//! `compile_error!` naming the limitation, so misuse fails loudly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

fn err(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Consume `#[...]` attribute sequences (including doc comments).
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Consume `pub` / `pub(...)`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_named_fields(body: &TokenTree) -> Result<Vec<String>, String> {
    let TokenTree::Group(g) = body else {
        return Err("expected a braced body".into());
    };
    let tokens: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_vis(&tokens, skip_attrs(&tokens, i));
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            return Err(format!(
                "expected field name, got {:?}",
                tokens.get(i).map(|t| t.to_string())
            ));
        };
        fields.push(name.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected ':' after field {name}")),
        }
        // Skip the type: everything up to a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

fn parse_unit_variants(body: &TokenTree) -> Result<Vec<String>, String> {
    let TokenTree::Group(g) = body else {
        return Err("expected a braced body".into());
    };
    let tokens: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            return Err(format!(
                "expected variant name, got {:?}",
                tokens.get(i).map(|t| t.to_string())
            ));
        };
        variants.push(name.to_string());
        i += 1;
        if let Some(TokenTree::Group(_)) = tokens.get(i) {
            return Err(format!(
                "variant {name} carries data; the offline serde derive supports unit variants only"
            ));
        }
        // Skip an optional discriminant, then the separating comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));
    let Some(TokenTree::Ident(kw)) = tokens.get(i) else {
        return Err("expected `struct` or `enum`".into());
    };
    let kw = kw.to_string();
    i += 1;
    let Some(TokenTree::Ident(name)) = tokens.get(i) else {
        return Err("expected an item name".into());
    };
    let name = name.to_string();
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "{name} is generic; the offline serde derive supports non-generic items only"
            ));
        }
    }
    let Some(body) = tokens.get(i) else {
        return Err(format!("{name} has no body"));
    };
    match kw.as_str() {
        "struct" => Ok(Item::Struct {
            name,
            fields: parse_named_fields(body)?,
        }),
        "enum" => Ok(Item::Enum {
            name,
            variants: parse_unit_variants(body)?,
        }),
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Derive `serde::Serialize` (JSON-value rendering).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return err(&e),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let inserts: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "m.insert({f:?}.to_string(), ::serde::Serialize::to_json_value(&self.{f}));"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json_value(&self) -> ::serde::Value {{\n\
                         let mut m = ::serde::Map::new();\n\
                         {inserts}\n\
                         ::serde::Value::Object(m)\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::String({v:?}.to_string()),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

/// Derive the `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return err(&e),
    };
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .unwrap()
}
