//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API
//! (`lock()`/`read()`/`write()` return guards directly). A poisoned std
//! lock — a panic while holding the guard — aborts via `unwrap`, which
//! matches how artsparse treats panics: unrecoverable.

use std::sync::{self, LockResult};

/// A mutual-exclusion lock whose `lock` never returns an error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

fn unpoison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        unpoison(self.0.lock())
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

/// A reader-writer lock whose acquire methods never return errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        unpoison(self.0.read())
    }

    /// Acquire exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        unpoison(self.0.write())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 400);
    }
}
