//! Offline stand-in for `rayon`.
//!
//! The build container cannot reach crates.io, so this shim provides the
//! rayon surface artsparse uses without the work-stealing pool:
//!
//! * `par_sort_by` / `par_sort_by_key` — **really parallel**: a stable
//!   fork-join merge sort on `std::thread::scope`, since sorting dominates
//!   the engine's build phase;
//! * `par_iter` / `par_chunks_exact` / `into_par_iter` / … — sequential
//!   std iterators with rayon's method names (`flat_map_iter` aliases
//!   `flat_map`). Callers written against rayon compile unchanged; where
//!   artsparse needs real data parallelism on the read path it uses
//!   `std::thread::scope` directly (see `artsparse-storage`'s executor).

use std::cmp::Ordering;

/// Number of worker threads a parallel operation may use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Below this many elements a parallel sort runs sequentially.
const SEQ_SORT_CUTOFF: usize = 1 << 13;

fn merge_by<T: Clone, F: Fn(&T, &T) -> Ordering>(a: &[T], b: &[T], cmp: &F) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        // `<=` keeps the left run first on ties: stable merge.
        if cmp(&a[i], &b[j]) != Ordering::Greater {
            out.push(a[i].clone());
            i += 1;
        } else {
            out.push(b[j].clone());
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

fn par_merge_sort<T, F>(v: &mut [T], cmp: &F, depth: usize)
where
    T: Clone + Send,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    if depth == 0 || v.len() < SEQ_SORT_CUTOFF {
        v.sort_by(cmp);
        return;
    }
    let mid = v.len() / 2;
    let (lo, hi) = v.split_at_mut(mid);
    std::thread::scope(|s| {
        let h = s.spawn(|| par_merge_sort(lo, cmp, depth - 1));
        par_merge_sort(hi, cmp, depth - 1);
        h.join().expect("parallel sort worker panicked");
    });
    let merged = merge_by(lo, hi, cmp);
    v.clone_from_slice(&merged);
}

/// Parallel (stable) sorting methods on slices.
pub trait ParallelSliceMut<T> {
    /// Stable parallel sort by comparator.
    fn par_sort_by<F>(&mut self, cmp: F)
    where
        T: Clone + Send,
        F: Fn(&T, &T) -> Ordering + Sync;

    /// Stable parallel sort by key.
    fn par_sort_by_key<K, F>(&mut self, key: F)
    where
        T: Clone + Send,
        K: Ord,
        F: Fn(&T) -> K + Sync;

    /// Stable parallel sort by `Ord`.
    fn par_sort(&mut self)
    where
        T: Clone + Send + Ord;

    /// Unstable parallel sort (delegates to the stable one here).
    fn par_sort_unstable(&mut self)
    where
        T: Clone + Send + Ord;

    /// Parallel exact-size mutable chunks (sequential iterator).
    fn par_chunks_exact_mut(&mut self, size: usize) -> std::slice::ChunksExactMut<'_, T>;

    /// Parallel mutable chunks (sequential iterator).
    fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_sort_by<F>(&mut self, cmp: F)
    where
        T: Clone + Send,
        F: Fn(&T, &T) -> Ordering + Sync,
    {
        let depth = usize::BITS as usize - current_num_threads().leading_zeros() as usize;
        par_merge_sort(self, &cmp, depth.min(6));
    }

    fn par_sort_by_key<K, F>(&mut self, key: F)
    where
        T: Clone + Send,
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        self.par_sort_by(|a, b| key(a).cmp(&key(b)));
    }

    fn par_sort(&mut self)
    where
        T: Clone + Send + Ord,
    {
        self.par_sort_by(T::cmp);
    }

    fn par_sort_unstable(&mut self)
    where
        T: Clone + Send + Ord,
    {
        self.par_sort_by(T::cmp);
    }

    fn par_chunks_exact_mut(&mut self, size: usize) -> std::slice::ChunksExactMut<'_, T> {
        self.chunks_exact_mut(size)
    }

    fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(size)
    }
}

/// Shared-slice "parallel" views (sequential iterators with rayon names).
pub trait ParallelSlice<T> {
    /// Iterator over elements.
    fn par_iter(&self) -> std::slice::Iter<'_, T>;
    /// Iterator over exact-size chunks.
    fn par_chunks_exact(&self, size: usize) -> std::slice::ChunksExact<'_, T>;
    /// Iterator over chunks.
    fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.iter()
    }
    fn par_chunks_exact(&self, size: usize) -> std::slice::ChunksExact<'_, T> {
        self.chunks_exact(size)
    }
    fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(size)
    }
}

/// `into_par_iter` for anything iterable (ranges, vectors, …).
pub trait IntoParallelIterator {
    /// The underlying iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// The element type.
    type Item;
    /// Convert into a (sequential) "parallel" iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Iter = I::IntoIter;
    type Item = I::Item;
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// Rayon's iterator trait, here a veneer over [`Iterator`] adding the
/// rayon-specific adapter names.
pub trait ParallelIterator: Iterator + Sized {
    /// rayon's `flat_map_iter` — identical to `Iterator::flat_map` here.
    fn flat_map_iter<U, F>(self, f: F) -> std::iter::FlatMap<Self, U, F>
    where
        U: IntoIterator,
        F: FnMut(Self::Item) -> U,
    {
        self.flat_map(f)
    }

    /// rayon's `with_min_len` — a no-op grain-size hint here.
    fn with_min_len(self, _min: usize) -> Self {
        self
    }
}

impl<I: Iterator> ParallelIterator for I {}

/// Marker for indexed (zippable, exact-length) parallel iterators.
pub trait IndexedParallelIterator: ParallelIterator {}

impl<I: Iterator> IndexedParallelIterator for I {}

/// The rayon prelude: every trait needed for `.par_*` method syntax.
pub mod prelude {
    pub use crate::{
        IndexedParallelIterator, IntoParallelIterator, ParallelIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_sort_matches_std_sort() {
        let mut a: Vec<u64> = (0..100_000u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9))
            .collect();
        let mut b = a.clone();
        a.par_sort_by(|x, y| x.cmp(y));
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn par_sort_is_stable() {
        // Sort by the second component only; first must keep input order.
        let mut v: Vec<(u32, u32)> = (0..20_000).map(|i| (i, i % 3)).collect();
        v.par_sort_by(|a, b| a.1.cmp(&b.1));
        for w in v.windows(2) {
            if w[0].1 == w[1].1 {
                assert!(w[0].0 < w[1].0);
            }
        }
    }

    #[test]
    fn iterator_shims_compose() {
        let v = [1u64, 2, 3, 4];
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let flat: Vec<u64> = (0..3u64)
            .into_par_iter()
            .flat_map_iter(|i| [i, i])
            .collect();
        assert_eq!(flat, vec![0, 0, 1, 1, 2, 2]);
        let chunks: Vec<&[u64]> = v.par_chunks_exact(2).collect();
        assert_eq!(chunks, vec![&[1, 2][..], &[3, 4][..]]);
    }
}
