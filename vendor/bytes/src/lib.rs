//! Offline stand-in for the `bytes` crate.
//!
//! The build container has no access to crates.io, so this vendored
//! shim provides exactly the [`Buf`]/[`BufMut`] surface artsparse uses:
//! little-endian integer cursors over `&[u8]` and `Vec<u8>`. Semantics
//! match the real crate for that subset (including panicking on
//! underflow, which callers guard against via [`Buf::remaining`]).

/// Read-side cursor over a byte source.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Consume and return the next byte.
    fn get_u8(&mut self) -> u8;

    /// Consume and return a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;

    /// Consume and return a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;

    /// Consume and return a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;

    /// Skip `cnt` bytes.
    fn advance(&mut self, cnt: usize);
}

impl Buf for &[u8] {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        *self = &self[1..];
        v
    }

    #[inline]
    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self[..2].try_into().unwrap());
        *self = &self[2..];
        v
    }

    #[inline]
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self[..4].try_into().unwrap());
        *self = &self[4..];
        v
    }

    #[inline]
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self[..8].try_into().unwrap());
        *self = &self[8..];
        v
    }

    #[inline]
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write-side sink for little-endian integers.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);

    /// Append a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for Vec<u8> {
    #[inline]
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    #[inline]
    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = Vec::new();
        buf.put_u8(7);
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_slice(&[1, 2, 3]);
        let mut cur: &[u8] = &buf;
        assert_eq!(cur.remaining(), 1 + 2 + 4 + 8 + 3);
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u16_le(), 0xBEEF);
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u64_le(), 0x0123_4567_89AB_CDEF);
        cur.advance(1);
        assert_eq!(cur, &[2, 3]);
    }
}
