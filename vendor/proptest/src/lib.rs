//! Offline stand-in for `proptest`.
//!
//! Supplies the subset artsparse's property tests use: the [`Strategy`](strategy::Strategy)
//! trait with `prop_map`/`prop_flat_map`, range and tuple strategies,
//! `prop::collection::vec`, `any::<T>()`, and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros. Cases are generated
//! from a deterministic per-test RNG (seeded by the test name, or by
//! `PROPTEST_SEED` if set), so failures reproduce exactly; there is no
//! shrinking — the failing inputs are printed instead.

pub mod rng {
    //! Deterministic splitmix64 generator used to drive sampling.

    /// The per-test random source.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name (stable across runs) or `PROPTEST_SEED`.
        pub fn for_test(name: &str) -> TestRng {
            if let Ok(seed) = std::env::var("PROPTEST_SEED") {
                if let Ok(seed) = seed.parse::<u64>() {
                    return TestRng { state: seed };
                }
            }
            // FNV-1a over the test name.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[lo, hi)`; `lo` when the range is empty.
        pub fn below(&mut self, lo: u64, hi: u64) -> u64 {
            if hi <= lo {
                return lo;
            }
            lo + self.next_u64() % (hi - lo)
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and the combinators artsparse uses.

    use crate::rng::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F>(self, f: F) -> MapStrategy<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            MapStrategy { inner: self, f }
        }

        /// Generate a value, then a dependent strategy from it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMapStrategy<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMapStrategy { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct MapStrategy<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for MapStrategy<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMapStrategy<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMapStrategy<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    // Offset into the span so signed ranges work unchanged.
                    let span = (self.end as i128 - self.start as i128).max(1) as u64;
                    (self.start as i128 + rng.below(0, span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() as i128 - *self.start() as i128 + 1).max(1) as u64;
                    (*self.start() as i128 + rng.below(0, span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// A vector of element strategies samples element-wise.
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            self.iter().map(|s| s.sample(rng)).collect()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` for primitive types.

    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    /// Strategy over `T`'s full domain.
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    //! `prop::collection::vec` and its size specification.

    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end.saturating_sub(1).max(r.start),
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for vectors of a given element strategy and length range.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.below(self.size.lo as u64, self.size.hi_inclusive as u64 + 1) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, len)` — `len` may be a `usize`,
    /// `Range<usize>`, or `RangeInclusive<usize>`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    //! Run-count configuration.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 32 }
        }
    }
}

pub mod prelude {
    //! Everything a property-test file needs in scope.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop::` namespace (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Define property tests: each function runs `cases` times with inputs
/// drawn from the strategies after `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::rng::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), ::std::string::String> = {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                };
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        msg
                    );
                }
            }
        }
    )*};
}

/// `assert!` that fails the current property case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} — {}",
                stringify!($cond),
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that fails the current property case with context.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r,
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} — {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), l, r,
            ));
        }
    }};
}

/// `assert_ne!` counterpart of [`prop_assert_eq!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l,
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..10, y in -5i32..5, f in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
        }

        #[test]
        fn fixed_size_vec(v in prop::collection::vec(0u64..5, 4usize)) {
            prop_assert_eq!(v.len(), 4);
        }

        #[test]
        fn map_and_flat_map_compose(
            (n, items) in (1usize..5).prop_flat_map(|n| {
                (n..n + 1, prop::collection::vec(0u64..100, n))
            })
        ) {
            prop_assert_eq!(items.len(), n);
        }

        #[test]
        fn tuples_sample_independently(t in (0u64..4, 0u64..4, 0u64..4)) {
            prop_assert!(t.0 < 4 && t.1 < 4 && t.2 < 4);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::rng::TestRng::for_test("x");
        let mut b = crate::rng::TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
