//! Offline stand-in for `criterion`.
//!
//! Provides the surface the `crates/bench` targets use — [`Criterion`],
//! benchmark groups with `sample_size`/`warm_up_time`/`measurement_time`/
//! `throughput`, [`Bencher::iter`], [`BenchmarkId`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — measuring with
//! plain `Instant` wall clocks. Results print as mean/min/max per
//! iteration (plus element throughput when configured); there is no
//! statistical analysis or HTML report.
//!
//! When the `BENCH_JSON_DIR` environment variable is set, every group
//! additionally writes a machine-readable summary to
//! `$BENCH_JSON_DIR/BENCH_<group>.json` so CI can track the perf
//! trajectory and guard against regressions.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// One benchmark's recorded summary, kept for the JSON export.
#[derive(Debug, Clone)]
struct BenchRecord {
    id: String,
    samples: usize,
    mean_ns: u128,
    min_ns: u128,
    max_ns: u128,
    /// Deterministic work denominator from [`Throughput::Bytes`], when
    /// set — unlike wall clocks this is stable across machines, so CI
    /// regression guards prefer it.
    bytes: Option<u64>,
}

/// Minimal JSON string escaping for benchmark ids.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render one group's records as a `BENCH_<group>.json` document.
fn render_group_json(group: &str, records: &[BenchRecord]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"group\": \"{}\",", escape_json(group));
    let _ = writeln!(out, "  \"benchmarks\": [");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        let bytes = match r.bytes {
            Some(b) => format!(", \"bytes\": {b}"),
            None => String::new(),
        };
        let _ = writeln!(
            out,
            "    {{\"id\": \"{}\", \"samples\": {}, \"mean_ns\": {}, \"min_ns\": {}, \"max_ns\": {}{bytes}}}{comma}",
            escape_json(&r.id),
            r.samples,
            r.mean_ns,
            r.min_ns,
            r.max_ns
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combine a function name and a parameter into one id.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id from a bare parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Accepted by `bench_function`/`bench_with_input` as the benchmark id.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timer handed to the benchmark closure.
pub struct Bencher {
    /// Per-iteration durations collected by [`Bencher::iter`].
    samples: Vec<Duration>,
    target_samples: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Bencher {
    /// Run `routine` repeatedly: warm up for the configured time, then
    /// record `sample_size` timed iterations (stopping early only if the
    /// measurement budget is exhausted and at least one sample exists).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_deadline = Instant::now() + self.warm_up;
        while Instant::now() < warm_deadline {
            black_box(routine());
        }
        let measure_start = Instant::now();
        for _ in 0..self.target_samples {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if measure_start.elapsed() > self.measurement && !self.samples.is_empty() {
                break;
            }
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
    records: Vec<BenchRecord>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Untimed warm-up period before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Soft budget for the timed sampling phase.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Annotate subsequent benchmarks with a throughput denominator.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut bencher = Bencher {
            samples: Vec::new(),
            target_samples: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
        };
        f(&mut bencher);
        self.report(&id, &bencher.samples);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    fn report(&mut self, id: &str, samples: &[Duration]) {
        let mut line = format!("{}/{id}", self.name);
        if samples.is_empty() {
            println!("{line:<56} (no samples)");
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        self.records.push(BenchRecord {
            id: id.to_string(),
            samples: samples.len(),
            mean_ns: mean.as_nanos(),
            min_ns: min.as_nanos(),
            max_ns: max.as_nanos(),
            bytes: match self.throughput {
                Some(Throughput::Bytes(b)) => Some(b),
                _ => None,
            },
        });
        let _ = write!(
            line,
            "  time: [{} {} {}]  ({} samples)",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max),
            samples.len(),
        );
        if let Some(tp) = self.throughput {
            let secs = mean.as_secs_f64().max(1e-12);
            match tp {
                Throughput::Elements(n) => {
                    let _ = write!(line, "  thrpt: {:.3} Melem/s", n as f64 / secs / 1e6);
                }
                Throughput::Bytes(n) => {
                    let _ = write!(
                        line,
                        "  thrpt: {:.3} MiB/s",
                        n as f64 / secs / (1 << 20) as f64
                    );
                }
            }
        }
        println!("{line}");
    }

    /// Finish the group; with `BENCH_JSON_DIR` set, write the group's
    /// machine-readable summary there as `BENCH_<group>.json`.
    pub fn finish(self) {
        let Ok(dir) = std::env::var("BENCH_JSON_DIR") else {
            return;
        };
        if dir.is_empty() || self.records.is_empty() {
            return;
        }
        // Keep file names shell-friendly whatever the group is called.
        let slug: String = self
            .name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        let path = std::path::Path::new(&dir).join(format!("BENCH_{slug}.json"));
        let body = render_group_json(&self.name, &self.records);
        if let Err(e) = std::fs::create_dir_all(&dir).and_then(|_| std::fs::write(&path, body)) {
            eprintln!("criterion: failed to write {}: {e}", path.display());
        } else {
            println!("criterion: wrote {}", path.display());
        }
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Post-construction configuration hook (accepted, ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_secs(2),
            throughput: None,
            records: Vec::new(),
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Bundle benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(20));
        group.throughput(Throughput::Elements(100));
        let mut count = 0u64;
        group.bench_function(BenchmarkId::new("sum", 100), |b| {
            b.iter(|| {
                count += 1;
                (0..100u64).sum::<u64>()
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(count >= 3, "benchmark closure ran {count} times");
    }

    #[test]
    fn group_json_renders_valid_records() {
        let records = vec![
            BenchRecord {
                id: "pre-refactor".into(),
                samples: 30,
                mean_ns: 1_000_000,
                min_ns: 900_000,
                max_ns: 1_200_000,
                bytes: Some(2_363_392),
            },
            BenchRecord {
                id: "pipe\"line".into(),
                samples: 5,
                mean_ns: 10,
                min_ns: 1,
                max_ns: 20,
                bytes: None,
            },
        ];
        let body = render_group_json("read_pipeline", &records);
        assert!(body.contains("\"group\": \"read_pipeline\""));
        assert!(body.contains("\"mean_ns\": 1000000"));
        assert!(body.contains("\"bytes\": 2363392"));
        assert_eq!(body.matches("\"bytes\"").count(), 1, "None renders no key");
        assert!(body.contains("pipe\\\"line"));
        // Two entries, one trailing-comma-free.
        assert_eq!(body.matches("\"id\"").count(), 2);
        assert!(!body.contains("}},\n  ]"));
    }
}
