//! Failure injection: corrupted and truncated data must surface as errors,
//! never as panics or phantom results.

use artsparse::metrics::OpCounter;
use artsparse::patterns::rng::SplitMix64;
use artsparse::storage::{MemBackend, StorageBackend, StorageEngine};
use artsparse::{CoordBuffer, FormatKind, Shape};

fn build_index(kind: FormatKind, shape: &Shape, coords: &CoordBuffer) -> Vec<u8> {
    let counter = OpCounter::new();
    kind.create().build(coords, shape, &counter).unwrap().index
}

fn sample_data() -> (Shape, CoordBuffer) {
    let shape = Shape::new(vec![16, 16, 16]).unwrap();
    let mut rng = SplitMix64::new(99);
    let mut coords = CoordBuffer::new(3);
    for _ in 0..64 {
        coords
            .push(&[rng.next_below(16), rng.next_below(16), rng.next_below(16)])
            .unwrap();
    }
    (shape, coords)
}

#[test]
fn every_index_truncation_errors_cleanly() {
    let (shape, coords) = sample_data();
    let counter = OpCounter::new();
    let queries = CoordBuffer::from_points(3, &[[1u64, 2, 3], [0, 0, 0]]).unwrap();
    for kind in FormatKind::ALL {
        let index = build_index(kind, &shape, &coords);
        let org = kind.create();
        // Truncate at a spread of cut points including every boundary-ish
        // position near the start and a sweep through the payload.
        let cuts: Vec<usize> = (0..64.min(index.len()))
            .chain((0..index.len()).step_by(7))
            .collect();
        for cut in cuts {
            let r = org.read(&index[..cut], &queries, &counter);
            assert!(r.is_err(), "{kind}: truncation at {cut} decoded");
        }
        // The intact index still reads.
        assert!(org.read(&index, &queries, &counter).is_ok(), "{kind}");
    }
}

#[test]
fn random_byte_flips_never_panic() {
    let (shape, coords) = sample_data();
    let counter = OpCounter::new();
    let queries = CoordBuffer::from_points(3, &[[1u64, 2, 3]]).unwrap();
    let mut rng = SplitMix64::new(1234);
    for kind in FormatKind::ALL {
        let index = build_index(kind, &shape, &coords);
        for _ in 0..200 {
            let mut bad = index.clone();
            let at = rng.next_below(bad.len() as u64) as usize;
            bad[at] ^= (rng.next_below(255) + 1) as u8;
            // Any outcome is fine except a panic or a wrong-length result.
            if let Ok(slots) = kind.create().read(&bad, &queries, &counter) {
                assert_eq!(slots.len(), queries.len(), "{kind}");
            }
        }
    }
}

#[test]
fn cross_format_index_confusion_is_detected() {
    let (shape, coords) = sample_data();
    let counter = OpCounter::new();
    let queries = CoordBuffer::from_points(3, &[[1u64, 2, 3]]).unwrap();
    for build_kind in FormatKind::ALL {
        let index = build_index(build_kind, &shape, &coords);
        for read_kind in FormatKind::ALL {
            if read_kind == build_kind {
                continue;
            }
            let r = read_kind.create().read(&index, &queries, &counter);
            assert!(
                r.is_err(),
                "{read_kind} read an index built by {build_kind}"
            );
        }
    }
}

#[test]
fn engine_survives_foreign_blobs_in_the_store() {
    let backend = MemBackend::new();
    backend.put("README.txt", b"not a fragment").unwrap();
    backend.put("frag-garbage.asf.bak", &[1, 2, 3]).unwrap();
    let engine = StorageEngine::open(
        backend,
        FormatKind::Linear,
        Shape::new(vec![8, 8]).unwrap(),
        8,
    )
    .unwrap();
    let coords = CoordBuffer::from_points(2, &[[1u64, 1]]).unwrap();
    engine.write_points::<f64>(&coords, &[1.0]).unwrap();
    // Foreign blobs are ignored by fragment discovery.
    assert_eq!(engine.fragments().unwrap().len(), 1);
    assert_eq!(engine.read_values::<f64>(&coords).unwrap(), vec![Some(1.0)]);
}

#[test]
fn corrupted_fragment_header_fails_reads_not_writes() {
    let engine = StorageEngine::open(
        MemBackend::new(),
        FormatKind::Csf,
        Shape::new(vec![8, 8]).unwrap(),
        8,
    )
    .unwrap();
    let coords = CoordBuffer::from_points(2, &[[2u64, 2]]).unwrap();
    engine.write_points::<f64>(&coords, &[1.0]).unwrap();
    let name = engine.fragments().unwrap()[0].clone();
    let mut bytes = engine.backend().get(&name).unwrap();
    bytes[0] ^= 0xFF;
    engine.backend().put(&name, &bytes).unwrap();
    assert!(engine.read(&coords).is_err());
    // New writes still work alongside the corrupted fragment.
    let c2 = CoordBuffer::from_points(2, &[[3u64, 3]]).unwrap();
    assert!(engine.write_points::<f64>(&c2, &[2.0]).is_ok());
}

#[test]
fn wrong_arity_queries_are_rejected_by_all_formats() {
    let (shape, coords) = sample_data();
    let counter = OpCounter::new();
    let bad = CoordBuffer::from_points(2, &[[1u64, 2]]).unwrap();
    for kind in FormatKind::ALL {
        let index = build_index(kind, &shape, &coords);
        assert!(
            kind.create().read(&index, &bad, &counter).is_err(),
            "{kind} accepted 2D queries against a 3D index"
        );
    }
}
