//! Property tests for the subsystems beyond the paper's five formats:
//! codecs, striping, MatrixMarket, blocked grids, kernels, consolidation.

use artsparse::core::ops::spmv;
use artsparse::metrics::OpCounter;
use artsparse::patterns::mtx::{read_mtx_str, write_mtx};
use artsparse::storage::{Codec, MemBackend, StorageBackend, StorageEngine, StripedBackend};
use artsparse::tensor::BlockGrid;
use artsparse::{CoordBuffer, FormatKind, Region, Shape};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every codec is lossless on arbitrary byte payloads.
    #[test]
    fn codecs_roundtrip_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..512)) {
        for codec in [Codec::None, Codec::Rle, Codec::DeltaVarint] {
            let packed = codec.compress(&data);
            let unpacked = codec.decompress(&packed, data.len()).unwrap();
            prop_assert_eq!(&unpacked, &data, "{:?}", codec);
        }
    }

    /// Striped backends reassemble arbitrary blobs for any geometry.
    #[test]
    fn striping_roundtrips(
        data in prop::collection::vec(any::<u8>(), 0..400),
        stripes in 1usize..6,
        stripe_size in 1usize..40,
        prefix in 0usize..450,
    ) {
        let b = StripedBackend::new(
            (0..stripes).map(|_| MemBackend::new()).collect::<Vec<_>>(),
            stripe_size,
        );
        b.put("x", &data).unwrap();
        prop_assert_eq!(b.get("x").unwrap(), data.clone());
        let want: Vec<u8> = data.iter().copied().take(prefix).collect();
        prop_assert_eq!(b.get_prefix("x", prefix).unwrap(), want);
        prop_assert_eq!(b.size("x").unwrap(), data.len() as u64);
    }

    /// MatrixMarket writes parse back identically.
    #[test]
    fn mtx_roundtrips(
        rows in 1u64..40,
        cols in 1u64..40,
        pts in prop::collection::vec((0u64..40, 0u64..40, -100i32..100), 0..60),
    ) {
        let mut coords = CoordBuffer::new(2);
        let mut values = Vec::new();
        for (r, c, v) in pts {
            coords.push(&[r % rows, c % cols]).unwrap();
            values.push(v as f64 / 4.0);
        }
        let shape = Shape::new(vec![rows, cols]).unwrap();
        let mut buf = Vec::new();
        write_mtx(&mut buf, &shape, &coords, &values).unwrap();
        let m = read_mtx_str(std::str::from_utf8(&buf).unwrap()).unwrap();
        prop_assert_eq!(m.shape.dims(), shape.dims());
        prop_assert_eq!(&m.coords, &coords);
        prop_assert_eq!(&m.values, &values);
    }

    /// Block grids are bijective for arbitrary geometries.
    #[test]
    fn block_grid_bijective(
        dims in prop::collection::vec(1u64..30, 1..4),
        blocks in prop::collection::vec(1u64..12, 1..4),
        frac in prop::collection::vec(0.0f64..1.0, 1..4),
    ) {
        let d = dims.len().min(blocks.len()).min(frac.len());
        let dims = &dims[..d];
        let blocks = &blocks[..d];
        let grid = BlockGrid::new(dims, blocks).unwrap();
        let coord: Vec<u64> = (0..d)
            .map(|k| ((dims[k] as f64 * frac[k]) as u64).min(dims[k] - 1))
            .collect();
        let addr = grid.address(&coord).unwrap();
        prop_assert_eq!(grid.coordinate(addr).unwrap(), coord.clone());
        prop_assert!(grid.block_region(addr.block).unwrap().contains(&coord));
    }

    /// SpMV over any format equals the triplet oracle for random matrices.
    #[test]
    fn spmv_matches_oracle(
        pts in prop::collection::vec((0u64..12, 0u64..12, -50i32..50), 1..40),
        xs in prop::collection::vec(-10i32..10, 12),
    ) {
        let shape = Shape::new(vec![12, 12]).unwrap();
        // Dedup (last wins) to avoid duplicate-coordinate ambiguity.
        let mut dedup = std::collections::HashMap::new();
        for (r, c, v) in &pts {
            dedup.insert((*r, *c), *v as f64);
        }
        let mut coords = CoordBuffer::new(2);
        let mut values = Vec::new();
        for (&(r, c), &v) in &dedup {
            coords.push(&[r, c]).unwrap();
            values.push(v);
        }
        let x: Vec<f64> = xs.iter().map(|&v| v as f64).collect();
        let mut oracle = vec![0.0f64; 12];
        for (&(r, c), &v) in &dedup {
            oracle[r as usize] += v * x[c as usize];
        }
        let counter = OpCounter::new();
        for kind in [FormatKind::Csf, FormatKind::HiCoo, FormatKind::GcscPP] {
            let org = kind.create();
            let built = org.build(&coords, &shape, &counter).unwrap();
            let payload = artsparse::tensor::value::pack(&values);
            let reorg = built.reorganize_values(&payload, 8);
            let slot_values: Vec<f64> =
                artsparse::tensor::value::unpack(&reorg).unwrap();
            let y = spmv(&shape, &built.index, &slot_values, &x, &counter).unwrap();
            for (a, b) in y.iter().zip(&oracle) {
                prop_assert!((a - b).abs() < 1e-9, "{}", kind);
            }
        }
    }

    /// Consolidation never changes what a region read returns.
    #[test]
    fn consolidation_preserves_semantics(
        pts in prop::collection::vec((0u64..16, 0u64..16, -50i32..50), 1..40),
        splits in 1usize..5,
        kind_idx in 0usize..FormatKind::ALL.len(),
    ) {
        let shape = Shape::new(vec![16, 16]).unwrap();
        let kind = FormatKind::ALL[kind_idx];
        let engine =
            StorageEngine::open(MemBackend::new(), kind, shape.clone(), 8).unwrap();
        // Write the points split across `splits` fragments.
        let per = pts.len().div_ceil(splits);
        for chunk in pts.chunks(per) {
            let mut coords = CoordBuffer::new(2);
            let mut values = Vec::new();
            for (r, c, v) in chunk {
                coords.push(&[*r, *c]).unwrap();
                values.push(*v as f64);
            }
            engine.write_points::<f64>(&coords, &values).unwrap();
        }
        let all = Region::full(&shape).to_coords();
        let before = engine.read_values::<f64>(&all).unwrap();
        engine.consolidate().unwrap();
        let after = engine.read_values::<f64>(&all).unwrap();
        prop_assert_eq!(before, after, "{}", kind);
        prop_assert!(engine.fragments().unwrap().len() <= 1);
    }

    /// HiCOO round-trips arbitrary point sets through the engine.
    #[test]
    fn hicoo_engine_roundtrip(
        pts in prop::collection::vec((0u64..64, 0u64..64, 0u64..64), 0..50),
    ) {
        let shape = Shape::new(vec![64, 64, 64]).unwrap();
        let mut dedup = std::collections::HashMap::new();
        for (a, b, c) in &pts {
            dedup.insert(vec![*a, *b, *c], (*a + *b + *c) as f64);
        }
        let mut coords = CoordBuffer::new(3);
        let mut values = Vec::new();
        for (p, v) in &dedup {
            coords.push(p).unwrap();
            values.push(*v);
        }
        let engine =
            StorageEngine::open(MemBackend::new(), FormatKind::HiCoo, shape, 8).unwrap();
        engine.write_points::<f64>(&coords, &values).unwrap();
        let got = engine.read_values::<f64>(&coords).unwrap();
        for ((p, v), g) in dedup.iter().zip(coords.iter().map(|p| p.to_vec()).zip(&got).map(|(_, g)| g)) {
            let _ = (p, v);
            prop_assert!(g.is_some());
        }
        for (i, g) in got.iter().enumerate() {
            prop_assert_eq!(g.unwrap(), values[i]);
        }
    }
}
