//! Property-based tests (proptest) for the core invariants.

use artsparse::core::formats::csf::CsfTree;
use artsparse::metrics::OpCounter;
use artsparse::tensor::permute::is_permutation;
use artsparse::{CoordBuffer, FormatKind, Region, Shape};
use proptest::prelude::*;
use std::collections::HashSet;

/// Strategy: a small shape of 1–4 dimensions, each of size 1–12.
fn shape_strategy() -> impl Strategy<Value = Shape> {
    prop::collection::vec(1u64..=12, 1..=4).prop_map(|dims| Shape::new(dims).unwrap())
}

/// Strategy: a shape plus up to `max_points` points inside it.
fn tensor_strategy(max_points: usize) -> impl Strategy<Value = (Shape, CoordBuffer)> {
    shape_strategy().prop_flat_map(move |shape| {
        let dims = shape.dims().to_vec();
        let point = dims.iter().map(|&m| 0u64..m).collect::<Vec<_>>();
        prop::collection::vec(point, 0..max_points).prop_map(move |pts| {
            let mut buf = CoordBuffer::new(shape.ndim());
            for p in &pts {
                buf.push(p).unwrap();
            }
            (shape.clone(), buf)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For every format: build → read finds exactly the inserted set and
    /// never invents points.
    #[test]
    fn build_read_is_exact((shape, coords) in tensor_strategy(40)) {
        let counter = OpCounter::new();
        let truth: HashSet<Vec<u64>> = coords.iter().map(|p| p.to_vec()).collect();
        let queries = Region::full(&shape).to_coords();
        for kind in FormatKind::ALL {
            let org = kind.create();
            let built = org.build(&coords, &shape, &counter).unwrap();
            let slots = org.read(&built.index, &queries, &counter).unwrap();
            prop_assert_eq!(slots.len(), queries.len());
            for (q, slot) in queries.iter().zip(&slots) {
                prop_assert_eq!(
                    slot.is_some(),
                    truth.contains(q),
                    "{} at {:?}", kind, q
                );
                if let Some(s) = slot {
                    prop_assert!((*s as usize) < coords.len());
                }
            }
        }
    }

    /// Every sorting format returns a valid permutation map; every
    /// non-sorting format returns none.
    #[test]
    fn maps_are_permutations((shape, coords) in tensor_strategy(40)) {
        let counter = OpCounter::new();
        for kind in FormatKind::ALL {
            let built = kind.create().build(&coords, &shape, &counter).unwrap();
            match built.map {
                Some(map) => {
                    prop_assert_eq!(map.len(), coords.len());
                    prop_assert!(is_permutation(&map), "{}", kind);
                }
                None => prop_assert!(
                    matches!(kind, FormatKind::Coo | FormatKind::Linear),
                    "{} must return a map", kind
                ),
            }
        }
    }

    /// The Table I space model upper-bounds the actual index payload for
    /// every format (payload = encoded words excluding the codec header).
    #[test]
    fn space_model_bounds_actual_size((shape, coords) in tensor_strategy(60)) {
        let counter = OpCounter::new();
        let n = coords.len() as u64;
        for kind in FormatKind::ALL {
            let org = kind.create();
            let built = org.build(&coords, &shape, &counter).unwrap();
            let payload_bytes = built.index.len() as u64;
            let predicted_words = org.predicted_index_words(n, &shape);
            // Generous envelope: model words + header + per-section length
            // prefixes (≤ 3d+4 sections of 8 bytes each) + shape dims.
            let header_slack = 64 + 8 * (3 * shape.ndim() as u64 + 6) + 8 * shape.ndim() as u64;
            prop_assert!(
                payload_bytes <= predicted_words * 8 + header_slack,
                "{}: {} bytes vs {} predicted words",
                kind, payload_bytes, predicted_words
            );
        }
    }

    /// linearize ∘ delinearize = id on random addresses.
    #[test]
    fn linearize_roundtrip(shape in shape_strategy(), frac in 0.0f64..1.0) {
        let addr = (shape.volume() as f64 * frac) as u64 % shape.volume();
        let coord = shape.delinearize(addr).unwrap();
        prop_assert_eq!(shape.linearize(&coord).unwrap(), addr);
    }

    /// CSF structural invariants hold for arbitrary tensors.
    #[test]
    fn csf_tree_invariants((shape, coords) in tensor_strategy(60)) {
        let counter = OpCounter::new();
        let built = FormatKind::Csf.create().build(&coords, &shape, &counter).unwrap();
        let (tree, n) = CsfTree::decode(&built.index).unwrap();
        let d = tree.shape.ndim();
        prop_assert_eq!(n as usize, coords.len());
        prop_assert_eq!(tree.nfibs.len(), d);
        // Leaf level holds one node per point.
        prop_assert_eq!(tree.nfibs[d - 1], coords.len() as u64);
        // Level sizes never shrink going down (children ≥ parents).
        for w in tree.nfibs.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        // fptr invariants: monotone, spanning, consistent with nfibs.
        for i in 0..d - 1 {
            let p = &tree.fptr[i];
            prop_assert_eq!(p.len() as u64, tree.nfibs[i] + 1);
            prop_assert_eq!(p[0], 0);
            prop_assert_eq!(*p.last().unwrap(), tree.nfibs[i + 1]);
            prop_assert!(p.windows(2).all(|w| w[0] <= w[1]));
            // Children within each node are strictly increasing.
            for node in 0..tree.nfibs[i] as usize {
                let (lo, hi) = (p[node] as usize, p[node + 1] as usize);
                let kids = &tree.fids[i + 1][lo..hi];
                if i + 1 < d - 1 {
                    prop_assert!(kids.windows(2).all(|w| w[0] < w[1]));
                } else {
                    // Leaves may repeat on duplicate coordinates.
                    prop_assert!(kids.windows(2).all(|w| w[0] <= w[1]));
                }
            }
        }
        // Dimension order sorts the boundary ascending.
        let sorted_dims: Vec<u64> =
            tree.order.iter().map(|&k| tree.shape.dim(k)).collect();
        prop_assert!(sorted_dims.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Region algebra: intersection is commutative, contained in both, and
    /// `contains` agrees with membership of the intersection.
    #[test]
    fn region_intersection_laws(
        lo_a in prop::collection::vec(0u64..20, 2..4),
        sz_a in prop::collection::vec(1u64..10, 2..4),
        lo_b in prop::collection::vec(0u64..20, 2..4),
        sz_b in prop::collection::vec(1u64..10, 2..4),
    ) {
        let d = lo_a.len().min(sz_a.len()).min(lo_b.len()).min(sz_b.len());
        let a = Region::from_start_size(&lo_a[..d], &sz_a[..d]).unwrap();
        let b = Region::from_start_size(&lo_b[..d], &sz_b[..d]).unwrap();
        let ab = a.intersection(&b);
        let ba = b.intersection(&a);
        prop_assert_eq!(&ab, &ba);
        match ab {
            None => prop_assert!(!a.intersects(&b)),
            Some(i) => {
                prop_assert!(a.intersects(&b));
                for cell in i.iter_cells().take(200) {
                    prop_assert!(a.contains(&cell) && b.contains(&cell));
                }
            }
        }
    }

    /// Typed value round-trip through reorganization for arbitrary maps.
    #[test]
    fn value_reorganization_is_consistent((shape, coords) in tensor_strategy(30)) {
        let counter = OpCounter::new();
        let values: Vec<u64> = (0..coords.len() as u64).collect();
        let payload = artsparse::tensor::value::pack(&values);
        for kind in FormatKind::ALL {
            let org = kind.create();
            let built = org.build(&coords, &shape, &counter).unwrap();
            let reorg = built.reorganize_values(&payload, 8);
            let decoded: Vec<u64> =
                artsparse::tensor::value::unpack(&reorg).unwrap();
            // Reorganization is a permutation of the values.
            let mut sorted = decoded.clone();
            sorted.sort_unstable();
            prop_assert_eq!(&sorted, &values, "{}", kind);
            // And each point's slot holds that point's value.
            if !coords.is_empty() {
                let q = CoordBuffer::from_points(shape.ndim(), &[coords.point(0)]).unwrap();
                let slot = org.read(&built.index, &q, &counter).unwrap()[0].unwrap();
                let got = decoded[slot as usize];
                // With duplicates, any record of the same coordinate works.
                let ok = coords
                    .iter()
                    .enumerate()
                    .any(|(i, p)| p == coords.point(0) && got == i as u64);
                prop_assert!(ok, "{}: slot value {} wrong", kind, got);
            }
        }
    }
}

#[test]
fn csf_space_spans_best_to_worst_case() {
    // Deterministic companion to the property tests: the same n yields a
    // small tree for a chain and a large one for a diagonal.
    let counter = OpCounter::new();
    let shape = Shape::new(vec![12, 12, 12]).unwrap();
    let chain: Vec<[u64; 3]> = (0..12).map(|k| [5, 5, k]).collect();
    let diag: Vec<[u64; 3]> = (0..12).map(|k| [k, k, k]).collect();
    let build = |pts: &[[u64; 3]]| {
        let coords = CoordBuffer::from_points(3, pts).unwrap();
        FormatKind::Csf
            .create()
            .build(&coords, &shape, &counter)
            .unwrap()
            .index
            .len()
    };
    assert!(build(&chain) < build(&diag));
}
