//! Compression codecs and fragment consolidation, end to end.

use artsparse::metrics::OpCounter;
use artsparse::storage::{Codec, MemBackend, StorageEngine};
use artsparse::{CoordBuffer, Dataset, FormatKind, Pattern, PatternParams, Region, Scale, Shape};

fn pts(p: &[[u64; 2]]) -> CoordBuffer {
    CoordBuffer::from_points(2, p).unwrap()
}

#[test]
fn compressed_fragments_roundtrip_every_format_and_codec() {
    let ds = Dataset::for_scale(Pattern::Tsp, 2, Scale::Smoke, PatternParams::default());
    let values = ds.values();
    let queries = ds.read_region().to_coords();
    for kind in FormatKind::PAPER_FIVE {
        for (ic, vc) in [
            (Codec::DeltaVarint, Codec::None),
            (Codec::Rle, Codec::Rle),
            (Codec::DeltaVarint, Codec::Rle),
        ] {
            let engine = StorageEngine::open(MemBackend::new(), kind, ds.shape.clone(), 8)
                .unwrap()
                .with_compression(ic, vc);
            engine.write_points::<f64>(&ds.coords, &values).unwrap();
            let plain = StorageEngine::open(MemBackend::new(), kind, ds.shape.clone(), 8).unwrap();
            plain.write_points::<f64>(&ds.coords, &values).unwrap();
            let a = engine.read_values::<f64>(&queries).unwrap();
            let b = plain.read_values::<f64>(&queries).unwrap();
            assert_eq!(a, b, "{kind} {ic:?}/{vc:?}");
        }
    }
}

#[test]
fn delta_varint_shrinks_linear_over_tsp() {
    // TSP's LINEAR addresses are sorted with small gaps — the codec's
    // best case, and the paper's orthogonality claim in action: same
    // organization, much smaller fragment.
    let ds = Dataset::for_scale(Pattern::Tsp, 2, Scale::Smoke, PatternParams::default());
    let values = ds.values();
    let plain =
        StorageEngine::open(MemBackend::new(), FormatKind::Linear, ds.shape.clone(), 8).unwrap();
    let packed = StorageEngine::open(MemBackend::new(), FormatKind::Linear, ds.shape.clone(), 8)
        .unwrap()
        .with_compression(Codec::DeltaVarint, Codec::None);
    let rp = plain.write_points::<f64>(&ds.coords, &values).unwrap();
    let rc = packed.write_points::<f64>(&ds.coords, &values).unwrap();
    assert!(
        (rc.total_bytes as f64) < rp.total_bytes as f64 * 0.7,
        "compressed {} vs plain {}",
        rc.total_bytes,
        rp.total_bytes
    );
}

#[test]
fn enumerate_inverts_build_for_every_format() {
    let counter = OpCounter::new();
    for pattern in Pattern::ALL {
        let ds = Dataset::for_scale(pattern, 3, Scale::Smoke, PatternParams::default());
        for kind in FormatKind::ALL {
            let org = kind.create();
            let built = org.build(&ds.coords, &ds.shape, &counter).unwrap();
            let listed = org.enumerate(&built.index, &counter).unwrap();
            assert_eq!(listed.len(), ds.nnz(), "{kind} {pattern}");
            // Slot alignment: original point i must sit at slot map[i].
            match &built.map {
                None => assert_eq!(&listed, &ds.coords, "{kind} {pattern}"),
                Some(map) => {
                    for (i, p) in ds.coords.iter().enumerate() {
                        assert_eq!(listed.point(map[i]), p, "{kind} {pattern} point {i}");
                    }
                }
            }
        }
    }
}

#[test]
fn consolidation_merges_fragments_and_preserves_reads() {
    let shape = Shape::new(vec![64, 64]).unwrap();
    let engine =
        StorageEngine::open(MemBackend::new(), FormatKind::GcsrPP, shape.clone(), 8).unwrap();
    // Ten small fragments with one overlap ([5,5] rewritten later).
    for f in 0..10u64 {
        let coords = pts(&[[f, f], [5, 5], [f + 20, 63 - f]]);
        engine
            .write_points::<f64>(&coords, &[f as f64, 100.0 + f as f64, -(f as f64)])
            .unwrap();
    }
    let all = Region::full(&shape).to_coords();
    let before = engine.read_values::<f64>(&all).unwrap();
    assert_eq!(engine.fragments().unwrap().len(), 10);

    let report = engine.consolidate().unwrap();
    assert_eq!(report.merged_fragments, 10);
    assert_eq!(engine.fragments().unwrap().len(), 1);
    // 10 fragments × 3 points, minus 10 duplicate [5,5]s (fragment 5's
    // own [f,f] point collides with its [5,5] too).
    assert_eq!(report.n_points, 20);
    assert!(report.after_bytes < report.before_bytes);

    let after = engine.read_values::<f64>(&all).unwrap();
    assert_eq!(before, after, "consolidation changed query results");
    // Last-writer-wins on the overlap.
    assert_eq!(
        engine.read_values::<f64>(&pts(&[[5, 5]])).unwrap(),
        vec![Some(109.0)]
    );
}

#[test]
fn consolidation_across_mixed_formats() {
    let shape = Shape::new(vec![32, 32]).unwrap();
    let backend = MemBackend::new();
    let mut holder = Some(backend);
    for (i, kind) in [FormatKind::Coo, FormatKind::Csf, FormatKind::Linear]
        .into_iter()
        .enumerate()
    {
        let e = StorageEngine::open(holder.take().unwrap(), kind, shape.clone(), 8).unwrap();
        e.write_points::<f64>(&pts(&[[i as u64, 0], [0, i as u64]]), &[i as f64, i as f64])
            .unwrap();
        holder = Some(e.into_backend());
    }
    let engine = StorageEngine::open(holder.unwrap(), FormatKind::Csf, shape.clone(), 8).unwrap();
    let report = engine.consolidate().unwrap();
    assert_eq!(report.merged_fragments, 3);
    // The COO fragment wrote [0,0] twice (its [i,0] and [0,i] coincide at
    // i = 0), so 6 points collapse to 5; only COO touched [0,0].
    assert_eq!(report.n_points, 5);
    assert_eq!(
        engine.read_values::<f64>(&pts(&[[0, 0]])).unwrap(),
        vec![Some(0.0)]
    );
}

#[test]
fn consolidating_zero_or_one_fragment_is_a_noop() {
    let shape = Shape::new(vec![8, 8]).unwrap();
    let engine = StorageEngine::open(MemBackend::new(), FormatKind::Coo, shape.clone(), 8).unwrap();
    let r = engine.consolidate().unwrap();
    assert_eq!(r.merged_fragments, 0);
    assert!(r.fragment.is_none());
    engine.write_points::<f64>(&pts(&[[1, 1]]), &[1.0]).unwrap();
    let r = engine.consolidate().unwrap();
    assert_eq!(r.merged_fragments, 1);
    assert!(r.fragment.is_none());
    assert_eq!(engine.fragments().unwrap().len(), 1);
}

#[test]
fn export_lists_all_points_in_address_order() {
    let shape = Shape::new(vec![16, 16]).unwrap();
    let engine =
        StorageEngine::open(MemBackend::new(), FormatKind::GcscPP, shape.clone(), 8).unwrap();
    engine
        .write_points::<f64>(&pts(&[[9, 9], [0, 1]]), &[99.0, 1.0])
        .unwrap();
    engine
        .write_points::<f64>(&pts(&[[3, 3]]), &[33.0])
        .unwrap();
    let (coords, payload) = engine.export().unwrap();
    let addrs: Vec<u64> = coords.iter().map(|p| shape.linearize(p).unwrap()).collect();
    assert_eq!(addrs, vec![1, 51, 153]);
    let vals: Vec<f64> = artsparse::tensor::value::unpack(&payload).unwrap();
    assert_eq!(vals, vec![1.0, 33.0, 99.0]);
}

#[test]
fn consolidated_compressed_store_reads_back() {
    let ds = Dataset::for_scale(Pattern::Msp, 2, Scale::Smoke, PatternParams::default());
    let values = ds.values();
    let engine = StorageEngine::open(MemBackend::new(), FormatKind::Linear, ds.shape.clone(), 8)
        .unwrap()
        .with_compression(Codec::DeltaVarint, Codec::None);
    // Split the dataset into 4 fragments.
    let quarter = ds.nnz() / 4;
    for q in 0..4 {
        let lo = q * quarter;
        let hi = if q == 3 { ds.nnz() } else { (q + 1) * quarter };
        let mut coords = CoordBuffer::new(2);
        for i in lo..hi {
            coords.push(ds.coords.point(i)).unwrap();
        }
        engine
            .write_points::<f64>(&coords, &values[lo..hi])
            .unwrap();
    }
    let queries = ds.read_region().to_coords();
    let before = engine.read_values::<f64>(&queries).unwrap();
    engine.consolidate().unwrap();
    let after = engine.read_values::<f64>(&queries).unwrap();
    assert_eq!(before, after);
    assert_eq!(engine.fragments().unwrap().len(), 1);
}
