//! Property tests for the direct format-to-format conversion layer:
//! `convert(A→B)` must equal the decode-to-COO-and-rebuild oracle
//! byte-for-byte — index bytes and value order — for every ordered pair
//! of organizations, sequentially and under forced parallelism.

use artsparse::core::convert::convert;
use artsparse::core::BuildOutput;
use artsparse::metrics::OpCounter;
use artsparse::tensor::par::{self, Parallelism};
use artsparse::tensor::permute::scatter_bytes;
use artsparse::{CoordBuffer, FormatKind, Shape};
use proptest::prelude::*;

/// Strategy: a small shape of 1–4 dimensions, each of size 1–12.
fn shape_strategy() -> impl Strategy<Value = Shape> {
    prop::collection::vec(1u64..=12, 1..=4).prop_map(|dims| Shape::new(dims).unwrap())
}

/// Strategy: a shape plus up to `max_points` points inside it
/// (duplicates allowed — conversion must preserve them).
fn tensor_strategy(max_points: usize) -> impl Strategy<Value = (Shape, CoordBuffer)> {
    shape_strategy().prop_flat_map(move |shape| {
        let dims = shape.dims().to_vec();
        let point = dims.iter().map(|&m| 0u64..m).collect::<Vec<_>>();
        prop::collection::vec(point, 0..max_points).prop_map(move |pts| {
            let mut buf = CoordBuffer::new(shape.ndim());
            for p in &pts {
                buf.push(p).unwrap();
            }
            (shape.clone(), buf)
        })
    })
}

/// The oracle every conversion must match: enumerate the source index
/// back to coordinates (slot order) and rebuild the target from scratch.
fn oracle(from: FormatKind, index: &[u8], to: FormatKind, shape: &Shape) -> BuildOutput {
    let c = OpCounter::new();
    let coords = from.create().enumerate(index, &c).unwrap();
    to.create().build(&coords, shape, &c).unwrap()
}

/// Check one ordered pair under the ambient parallelism: identical index
/// bytes and identical value payload after applying the slot maps.
fn check_pair(from: FormatKind, to: FormatKind, shape: &Shape, coords: &CoordBuffer) {
    let c = OpCounter::new();
    let src = from.create().build(coords, shape, &c).unwrap();
    let raw: Vec<u64> = (0..coords.len() as u64).collect();
    let packed = artsparse::tensor::value::pack(&raw);
    let src_values = src.reorganize_values(&packed, 8);

    let conv = convert(from, &src.index, to, shape, &c).unwrap();
    let want = oracle(from, &src.index, to, shape);
    assert_eq!(conv.index, want.index, "{from}→{to} index bytes differ");
    assert_eq!(conv.n_points, want.n_points, "{from}→{to} n differs");
    let got_values = match &conv.map {
        Some(map) => scatter_bytes(&src_values, 8, map),
        None => src_values.clone(),
    };
    let want_values = want.reorganize_values(&src_values, 8);
    assert_eq!(got_values, want_values, "{from}→{to} value order differs");
}

fn check_all_pairs(shape: &Shape, coords: &CoordBuffer, threads: usize) {
    let p = if threads <= 1 {
        Parallelism::sequential()
    } else {
        Parallelism::with_threads(threads).with_cutoff(1)
    };
    par::with(p, || {
        for from in FormatKind::ALL {
            for to in FormatKind::ALL {
                check_pair(from, to, shape, coords);
            }
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every ordered pair, sequential execution.
    #[test]
    fn convert_matches_rebuild_sequential((shape, coords) in tensor_strategy(32)) {
        check_all_pairs(&shape, &coords, 1);
    }

    /// Every ordered pair under forced 4-way parallelism: conversions are
    /// bit-identical to the sequential reference.
    #[test]
    fn convert_matches_rebuild_parallel((shape, coords) in tensor_strategy(32)) {
        check_all_pairs(&shape, &coords, 4);
    }
}

/// Degenerate fragments — empty and single-point — through every pair
/// and both thread counts.
#[test]
fn empty_and_single_point_fragments_all_pairs() {
    let shape = Shape::new(vec![7, 5, 2]).unwrap();
    for coords in [
        CoordBuffer::new(3),
        CoordBuffer::from_points(3, &[[6u64, 4, 1]]).unwrap(),
    ] {
        for threads in [1usize, 4] {
            check_all_pairs(&shape, &coords, threads);
        }
    }
}
