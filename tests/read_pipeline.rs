//! The layered read pipeline must be invisible: whatever combination of
//! parallelism, range fetch, and caching is configured, READ returns
//! byte-identical results to the sequential whole-fragment reference
//! scan — and stays consistent under concurrent writers and readers.

use artsparse::storage::{EngineConfig, MemBackend, StorageEngine};
use artsparse::{CoordBuffer, FormatKind, Region, Shape};
use proptest::prelude::*;
use std::sync::Arc;

/// A small shape of 2–3 dimensions, each of size 2–10.
fn shape_strategy() -> impl Strategy<Value = Shape> {
    prop::collection::vec(2u64..=10, 2..=3).prop_map(|dims| Shape::new(dims).unwrap())
}

/// A shape plus 1–5 fragments of up to 12 points each.
fn store_strategy() -> impl Strategy<Value = (Shape, Vec<Vec<Vec<u64>>>)> {
    shape_strategy().prop_flat_map(|shape| {
        let dims = shape.dims().to_vec();
        let point = dims.iter().map(|&m| 0u64..m).collect::<Vec<_>>();
        prop::collection::vec(prop::collection::vec(point, 1..12), 1..=5)
            .prop_map(move |frags| (shape.clone(), frags))
    })
}

fn buffer(ndim: usize, pts: &[Vec<u64>]) -> CoordBuffer {
    let mut buf = CoordBuffer::new(ndim);
    for p in pts {
        buf.push(p).unwrap();
    }
    buf
}

/// Write the fragments (values encode fragment and slot so collisions
/// are observable), then return the populated backend.
fn populate(shape: &Shape, kind: FormatKind, fragments: &[Vec<Vec<u64>>]) -> MemBackend {
    let writer = StorageEngine::open(MemBackend::new(), kind, shape.clone(), 8).unwrap();
    for (fi, pts) in fragments.iter().enumerate() {
        let coords = buffer(shape.ndim(), pts);
        let values: Vec<f64> = (0..pts.len())
            .map(|slot| (fi * 1000 + slot) as f64)
            .collect();
        writer.write_points::<f64>(&coords, &values).unwrap();
    }
    writer.into_backend()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every pipeline configuration returns byte-identical hits (and the
    /// same scan/match counts) as the sequential whole-fragment
    /// reference.
    #[test]
    fn pipeline_configs_are_equivalent((shape, fragments) in store_strategy()) {
        for kind in [FormatKind::Linear, FormatKind::Coo, FormatKind::Csf] {
            let queries = Region::full(&shape).to_coords();

            // Reference: one thread, whole-fragment fetches, no cache.
            let reference = EngineConfig::default()
                .with_read_parallelism(1)
                .with_range_fetch(false);
            let configs = [
                EngineConfig::default(),                         // parallel + range fetch
                EngineConfig::default().with_read_parallelism(3),
                EngineConfig::default().with_range_fetch(false), // parallel, whole fragments
                EngineConfig::default().with_cache_capacity(1 << 20),
                EngineConfig::default()
                    .with_read_parallelism(2)
                    .with_cache_capacity(512), // cache under eviction pressure
            ];

            let mut backend = populate(&shape, kind, &fragments);
            let expected = {
                let e = StorageEngine::open_with(backend, kind, shape.clone(), 8, reference)
                    .unwrap();
                let r = e.read(&queries).unwrap();
                backend = e.into_backend();
                r
            };
            for config in configs {
                let e = StorageEngine::open_with(
                    backend,
                    kind,
                    shape.clone(),
                    8,
                    config.clone(),
                )
                .unwrap();
                // Twice: the second read exercises any cache hits.
                for pass in 0..2 {
                    let got = e.read(&queries).unwrap();
                    prop_assert_eq!(&got.hits, &expected.hits, "{} {:?} pass {}", kind, config, pass);
                    prop_assert_eq!(got.fragments_scanned, expected.fragments_scanned);
                    prop_assert_eq!(got.fragments_matched, expected.fragments_matched);
                }
                backend = e.into_backend();
            }
        }
    }
}

/// Interleaved writers and readers on one shared engine: reads never
/// error, never return phantom points, and once the writers finish every
/// written point is read back with its final value.
#[test]
fn concurrent_writes_and_reads_stay_consistent() {
    let shape = Shape::new(vec![32, 32]).unwrap();
    let engine = Arc::new(
        StorageEngine::open_with(
            MemBackend::new(),
            FormatKind::Linear,
            shape.clone(),
            8,
            EngineConfig::default().with_cache_capacity(1 << 16),
        )
        .unwrap(),
    );

    let n_writers = 3usize;
    let frags_per_writer = 8usize;
    std::thread::scope(|scope| {
        for w in 0..n_writers {
            let engine = Arc::clone(&engine);
            scope.spawn(move || {
                // Writer w owns rows w, n_writers + w, … — no cross-writer
                // collisions, so final values are deterministic.
                for f in 0..frags_per_writer {
                    let row = (w + f * n_writers) as u64 % 32;
                    let pts: Vec<[u64; 2]> = (0..8).map(|c| [row, c * 4]).collect();
                    let vals: Vec<f64> = (0..8).map(|c| (row * 100 + c * 4) as f64).collect();
                    let coords = CoordBuffer::from_points(2, &pts).unwrap();
                    engine.write_points::<f64>(&coords, &vals).unwrap();
                }
            });
        }
        for _ in 0..2 {
            let engine = Arc::clone(&engine);
            scope.spawn(move || {
                let queries = Region::from_corners(&[0, 0], &[31, 31])
                    .unwrap()
                    .to_coords();
                for _ in 0..20 {
                    let r = engine.read(&queries).unwrap();
                    for hit in &r.hits {
                        // Any point a reader sees carries its final value.
                        assert_eq!(hit.value.len(), 8);
                        let v = f64::from_le_bytes(hit.value.as_slice().try_into().unwrap());
                        assert_eq!(v, (hit.coord[0] * 100 + hit.coord[1]) as f64);
                    }
                }
            });
        }
    });

    let queries = Region::full(&shape).to_coords();
    let vals = engine.read_values::<f64>(&queries).unwrap();
    let mut found = 0;
    for (q, v) in queries.iter().zip(&vals) {
        let expected_here = q[1] % 4 == 0 && (q[0] as usize) < n_writers * frags_per_writer;
        if expected_here {
            assert_eq!(*v, Some((q[0] * 100 + q[1]) as f64), "at {q:?}");
            found += 1;
        } else {
            assert_eq!(*v, None, "phantom point at {q:?}");
        }
    }
    assert_eq!(found, 24 * 8);
}
