//! Crash-safety of the fragment commit protocol, end to end.
//!
//! Each test drives the engine into one crash window with a
//! [`FailingBackend`], then "restarts the process" — reopens an engine
//! over the surviving blobs — and asserts the recovered store holds the
//! protocol's invariants: no torn or half-visible fragments, no
//! duplicated points after an interrupted consolidation, no name
//! collisions between concurrent engines.

use artsparse::storage::{
    AdaptiveReorg, CommitMode, EngineConfig, FailingBackend, FsBackend, MemBackend, SimulatedDisk,
    StorageBackend, StorageEngine, StripedBackend,
};
use artsparse::{CoordBuffer, FormatKind, Shape};
use std::sync::Arc;
use std::time::Duration;

fn pts(p: &[[u64; 2]]) -> CoordBuffer {
    CoordBuffer::from_points(2, p).unwrap()
}

fn shape() -> Shape {
    Shape::new(vec![64, 64]).unwrap()
}

fn open<B: StorageBackend>(backend: B) -> StorageEngine<B> {
    StorageEngine::open(backend, FormatKind::Linear, shape(), 8).unwrap()
}

/// A write that dies mid-put must leave no visible fragment: not to the
/// writing engine, not to a catalog reload, not after reopening the
/// store. The torn bytes live only under a staging name that recovery
/// sweeps.
#[test]
fn torn_write_leaves_no_visible_fragment_after_reopen() {
    let engine = open(FailingBackend::new(MemBackend::new()));
    engine.write_points::<f64>(&pts(&[[1, 1]]), &[1.0]).unwrap();

    // Die mid-put of the staged blob, and make the abort cleanup fail
    // too, so the torn orphan really survives until "restart".
    engine.backend().fail_after_write_bytes(10);
    engine.backend().fail_deletes(true);
    assert!(engine.write_points::<f64>(&pts(&[[2, 2]]), &[2.0]).is_err());

    // Invisible immediately: the engine's own catalog never listed it.
    assert_eq!(engine.fragments().unwrap().len(), 1);
    // The orphan is on the device, but only under a staging name.
    let backend = engine.into_backend();
    backend.disarm();
    assert!(backend.list().unwrap().iter().any(|n| n.ends_with(".tmp")));

    // "Restart": recovery sweeps the orphan; the good fragment survives.
    let engine = open(backend);
    assert_eq!(engine.fragments().unwrap().len(), 1);
    assert!(!engine
        .backend()
        .list()
        .unwrap()
        .iter()
        .any(|n| n.ends_with(".tmp")));
    assert_eq!(
        engine.read_values::<f64>(&pts(&[[1, 1], [2, 2]])).unwrap(),
        vec![Some(1.0), None]
    );
}

/// When the abort cleanup *can* run, the failed write leaves the store
/// completely clean — no reopen needed.
#[test]
fn failed_write_cleans_up_its_staging_blob() {
    let engine = open(FailingBackend::new(MemBackend::new()));
    engine.backend().fail_after_write_bytes(10);
    assert!(engine.write_points::<f64>(&pts(&[[2, 2]]), &[2.0]).is_err());
    engine.backend().disarm();
    // Only the epoch claim marker remains.
    let leftovers: Vec<String> = engine
        .backend()
        .list()
        .unwrap()
        .into_iter()
        .filter(|n| !n.starts_with("epoch-"))
        .collect();
    assert_eq!(leftovers, Vec::<String>::new());
}

/// Direct commit mode leans on `put_atomic`: an interrupted write
/// publishes nothing at all, not even a staging blob.
#[test]
fn direct_mode_interrupted_write_publishes_nothing() {
    let engine = StorageEngine::open_with(
        FailingBackend::new(MemBackend::new()),
        FormatKind::Linear,
        shape(),
        8,
        EngineConfig::default().with_commit_mode(CommitMode::Direct),
    )
    .unwrap();
    engine.backend().fail_after_write_bytes(10);
    assert!(engine.write_points::<f64>(&pts(&[[2, 2]]), &[2.0]).is_err());
    engine.backend().disarm();
    assert!(engine
        .backend()
        .list()
        .unwrap()
        .iter()
        .all(|n| n.starts_with("epoch-")));
}

/// A consolidation that dies before its rename-commit changes nothing:
/// after restart the sources are intact, the tombstone is discarded, and
/// reads see exactly the pre-consolidation data.
#[test]
fn consolidation_crash_before_commit_is_discarded() {
    let engine = open(FailingBackend::new(MemBackend::new()));
    engine.write_points::<f64>(&pts(&[[1, 1]]), &[1.0]).unwrap();
    engine.write_points::<f64>(&pts(&[[2, 2]]), &[2.0]).unwrap();

    // The rename is the commit point; kill it, and kill deletes too so
    // the abort cleanup cannot tidy up — restart must cope with both the
    // staged blob and the (uncommitted) tombstone lying around.
    engine.backend().fail_renames(true);
    engine.backend().fail_deletes(true);
    assert!(engine.consolidate().is_err());

    let backend = engine.into_backend();
    backend.disarm();
    let engine = open(backend);
    assert_eq!(engine.fragments().unwrap().len(), 2);
    assert!(engine
        .backend()
        .list()
        .unwrap()
        .iter()
        .all(|n| !n.ends_with(".tmp") && !n.ends_with(".tsn")));
    assert_eq!(
        engine.read_values::<f64>(&pts(&[[1, 1], [2, 2]])).unwrap(),
        vec![Some(1.0), Some(2.0)]
    );
    assert_eq!(engine.stats().unwrap().total_points, 2);
}

/// A consolidation that dies *after* its rename-commit but before the
/// source deletions must not double the store: restart replays the
/// tombstone, deleting the sources, and reads return each point exactly
/// once with the consolidated (last-writer-wins) values.
#[test]
fn consolidation_crash_after_commit_replays_deletions() {
    let engine = open(FailingBackend::new(MemBackend::new()));
    engine.write_points::<f64>(&pts(&[[1, 1]]), &[1.0]).unwrap();
    engine.write_points::<f64>(&pts(&[[2, 2]]), &[2.0]).unwrap();
    // Overwrite [1,1] so precedence through the crash is observable.
    engine.write_points::<f64>(&pts(&[[1, 1]]), &[3.0]).unwrap();

    engine.backend().fail_deletes(true);
    assert!(engine.consolidate().is_err());

    // The commit landed: consolidated fragment, tombstone, and all three
    // sources coexist on the device right now.
    let backend = engine.into_backend();
    backend.disarm();
    assert!(backend.list().unwrap().iter().any(|n| n.ends_with(".tsn")));
    assert_eq!(
        backend
            .list()
            .unwrap()
            .iter()
            .filter(|n| n.ends_with(".asf"))
            .count(),
        4
    );

    // "Restart": the tombstone replays, the sources go, no duplicates.
    let engine = open(backend);
    assert_eq!(engine.fragments().unwrap().len(), 1);
    assert!(engine
        .backend()
        .list()
        .unwrap()
        .iter()
        .all(|n| !n.ends_with(".tsn")));
    let stats = engine.stats().unwrap();
    assert_eq!(stats.fragments, 1);
    assert_eq!(stats.total_points, 2, "points must not be double-counted");
    assert_eq!(
        engine.read_values::<f64>(&pts(&[[1, 1], [2, 2]])).unwrap(),
        vec![Some(3.0), Some(2.0)]
    );
}

/// An adaptive re-organization killed between the advise step and the
/// rename-commit must change nothing: after restart the store is still
/// readable in its old organization, with no staged blob or tombstone
/// left behind. The pin forces a migration (LINEAR→CSF) so the crash
/// window is guaranteed to open.
#[test]
fn adaptive_migration_crash_before_commit_keeps_old_organization() {
    let engine = StorageEngine::open_with(
        FailingBackend::new(MemBackend::new()),
        FormatKind::Linear,
        shape(),
        8,
        EngineConfig::default().with_adaptive_reorg(AdaptiveReorg::pinned(FormatKind::Csf)),
    )
    .unwrap();
    engine
        .write_points::<f64>(&pts(&[[1, 1], [2, 2]]), &[1.0, 2.0])
        .unwrap();

    // One fragment → consolidation takes the single-fragment migration
    // path (advise → convert → commit). Kill the rename-commit, and kill
    // deletes so the abort cleanup cannot tidy up either.
    engine.backend().fail_renames(true);
    engine.backend().fail_deletes(true);
    assert!(engine.consolidate().is_err());

    // "Restart" without the adaptive policy: recovery discards the
    // staged output and the uncommitted tombstone; the store reads back
    // in the organization it had before the advise.
    let backend = engine.into_backend();
    backend.disarm();
    let engine = open(backend);
    let stats = engine.stats().unwrap();
    assert_eq!(stats.fragments, 1);
    assert_eq!(
        stats.by_format.keys().collect::<Vec<_>>(),
        vec!["LINEAR"],
        "interrupted migration must leave the old organization"
    );
    assert!(engine
        .backend()
        .list()
        .unwrap()
        .iter()
        .all(|n| !n.ends_with(".tmp") && !n.ends_with(".tsn")));
    assert_eq!(
        engine.read_values::<f64>(&pts(&[[1, 1], [2, 2]])).unwrap(),
        vec![Some(1.0), Some(2.0)]
    );
}

/// The happy path of live re-organization: consolidation migrates the
/// store to the advisor's pick, reads are byte-identical across the
/// migration, and a further consolidation is a no-op (convergence).
#[test]
fn adaptive_consolidation_converges_and_preserves_reads() {
    let engine = StorageEngine::open_with(
        MemBackend::new(),
        FormatKind::Coo,
        shape(),
        8,
        EngineConfig::default().with_adaptive_reorg(AdaptiveReorg::default()),
    )
    .unwrap();
    let coords: Vec<[u64; 2]> = (0..32u64).map(|i| [i, (i * 3) % 64]).collect();
    let vals: Vec<f64> = (0..32).map(|i| i as f64 * 0.5).collect();
    let queries = CoordBuffer::from_points(2, &coords).unwrap();
    engine.write_points::<f64>(&queries, &vals[..]).unwrap();
    let before = engine.read_values::<f64>(&queries).unwrap();

    engine.consolidate().unwrap();
    let stats = engine.stats().unwrap();
    assert_eq!(stats.fragments, 1);
    assert_eq!(stats.by_format.len(), 1);
    let organization = stats.by_format.keys().next().unwrap().clone();

    // The store landed on what an offline advisor pass recommends.
    let (all, _) = engine.export().unwrap();
    let sparsity = artsparse::core::SparsityStats::from_coords(&all, &shape());
    let offline = artsparse::core::advisor::recommend_from_stats(
        &sparsity,
        &artsparse::core::advisor::AccessProfile::balanced(),
        &[],
    )
    .best();
    assert_eq!(organization, offline.name());

    // Byte-identical reads across the migration; converged thereafter.
    assert_eq!(engine.read_values::<f64>(&queries).unwrap(), before);
    engine.consolidate().unwrap();
    let again = engine.stats().unwrap();
    assert_eq!(again.fragments, 1);
    assert_eq!(again.by_format.keys().next().unwrap(), &organization);
}

/// Two engines over one store claim distinct epochs, so their fragment
/// names can never collide even when their write sequences do.
#[test]
fn two_engines_over_one_store_never_collide() {
    let store = Arc::new(MemBackend::new());
    let e1 = open(Arc::clone(&store));
    let e2 = open(Arc::clone(&store));
    assert_ne!(e1.epoch(), e2.epoch());

    // Interleave writes: both engines hand out overlapping sequence
    // numbers, so without the epoch in the name these would overwrite
    // each other silently.
    for i in 0..3u64 {
        e1.write_points::<f64>(&pts(&[[i, 0]]), &[i as f64])
            .unwrap();
        e2.write_points::<f64>(&pts(&[[i, 1]]), &[10.0 + i as f64])
            .unwrap();
    }
    assert_eq!(e1.fragments().unwrap().len(), 3);

    // Each engine sees the other's fragments after a refresh; all six
    // names are distinct and all six points are readable.
    e1.refresh().unwrap();
    assert_eq!(e1.fragments().unwrap().len(), 6);
    let q = pts(&[[0, 0], [1, 0], [2, 0], [0, 1], [1, 1], [2, 1]]);
    assert_eq!(
        e1.read_values::<f64>(&q).unwrap(),
        vec![
            Some(0.0),
            Some(1.0),
            Some(2.0),
            Some(10.0),
            Some(11.0),
            Some(12.0)
        ]
    );
}

/// The lost-update regression: a fragment written concurrently while
/// another engine consolidates must keep precedence over the merged
/// output. The consolidated fragment takes the highest *source* sequence
/// number (plus a generation tiebreaker), so the newer write still
/// outranks it.
#[test]
fn fragment_written_during_consolidation_keeps_precedence() {
    let store = Arc::new(MemBackend::new());
    let writer = open(Arc::clone(&store));
    writer.write_points::<f64>(&pts(&[[1, 1]]), &[1.0]).unwrap();
    writer.write_points::<f64>(&pts(&[[2, 2]]), &[2.0]).unwrap();

    // A second engine opens, snapshotting the two fragments...
    let consolidator = open(Arc::clone(&store));
    // ...while the writer lands an overwrite the consolidator's catalog
    // has not seen.
    writer.write_points::<f64>(&pts(&[[1, 1]]), &[9.0]).unwrap();

    // The consolidator merges its stale snapshot. It must not shadow the
    // concurrent overwrite.
    let report = consolidator.consolidate().unwrap();
    assert_eq!(report.merged_fragments, 2);

    consolidator.refresh().unwrap();
    assert_eq!(consolidator.fragments().unwrap().len(), 2);
    assert_eq!(
        consolidator
            .read_values::<f64>(&pts(&[[1, 1], [2, 2]]))
            .unwrap(),
        vec![Some(9.0), Some(2.0)],
        "the concurrent overwrite must win over the consolidated output"
    );
}

/// Reads racing deletes and consolidations on the same engine re-plan
/// instead of failing: a planned fragment that vanishes mid-read is
/// always covered by whatever replaced it.
#[test]
fn reads_racing_consolidation_and_deletes_never_fail() {
    let engine = open(MemBackend::new());
    engine
        .write_points::<f64>(&pts(&[[9, 9]]), &[99.0])
        .unwrap();

    std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            for i in 0..40u64 {
                engine
                    .write_points::<f64>(&pts(&[[i % 8, 1 + (i % 8)]]), &[i as f64])
                    .unwrap();
                if i % 4 == 3 {
                    engine.consolidate().unwrap();
                }
            }
        });
        // The anchor point predates the churn, so every read must see it
        // no matter which fragment currently holds it.
        for _ in 0..200 {
            let vals = engine.read_values::<f64>(&pts(&[[9, 9]])).unwrap();
            assert_eq!(vals, vec![Some(99.0)]);
        }
        writer.join().unwrap();
    });

    engine.consolidate().unwrap();
    assert_eq!(engine.fragments().unwrap().len(), 1);
    assert_eq!(
        engine.read_values::<f64>(&pts(&[[9, 9]])).unwrap(),
        vec![Some(99.0)]
    );
}

/// The full protocol over a real directory: staged writes, an
/// interrupted-looking directory state (stray staging file, spent
/// tombstone), reopen, and recovery.
#[test]
fn filesystem_store_recovers_on_reopen() {
    let dir = tempfile::tempdir().unwrap();
    {
        let engine = open(FsBackend::new(dir.path()).unwrap());
        engine.write_points::<f64>(&pts(&[[1, 1]]), &[1.0]).unwrap();
        engine.write_points::<f64>(&pts(&[[2, 2]]), &[2.0]).unwrap();
        engine.consolidate().unwrap();
    }
    // Simulate a crashed writer: a torn staging blob left in the store.
    std::fs::write(
        dir.path().join("frag-00000009-00000007.asf.tmp"),
        b"torn garbage",
    )
    .unwrap();

    let engine = open(FsBackend::new(dir.path()).unwrap());
    assert_eq!(engine.fragments().unwrap().len(), 1);
    assert!(engine
        .backend()
        .list()
        .unwrap()
        .iter()
        .all(|n| !n.ends_with(".tmp") && !n.ends_with(".tsn")));
    assert_eq!(
        engine.read_values::<f64>(&pts(&[[1, 1], [2, 2]])).unwrap(),
        vec![Some(1.0), Some(2.0)]
    );
}

/// Range reads through the whole engine stack on a striped store move
/// strictly fewer device bytes than whole-fragment fetches would — the
/// per-device accounting of the simulated disks proves it.
#[test]
fn striped_range_reads_transfer_fewer_device_bytes() {
    let striped = StripedBackend::new(
        (0..4)
            .map(|_| SimulatedDisk::new(1e12, Duration::ZERO))
            .collect(),
        64,
    );
    let engine = open(striped);
    let coords: Vec<[u64; 2]> = (0..64).map(|i| [i, i]).collect();
    let vals: Vec<f64> = (0..64).map(|i| i as f64).collect();
    engine
        .write_points::<f64>(&CoordBuffer::from_points(2, &coords).unwrap(), &vals)
        .unwrap();
    let frag_bytes = engine.total_stored_bytes().unwrap();

    let read_before: u64 = engine
        .backend()
        .devices()
        .iter()
        .map(|d| d.bytes_read())
        .sum();
    assert_eq!(
        engine.read_values::<f64>(&pts(&[[7, 7]])).unwrap(),
        vec![Some(7.0)]
    );
    let transferred: u64 = engine
        .backend()
        .devices()
        .iter()
        .map(|d| d.bytes_read())
        .sum::<u64>()
        - read_before;
    assert!(
        transferred < frag_bytes,
        "one-point read moved {transferred} of {frag_bytes} stored bytes"
    );
}

// ---------------------------------------------------------------------
// Streaming ingest: WAL durability, group commits, and precedence.
// ---------------------------------------------------------------------

use artsparse::metrics::SpanKind;
use artsparse::storage::{IngestConfig, IngestScheduler, SchedulerConfig, BUFFER_FRAGMENT};

/// The ingest ack contract, checked at every possible crash offset: the
/// device is given a write budget of `b` bytes and killed, for every `b`
/// from zero past the WAL record size. Batch 1 was acked before the
/// fault arms, so it must survive every reopen; batch 2 races the crash,
/// and must be readable after reopen exactly when its ingest call
/// returned Ok — an acked batch is never lost, an unacked one never
/// resurrects (`put_atomic` is all-or-nothing, and the CRC framing
/// would reject a torn record anyway).
#[test]
fn acked_ingest_survives_crash_at_every_write_offset() {
    // Generous upper bound on the one-point WAL record size (52 bytes).
    for budget in 0..=64u64 {
        let engine = open(FailingBackend::new(MemBackend::new()));
        engine
            .ingest_points::<f64>(&pts(&[[1, 1]]), &[1.0])
            .unwrap();

        engine.backend().fail_after_write_bytes(budget);
        engine.backend().fail_deletes(true); // the dying process cleans nothing
        let acked = engine.ingest_points::<f64>(&pts(&[[2, 2]]), &[2.0]).is_ok();

        // "Crash": drop the engine (the in-memory buffer dies with it)
        // and reopen over the surviving blobs.
        let backend = engine.into_backend();
        backend.disarm();
        let engine = open(backend);
        assert_eq!(engine.buffer_stats().points, 0, "replay group-commits");
        let vals = engine.read_values::<f64>(&pts(&[[1, 1], [2, 2]])).unwrap();
        assert_eq!(vals[0], Some(1.0), "acked batch lost at budget {budget}");
        assert_eq!(
            vals[1].is_some(),
            acked,
            "unacked batch resurrected (or acked one lost) at budget {budget}"
        );
        // Replay retired or swept every WAL blob.
        assert!(
            !engine
                .backend()
                .list()
                .unwrap()
                .iter()
                .any(|n| n.starts_with("wal-")),
            "WAL blob survived replay at budget {budget}"
        );
    }
}

/// The same sweep over the group commit itself: two acked batches, then
/// the device dies at every offset while `flush` runs. Whatever window
/// the crash hits — staging put, rename, WAL retirement — both acked
/// batches must read back after reopen (from the committed fragment,
/// from replayed WAL blobs, or both; duplicates are identical records,
/// so precedence hides them).
#[test]
fn group_commit_crash_at_every_offset_never_loses_acked_points() {
    // Upper bound on the flush's device writes (fragment + staging).
    for budget in 0..=512u64 {
        let engine = open(FailingBackend::new(MemBackend::new()));
        engine
            .ingest_points::<f64>(&pts(&[[1, 1]]), &[1.0])
            .unwrap();
        engine
            .ingest_points::<f64>(&pts(&[[2, 2]]), &[2.0])
            .unwrap();

        engine.backend().fail_after_write_bytes(budget);
        engine.backend().fail_deletes(true);
        let _ = engine.flush(); // may die in any window

        let backend = engine.into_backend();
        backend.disarm();
        let engine = open(backend);
        assert_eq!(
            engine.read_values::<f64>(&pts(&[[1, 1], [2, 2]])).unwrap(),
            vec![Some(1.0), Some(2.0)],
            "acked points lost when the group commit died at budget {budget}"
        );
        // No torn artifacts either: staging blobs swept, WAL retired.
        let names = engine.backend().list().unwrap();
        assert!(!names.iter().any(|n| n.ends_with(".tmp")));
        assert!(!names.iter().any(|n| n.starts_with("wal-")));
    }
}

/// An empty-buffer flush is a complete no-op: no fragment, no device
/// writes, nothing for a reopen to find.
#[test]
fn empty_buffer_flush_touches_nothing() {
    let engine = open(FailingBackend::new(MemBackend::new()));
    let before = engine.backend().list().unwrap();
    assert!(engine.flush().unwrap().is_none());
    assert_eq!(engine.backend().list().unwrap(), before);
    assert_eq!(engine.fragments().unwrap().len(), 0);
    // Even with the device armed to kill any write: nothing is written.
    engine.backend().fail_after_write_bytes(0);
    assert!(engine.flush().unwrap().is_none());
}

/// Shutting the scheduler down while a flush may be in flight never
/// tears state: the buffered point is either wholly buffered or wholly
/// committed, and a reopen (WAL replay) lands it in a fragment either
/// way.
#[test]
fn scheduler_shutdown_mid_flush_leaves_consistent_store() {
    let config = EngineConfig::default().with_ingest(IngestConfig {
        flush_points: 1_000_000,
        flush_bytes: usize::MAX,
        flush_interval_ms: 0, // every tick wants to flush
        wal: true,
        ..Default::default()
    });
    let engine = Arc::new(
        StorageEngine::open_with(MemBackend::new(), FormatKind::Linear, shape(), 8, config)
            .unwrap(),
    );
    engine
        .ingest_points::<f64>(&pts(&[[3, 3]]), &[3.0])
        .unwrap();
    let mut sched = IngestScheduler::spawn(
        Arc::clone(&engine),
        SchedulerConfig {
            tick_ms: 1,
            ..Default::default()
        },
    );
    sched.shutdown(); // races the first tick's flush
    let buffered = engine.buffer_stats().points;
    let fragments = engine.fragments().unwrap().len();
    assert!(
        (buffered, fragments) == (1, 0) || (buffered, fragments) == (0, 1),
        "torn flush: buffered={buffered}, fragments={fragments}"
    );
    // A "crash" now (buffer dropped) still keeps the point: WAL replay.
    let engine = Arc::into_inner(engine).unwrap();
    let engine = open(engine.into_backend());
    assert_eq!(
        engine.read_values::<f64>(&pts(&[[3, 3]])).unwrap(),
        vec![Some(3.0)]
    );
    assert_eq!(engine.fragments().unwrap().len(), 1);
}

/// Last-write-wins everywhere a buffered duplicate can meet a committed
/// one: point read, region read, consolidation, and export must all
/// prefer the newer buffered record — and keep preferring it after it
/// flushes.
#[test]
fn buffered_duplicates_win_across_read_region_consolidate_export() {
    let engine = open(MemBackend::new());
    engine
        .write_points::<f64>(&pts(&[[5, 5], [6, 6]]), &[1.0, 60.0])
        .unwrap();
    engine
        .ingest_points::<f64>(&pts(&[[5, 5]]), &[2.0])
        .unwrap();

    // Point read: buffer overlays the fragment hit.
    let r = engine.read(&pts(&[[5, 5]])).unwrap();
    assert_eq!(r.hits.len(), 1);
    assert_eq!(r.hits[0].fragment, BUFFER_FRAGMENT);
    // Region read: same rule through the region path.
    let region = artsparse::Region::from_corners(&[5, 5], &[6, 6]).unwrap();
    let hits = engine.read_region(&region).unwrap().hits;
    let by_coord: Vec<(Vec<u64>, f64)> = hits
        .iter()
        .map(|h| {
            (
                h.coord.clone(),
                f64::from_le_bytes(h.value.as_slice().try_into().unwrap()),
            )
        })
        .collect();
    assert_eq!(
        by_coord,
        vec![(vec![5, 5], 2.0), (vec![6, 6], 60.0)],
        "region read must see the buffered record"
    );

    // Export: buffered record wins in the merged view.
    let (coords, payload) = engine.export().unwrap();
    assert_eq!(coords.len(), 2);
    assert_eq!(f64::from_le_bytes(payload[..8].try_into().unwrap()), 2.0);

    // Consolidation (export flushed the buffer already): one fragment,
    // still the newer record.
    engine
        .ingest_points::<f64>(&pts(&[[6, 6]]), &[61.0])
        .unwrap();
    let report = engine.consolidate().unwrap();
    assert_eq!(report.n_points, 2);
    assert_eq!(engine.fragments().unwrap().len(), 1);
    assert_eq!(
        engine.read_values::<f64>(&pts(&[[5, 5], [6, 6]])).unwrap(),
        vec![Some(2.0), Some(61.0)]
    );
}

/// A group commit whose WAL retirement fails must not fail the flush —
/// the fragment is already committed — and the orphaned blob must never
/// resurrect overwritten values when a later open replays it. Replay is
/// order-preserving: the orphan re-materializes at the precedence slot
/// its ack was given, below the covering fragment and every later write.
#[test]
fn orphaned_wal_after_failed_retirement_never_resurrects_old_values() {
    let engine = open(FailingBackend::new(MemBackend::new()));
    engine
        .ingest_points::<f64>(&pts(&[[1, 1]]), &[1.0])
        .unwrap();

    // The device refuses deletes: the group commit lands its fragment
    // but cannot retire the WAL blob. The flush still succeeds.
    engine.backend().fail_deletes(true);
    engine.flush().unwrap().expect("buffer was non-empty");
    assert!(
        engine
            .backend()
            .list()
            .unwrap()
            .iter()
            .any(|n| n.starts_with("wal-")),
        "the WAL blob must survive as an orphan"
    );

    // The process carries on and overwrites the address.
    engine.write_points::<f64>(&pts(&[[1, 1]]), &[2.0]).unwrap();

    // "Crash" with the orphan still on the device; reopen replays it.
    let backend = engine.into_backend();
    backend.disarm();
    let engine = open(backend);
    assert_eq!(
        engine.read_values::<f64>(&pts(&[[1, 1]])).unwrap(),
        vec![Some(2.0)],
        "replayed orphan resurrected an overwritten value"
    );
    // Replay itself retired the orphan.
    assert!(!engine
        .backend()
        .list()
        .unwrap()
        .iter()
        .any(|n| n.starts_with("wal-")));
}

/// Failed WAL retirements queue for retry: once the device heals, the
/// next flush — even an empty-buffer one — sheds the orphan.
#[test]
fn failed_wal_retirement_is_retried_on_the_next_flush() {
    let engine = open(FailingBackend::new(MemBackend::new()));
    engine
        .ingest_points::<f64>(&pts(&[[1, 1]]), &[1.0])
        .unwrap();
    engine.backend().fail_deletes(true);
    engine.flush().unwrap();
    assert!(engine
        .backend()
        .list()
        .unwrap()
        .iter()
        .any(|n| n.starts_with("wal-")));

    engine.backend().disarm();
    assert!(engine.flush().unwrap().is_none(), "buffer is empty");
    assert!(
        !engine
            .backend()
            .list()
            .unwrap()
            .iter()
            .any(|n| n.starts_with("wal-")),
        "the healed device must shed the orphaned WAL blob"
    );
}

/// A second engine opening mid-stream replays (and retires) the live
/// engine's not-yet-flushed WAL blobs. Because replay preserves the
/// batch's original (seq, epoch) identity, the replayed copy ranks below
/// everything the live engine acks afterwards — its later flush must win
/// on both engines.
#[test]
fn replay_of_live_engines_wal_never_outranks_its_later_flush() {
    let store = Arc::new(MemBackend::new());
    let a = open(Arc::clone(&store));
    a.ingest_points::<f64>(&pts(&[[1, 1]]), &[1.0]).unwrap();

    // B opens over the same store and replays A's WAL blob into a
    // fragment — the acked batch is visible to B immediately.
    let b = open(Arc::clone(&store));
    assert_eq!(
        b.read_values::<f64>(&pts(&[[1, 1]])).unwrap(),
        vec![Some(1.0)]
    );

    // A keeps running: it still holds the batch in its buffer, tolerates
    // the retired blob, and overwrites the address. Its ids are all
    // higher than the replayed copy's, so its group commit outranks it.
    a.ingest_points::<f64>(&pts(&[[1, 1]]), &[2.0]).unwrap();
    a.flush().unwrap().expect("buffer was non-empty");
    assert_eq!(
        a.read_values::<f64>(&pts(&[[1, 1]])).unwrap(),
        vec![Some(2.0)]
    );
    b.refresh().unwrap();
    assert_eq!(
        b.read_values::<f64>(&pts(&[[1, 1]])).unwrap(),
        vec![Some(2.0)],
        "the stale replayed copy must not shadow the live engine's flush"
    );
}

/// Reads racing group commits on the same engine: an acked point must
/// never flicker to "missing" while a flush moves it from the buffer to
/// a fragment, and the value a read returns never goes backwards. The
/// read snapshots the buffer before planning against the catalog, so a
/// flush landing mid-read is covered from one side or the other.
#[test]
fn reads_racing_group_commits_never_lose_acked_points() {
    let engine = open(MemBackend::new());
    engine
        .ingest_points::<f64>(&pts(&[[4, 4]]), &[0.0])
        .unwrap();

    std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            for i in 1..=50u64 {
                engine
                    .ingest_points::<f64>(&pts(&[[4, 4]]), &[i as f64])
                    .unwrap();
                engine.flush().unwrap();
            }
        });
        let mut last = 0.0f64;
        for _ in 0..300 {
            let vals = engine.read_values::<f64>(&pts(&[[4, 4]])).unwrap();
            let v = vals[0].expect("acked point vanished mid-flush");
            assert!(v >= last, "monotonic reads violated: {v} after {last}");
            last = v;
        }
        writer.join().unwrap();
    });
    assert_eq!(
        engine.read_values::<f64>(&pts(&[[4, 4]])).unwrap(),
        vec![Some(50.0)]
    );
}

/// Consolidating a store of zero or one fragments is a cheap no-op: no
/// staging, no tombstone, no merge scan, no bytes written — pinned with
/// telemetry span counts so churn cannot silently creep back in.
#[test]
fn consolidate_noop_on_zero_or_one_fragments_writes_nothing() {
    let engine = StorageEngine::open_with(
        MemBackend::new(),
        FormatKind::Linear,
        shape(),
        8,
        EngineConfig::default().with_telemetry(true),
    )
    .unwrap();
    let churn_counts = |engine: &StorageEngine<MemBackend>| {
        let report = engine.telemetry_report().unwrap();
        let count = |kind| report.span(kind).map(|s| s.count).unwrap_or(0);
        (
            count(SpanKind::WriteStage),
            count(SpanKind::ConsolidateMerge),
            count(SpanKind::ConsolidateTombstone),
            count(SpanKind::ConsolidateCommit),
            count(SpanKind::ConsolidateSweep),
            report.totals.bytes_written,
        )
    };

    // Zero fragments.
    let before = churn_counts(&engine);
    let report = engine.consolidate().unwrap();
    assert_eq!(report.fragment, None);
    assert_eq!(report.before_bytes, report.after_bytes);
    assert_eq!(
        churn_counts(&engine),
        before,
        "empty-store consolidation did device work"
    );

    // One fragment.
    engine.write_points::<f64>(&pts(&[[1, 1]]), &[1.0]).unwrap();
    let before = churn_counts(&engine);
    let report = engine.consolidate().unwrap();
    assert_eq!(report.fragment, None);
    assert_eq!(report.merged_fragments, 1);
    assert_eq!(
        churn_counts(&engine),
        before,
        "single-fragment consolidation did device work"
    );
    assert_eq!(engine.fragments().unwrap().len(), 1);
}
