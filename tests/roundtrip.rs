//! End-to-end round-trips: every organization × every sparsity pattern ×
//! every dimensionality, through the fragment engine, against a hash-map
//! oracle.

use artsparse::metrics::OpCounter;
use artsparse::storage::{MemBackend, StorageEngine};
use artsparse::{CoordBuffer, Dataset, FormatKind, Pattern, PatternParams, Scale};
use std::collections::HashMap;

/// Oracle: coordinate → value for a dataset.
fn oracle(ds: &Dataset, values: &[f64]) -> HashMap<Vec<u64>, f64> {
    ds.coords
        .iter()
        .zip(values)
        .map(|(c, &v)| (c.to_vec(), v))
        .collect()
}

#[test]
fn every_format_pattern_dim_roundtrips_through_the_engine() {
    for pattern in Pattern::ALL {
        for ndim in [2usize, 3, 4] {
            let ds = Dataset::for_scale(pattern, ndim, Scale::Smoke, PatternParams::default());
            let values = ds.values();
            let truth = oracle(&ds, &values);
            // Queries: the paper's read region — a mix of hits and misses.
            let queries = ds.read_region().to_coords();

            for kind in FormatKind::ALL {
                let engine =
                    StorageEngine::open(MemBackend::new(), kind, ds.shape.clone(), 8).unwrap();
                engine.write_points::<f64>(&ds.coords, &values).unwrap();
                let got = engine.read_values::<f64>(&queries).unwrap();
                for (q, v) in queries.iter().zip(&got) {
                    assert_eq!(
                        v.as_ref(),
                        truth.get(q),
                        "{kind} {pattern} {ndim}D at {q:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn direct_format_reads_match_engine_reads() {
    let ds = Dataset::for_scale(Pattern::Gsp, 3, Scale::Smoke, PatternParams::default());
    let values = ds.values();
    let queries = ds.read_region().to_coords();
    let counter = OpCounter::new();

    for kind in FormatKind::PAPER_FIVE {
        let org = kind.create();
        let built = org.build(&ds.coords, &ds.shape, &counter).unwrap();
        let slots = org.read(&built.index, &queries, &counter).unwrap();
        let engine = StorageEngine::open(MemBackend::new(), kind, ds.shape.clone(), 8).unwrap();
        engine.write_points::<f64>(&ds.coords, &values).unwrap();
        let engine_vals = engine.read_values::<f64>(&queries).unwrap();
        for (i, (slot, ev)) in slots.iter().zip(&engine_vals).enumerate() {
            assert_eq!(slot.is_some(), ev.is_some(), "{kind} query {i}");
        }
    }
}

#[test]
fn all_stored_points_are_retrievable_individually() {
    let ds = Dataset::for_scale(Pattern::Tsp, 3, Scale::Smoke, PatternParams::default());
    let values = ds.values();
    for kind in FormatKind::PAPER_FIVE {
        let engine = StorageEngine::open(MemBackend::new(), kind, ds.shape.clone(), 8).unwrap();
        engine.write_points::<f64>(&ds.coords, &values).unwrap();
        // Probe a sample of stored points (every 13th to keep runtime down
        // for the O(n·n_read) formats).
        let mut sample = CoordBuffer::new(ds.shape.ndim());
        let mut expect = Vec::new();
        for (i, p) in ds.coords.iter().enumerate() {
            if i % 13 == 0 {
                sample.push(p).unwrap();
                expect.push(values[i]);
            }
        }
        let got = engine.read_values::<f64>(&sample).unwrap();
        for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
            assert_eq!(g.unwrap(), *e, "{kind} sample {i}");
        }
    }
}

#[test]
fn values_survive_reorganization_under_every_format() {
    // Distinctive values per point expose any map/slot confusion.
    let ds = Dataset::for_scale(Pattern::Msp, 2, Scale::Smoke, PatternParams::default());
    let values: Vec<f64> = (0..ds.nnz()).map(|i| i as f64 * 0.5).collect();
    let mut probes = CoordBuffer::new(2);
    let stride = (ds.nnz() / 50).max(1);
    let mut expected = Vec::new();
    for i in (0..ds.nnz()).step_by(stride) {
        probes.push(ds.coords.point(i)).unwrap();
        expected.push(values[i]);
    }
    for kind in FormatKind::ALL {
        let engine = StorageEngine::open(MemBackend::new(), kind, ds.shape.clone(), 8).unwrap();
        engine.write_points::<f64>(&ds.coords, &values).unwrap();
        let got = engine.read_values::<f64>(&probes).unwrap();
        for (g, e) in got.iter().zip(&expected) {
            assert_eq!(g.unwrap(), *e, "{kind}");
        }
    }
}
