//! Data integrity and fault tolerance, end to end: checksummed
//! fragments, retried transient faults, quarantine-and-proceed degraded
//! reads, and the scrub pass — the acceptance scenarios for the
//! integrity layer, plus seeded chaos (`CHAOS_SEED`) and single-byte
//! corruption properties.

use artsparse::metrics::OpCounter;
use artsparse::storage::engine::StorageEngine;
use artsparse::storage::fragment::{encode_fragment, encode_fragment_versioned};
use artsparse::storage::{
    injected_fault, Codec, EngineConfig, FailingBackend, FragmentSection, FsBackend, MemBackend,
    RetryPolicy, StorageBackend, StorageError,
};
use artsparse::{CoordBuffer, FormatKind, Shape};
use proptest::prelude::*;
use std::time::Duration;

fn shape() -> Shape {
    Shape::new(vec![16, 16]).unwrap()
}

fn coords(pts: &[[u64; 2]]) -> CoordBuffer {
    CoordBuffer::from_points(2, pts).unwrap()
}

/// A retry policy that never sleeps, for fast deterministic tests.
fn instant_retries(max_attempts: u32) -> RetryPolicy {
    RetryPolicy {
        max_attempts,
        base_backoff: Duration::ZERO,
        max_backoff: Duration::ZERO,
        jitter_pct: 0,
    }
}

/// Flip one bit near the end of a fragment blob (the value section).
fn flip_tail_bit<B: StorageBackend>(backend: &B, name: &str) {
    let mut bytes = backend.get(name).unwrap();
    let at = bytes.len() - 1;
    bytes[at] ^= 0x40;
    backend.put(name, &bytes).unwrap();
}

#[test]
fn strict_read_of_bit_flipped_fragment_names_fragment_and_section() {
    let e = StorageEngine::open_with(
        MemBackend::new(),
        FormatKind::Linear,
        shape(),
        8,
        EngineConfig::default().with_telemetry(true),
    )
    .unwrap();
    e.write_points::<f64>(&coords(&[[1, 1], [2, 2]]), &[1.0, 2.0])
        .unwrap();
    let name = e.fragments().unwrap()[0].clone();
    flip_tail_bit(e.backend(), &name);
    let err = e.read(&coords(&[[1, 1]])).unwrap_err();
    match &err {
        StorageError::ChecksumMismatch {
            name: n, section, ..
        } => {
            assert_eq!(n, &name);
            assert_eq!(*section, FragmentSection::Value);
        }
        other => panic!("expected a checksum mismatch, got {other}"),
    }
    let totals = e.telemetry_report().unwrap().totals;
    assert!(totals.checksum_failures >= 1);
}

#[test]
fn degraded_read_returns_survivors_and_scrub_finds_exactly_the_victim() {
    let e = StorageEngine::open_with(
        MemBackend::new(),
        FormatKind::Linear,
        shape(),
        8,
        EngineConfig::default()
            .with_strict_reads(false)
            .with_telemetry(true),
    )
    .unwrap();
    e.write_points::<f64>(&coords(&[[1, 1]]), &[1.0]).unwrap();
    e.write_points::<f64>(&coords(&[[2, 2]]), &[2.0]).unwrap();
    e.write_points::<f64>(&coords(&[[3, 3]]), &[3.0]).unwrap();
    let victim = e.fragments().unwrap()[1].clone();
    flip_tail_bit(e.backend(), &victim);

    // The read routes around the damage: both healthy fragments answer,
    // the outcome names exactly what is missing.
    let q = coords(&[[1, 1], [2, 2], [3, 3]]);
    let r = e.read(&q).unwrap();
    assert!(!r.outcome.complete);
    assert_eq!(r.outcome.quarantined, vec![victim.clone()]);
    assert_eq!(
        r.to_values::<f64>(3).unwrap(),
        vec![Some(1.0), None, Some(3.0)]
    );

    // Scrub confirms the same single finding — already quarantined.
    let report = e.scrub().unwrap();
    assert_eq!(report.fragments_checked, 3);
    assert_eq!(report.healthy, 2);
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].fragment, victim);
    assert!(!report.findings[0].newly_quarantined);

    // Consolidation merges only the healthy survivors; the damaged blob
    // is never deleted.
    let c = e.consolidate().unwrap();
    assert_eq!(c.merged_fragments, 2);
    assert!(e.backend().exists(&victim));
    assert_eq!(e.stats().unwrap().quarantined_fragments, 1);
    assert_eq!(
        e.telemetry_report().unwrap().totals.fragments_quarantined,
        1
    );

    // After consolidation the store still answers (minus the victim).
    let r2 = e.read(&q).unwrap();
    assert!(!r2.outcome.complete);
    assert_eq!(
        r2.to_values::<f64>(3).unwrap(),
        vec![Some(1.0), None, Some(3.0)]
    );
}

#[test]
fn scrub_on_a_filesystem_store_never_touches_organizations() {
    let dir = tempfile::tempdir().unwrap();
    let e = StorageEngine::open(
        FsBackend::new(dir.path()).unwrap(),
        FormatKind::Csf,
        shape(),
        8,
    )
    .unwrap();
    e.write_points::<f64>(&coords(&[[1, 2], [3, 4]]), &[1.0, 2.0])
        .unwrap();
    e.write_points::<f64>(&coords(&[[5, 6]]), &[3.0]).unwrap();
    let victim = e.fragments().unwrap()[0].clone();
    flip_tail_bit(e.backend(), &victim);

    let ops_before = e.counter().snapshot().total();
    let report = e.scrub().unwrap();
    // No organization decode: the op counter saw nothing.
    assert_eq!(e.counter().snapshot().total(), ops_before);
    assert_eq!(report.fragments_checked, 2);
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].fragment, victim);
    assert_eq!(report.findings[0].section, Some(FragmentSection::Value));
    assert!(report.findings[0].newly_quarantined);
}

#[test]
fn two_transient_faults_then_success_costs_exactly_three_attempts() {
    let e = StorageEngine::open_with(
        FailingBackend::new(MemBackend::new()),
        FormatKind::Linear,
        shape(),
        8,
        EngineConfig::default()
            .with_telemetry(true)
            .with_retry(instant_retries(4)),
    )
    .unwrap();
    e.write_points::<f64>(&coords(&[[4, 4]]), &[4.5]).unwrap();
    e.backend().fail_next_reads(2);
    let vals = e.read_values::<f64>(&coords(&[[4, 4]])).unwrap();
    assert_eq!(vals, vec![Some(4.5)]);
    assert_eq!(e.backend().read_faults_remaining(), 0);
    // Three attempts total: two charged retries plus the first try.
    assert_eq!(e.telemetry_report().unwrap().totals.retries, 2);
}

#[test]
fn retry_exhaustion_reports_attempts_and_preserves_the_fault_chain() {
    let e = StorageEngine::open_with(
        FailingBackend::new(MemBackend::new()),
        FormatKind::Linear,
        shape(),
        8,
        EngineConfig::default().with_retry(instant_retries(3)),
    )
    .unwrap();
    e.write_points::<f64>(&coords(&[[4, 4]]), &[4.5]).unwrap();
    e.backend().fail_next_reads(100);
    let err = e.read(&coords(&[[4, 4]])).unwrap_err();
    let StorageError::RetriesExhausted { attempts, .. } = &err else {
        panic!("expected retry exhaustion, got {err}");
    };
    assert_eq!(*attempts, 3);
    // The typed injected-fault payload survives the wrapping, and the
    // printable chain tells the whole story.
    let fault = injected_fault(&err).expect("fault payload reachable through the wrapper");
    assert!(fault.transient);
    assert!(err.chain_string().contains("injected"));
}

#[test]
fn pre_checksum_v2_fragments_still_read_and_scrub_as_legacy() {
    let shape = shape();
    let pts = coords(&[[7, 7], [8, 8]]);
    let counter = OpCounter::new();
    let built = FormatKind::Linear
        .create()
        .build(&pts, &shape, &counter)
        .unwrap();
    let values = built.reorganize_values(&[1u8; 16], 8);
    let v2 = encode_fragment_versioned(
        2,
        FormatKind::Linear,
        &shape,
        2,
        8,
        pts.bounding_box().as_ref(),
        &built.index,
        &values,
        Codec::None,
        Codec::None,
    );
    let backend = MemBackend::new();
    backend.put("frag-00000001-00000001.asf", &v2).unwrap();
    let e = StorageEngine::open(backend, FormatKind::Linear, shape, 8).unwrap();
    let vals = e.read_values::<u64>(&coords(&[[7, 7]])).unwrap();
    assert_eq!(vals, vec![Some(u64::from_le_bytes([1; 8]))]);
    let report = e.scrub().unwrap();
    assert!(report.is_clean());
    assert_eq!(report.healthy, 1);
    assert_eq!(report.legacy_unverified, 1);
    // New fragments written next to it carry checksums.
    e.write_points::<f64>(&coords(&[[9, 9]]), &[9.0]).unwrap();
    let report = e.scrub().unwrap();
    assert_eq!(report.healthy, 2);
    assert_eq!(report.legacy_unverified, 1);
}

/// Seeded chaos: with every device read corrupting one bit, the engine
/// must never return a wrong value — damaged fragments are detected and
/// quarantined instead. Re-opening with faults disarmed fully recovers.
/// Set `CHAOS_SEED` to vary the corruption schedule (CI runs a matrix).
#[test]
fn chaos_corrupted_reads_never_return_wrong_values() {
    let seed: u64 = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE);
    let e = StorageEngine::open_with(
        FailingBackend::new(MemBackend::new()),
        FormatKind::Linear,
        shape(),
        8,
        EngineConfig::default()
            .with_strict_reads(false)
            .with_retry(instant_retries(2)),
    )
    .unwrap();
    let expected: Vec<([u64; 2], f64)> = (0..8).map(|i| ([i, i], i as f64)).collect();
    for (p, v) in &expected {
        e.write_points::<f64>(&coords(&[*p]), &[*v]).unwrap();
    }
    e.backend().corrupt_reads(seed);

    let q = coords(&expected.iter().map(|(p, _)| *p).collect::<Vec<_>>()[..]);
    for _ in 0..4 {
        let r = e.read(&q).unwrap();
        let vals = r.to_values::<f64>(expected.len()).unwrap();
        for (i, got) in vals.iter().enumerate() {
            // Quarantined fragments go missing; present values must be
            // exact. A silently flipped value would fail here.
            if let Some(v) = got {
                assert_eq!(*v, expected[i].1, "seed {seed}: wrong value survived");
            }
        }
        if !r.outcome.complete {
            assert!(!r.outcome.quarantined.is_empty());
        }
    }
    // Scrub under chaos must not panic either; findings are expected.
    let _ = e.scrub().unwrap();

    // Disarm and reopen: the device bytes were never damaged (corruption
    // happened on the read path), so a fresh engine sees a clean store.
    let backend = e.into_backend();
    backend.disarm();
    let e = StorageEngine::open(backend, FormatKind::Linear, shape(), 8).unwrap();
    assert!(e.scrub().unwrap().is_clean());
    let vals = e
        .read(&q)
        .unwrap()
        .to_values::<f64>(expected.len())
        .unwrap();
    for (i, got) in vals.iter().enumerate() {
        assert_eq!(
            *got,
            Some(expected[i].1),
            "seed {seed}: store did not recover"
        );
    }
}

/// Seeded write chaos: a schedule of transient write-fault bursts and
/// full-device windows derived from `CHAOS_SEED` runs against the
/// streaming write path. Acked batches must always read back exactly —
/// including across a reopen that relies on WAL replay — and batches the
/// engine refused or failed must never become visible. Once the device
/// heals, probes must walk the engine back to `Healthy` and a scrub must
/// come back clean.
#[test]
fn chaos_write_faults_never_lose_acked_batches() {
    use artsparse::storage::{HealthConfig, HealthState, IngestConfig};
    let seed: u64 = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE);
    let config = EngineConfig::default()
        .with_ingest(IngestConfig {
            // Explicit flushes only — the schedule decides when groups
            // commit, so every fault window hits a known operation.
            flush_points: usize::MAX,
            flush_bytes: usize::MAX,
            ..IngestConfig::default()
        })
        .with_write_retry(instant_retries(3))
        .with_health(HealthConfig {
            degrade_after: 2,
            read_only_after: 4,
            probe_interval_ms: 0,
        });
    let e = StorageEngine::open_with(
        FailingBackend::new(MemBackend::new()),
        FormatKind::Linear,
        shape(),
        8,
        config.clone(),
    )
    .unwrap();

    let mut rng = seed | 1;
    let mut step_rng = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let mut acked: std::collections::BTreeMap<[u64; 2], f64> = std::collections::BTreeMap::new();
    let mut refused: Vec<[u64; 2]> = Vec::new();
    let mut acked_batches = 0u32;
    for step in 0..200u64 {
        match step_rng() % 10 {
            // Arm a transient burst; 3-attempt retries absorb short ones.
            0 => e.backend().fail_next_writes(step_rng() % 4 + 1),
            // A brief full-device window.
            1 => {
                e.backend().set_out_of_space(true);
                let _ = e.flush();
                e.backend().set_out_of_space(false);
            }
            2 => {
                let _ = e.flush();
            }
            3 => {
                e.probe_health();
            }
            _ => {
                let p = [step_rng() % 16, step_rng() % 16];
                let v = step as f64;
                match e.ingest_points::<f64>(&coords(&[p]), &[v]) {
                    Ok(_) => {
                        acked.insert(p, v);
                        acked_batches += 1;
                    }
                    Err(_) => refused.push(p),
                }
            }
        }
        // A refused batch must not be visible (unless an earlier acked
        // write legitimately covers the same address).
        if let Some(&p) = refused.last() {
            if !acked.contains_key(&p) {
                let got = e.read_values::<f64>(&coords(&[p])).unwrap();
                assert_eq!(got, vec![None], "seed {seed}: refused point visible");
            }
        }
    }
    assert!(acked_batches > 0, "seed {seed}: schedule never acked");

    // The device heals; bounded probing must restore write health.
    e.backend().disarm();
    for _ in 0..8 {
        if e.probe_health() == HealthState::Healthy {
            break;
        }
    }
    assert_eq!(e.health(), HealthState::Healthy, "seed {seed}");

    // Reopen without flushing: WAL replay must resurrect every acked
    // batch that was still buffer-only, and the store must scrub clean.
    let e =
        StorageEngine::open_with(e.into_backend(), FormatKind::Linear, shape(), 8, config).unwrap();
    for (p, v) in &acked {
        let got = e.read_values::<f64>(&coords(&[*p])).unwrap();
        assert_eq!(got, vec![Some(*v)], "seed {seed}: acked point {p:?} lost");
    }
    e.flush().unwrap();
    e.consolidate().unwrap();
    assert!(e.scrub().unwrap().is_clean(), "seed {seed}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any single-byte corruption anywhere in a v3 fragment is rejected
    /// by decode — header, index, value, and trailer bytes are all
    /// covered by a magic/version check or a CRC.
    #[test]
    fn any_single_byte_corruption_fails_fragment_decode(
        at_frac in 0.0f64..1.0,
        mask in 1u8..=255,
        codec_pick in 0usize..3,
    ) {
        let shape = Shape::new(vec![8, 8]).unwrap();
        let pts = CoordBuffer::from_points(2, &[[1u64, 1], [2, 5], [7, 7]]).unwrap();
        let counter = OpCounter::new();
        let built = FormatKind::Linear.create().build(&pts, &shape, &counter).unwrap();
        let values = built.reorganize_values(&[0xAB; 24], 8);
        let codecs = [Codec::None, Codec::Rle, Codec::DeltaVarint];
        let bytes = encode_fragment(
            FormatKind::Linear,
            &shape,
            3,
            8,
            pts.bounding_box().as_ref(),
            &built.index,
            &values,
            codecs[codec_pick],
            Codec::None,
        );
        let at = ((bytes.len() - 1) as f64 * at_frac) as usize;
        let mut bad = bytes.clone();
        bad[at] ^= mask;
        prop_assert!(
            artsparse::storage::fragment::decode_fragment("t", &bad).is_err(),
            "byte {at} mask {mask:#x} decoded silently"
        );
    }

    /// Codec hardening: corrupting one byte of an Rle or DeltaVarint
    /// stream must never panic, and a successful decompress must still
    /// produce exactly `raw_len` bytes — corrupted streams may decode to
    /// different bytes (the fragment CRC layer catches that), but never
    /// to a wrong-sized buffer.
    #[test]
    fn corrupted_codec_streams_never_panic_or_change_length(
        data in prop::collection::vec(any::<u8>(), 1..256),
        at_frac in 0.0f64..1.0,
        mask in 1u8..=255,
        rle in any::<bool>(),
    ) {
        let codec = if rle { Codec::Rle } else { Codec::DeltaVarint };
        let stored = codec.compress(&data);
        prop_assert_eq!(codec.decompress(&stored, data.len()).unwrap(), data.clone());
        let at = ((stored.len() - 1) as f64 * at_frac) as usize;
        let mut bad = stored.clone();
        bad[at] ^= mask;
        if let Ok(out) = codec.decompress(&bad, data.len()) {
            prop_assert_eq!(out.len(), data.len());
        }
        // Truncations must error or keep the length too.
        for cut in [0, stored.len() / 2, stored.len().saturating_sub(1)] {
            if let Ok(out) = codec.decompress(&stored[..cut], data.len()) {
                prop_assert_eq!(out.len(), data.len());
            }
        }
    }
}
