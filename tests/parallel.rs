//! Determinism of the compute-parallel execution layer.
//!
//! The contract pinned here is non-negotiable: the parallel paths —
//! chunked lexicographic sorts inside sorting builds and sharded batched
//! point-query scans — must produce **byte-identical** format encodings
//! and identical query results to the sequential reference at every
//! thread count. A cutoff of 1 forces the parallel path even on the tiny
//! inputs proptest generates; thread counts 2 and 7 exercise both the
//! even and ragged shard splits.

use artsparse::storage::{EngineConfig, MemBackend, StorageEngine};
use artsparse::tensor::par::{self, Parallelism};
use artsparse::{CoordBuffer, FormatKind, Region, Shape};
use proptest::prelude::*;

/// A small shape of 1–4 dimensions, each of size 1–10.
fn shape_strategy() -> impl Strategy<Value = Shape> {
    prop::collection::vec(1u64..=10, 1..=4).prop_map(|dims| Shape::new(dims).unwrap())
}

/// A shape plus up to `max_points` points inside it.
fn tensor_strategy(max_points: usize) -> impl Strategy<Value = (Shape, CoordBuffer)> {
    shape_strategy().prop_flat_map(move |shape| {
        let dims = shape.dims().to_vec();
        let point = dims.iter().map(|&m| 0u64..m).collect::<Vec<_>>();
        prop::collection::vec(point, 0..max_points).prop_map(move |pts| {
            let mut buf = CoordBuffer::new(shape.ndim());
            for p in &pts {
                buf.push(p).unwrap();
            }
            (shape.clone(), buf)
        })
    })
}

/// A parallel configuration that fans out even over tiny inputs.
fn forced(threads: usize) -> Parallelism {
    Parallelism::with_threads(threads).with_cutoff(1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every format's build emits byte-identical index encodings (and the
    /// same provenance map) whether it runs sequentially or sharded
    /// across 2 or 7 threads.
    #[test]
    fn parallel_build_encodings_are_byte_identical(
        (shape, coords) in tensor_strategy(48)
    ) {
        let counter = artsparse::metrics::OpCounter::new();
        for kind in FormatKind::ALL {
            let org = kind.create();
            let reference = par::with(Parallelism::sequential(), || {
                org.build(&coords, &shape, &counter).unwrap()
            });
            for threads in [2usize, 7] {
                let parallel = par::with(forced(threads), || {
                    org.build(&coords, &shape, &counter).unwrap()
                });
                prop_assert_eq!(
                    &parallel.index, &reference.index,
                    "{} index encoding diverged at {} threads", kind, threads
                );
                prop_assert_eq!(
                    &parallel.map, &reference.map,
                    "{} map diverged at {} threads", kind, threads
                );
            }
        }
    }

    /// Batched point queries return identical results when the query
    /// buffer is sharded across threads.
    #[test]
    fn parallel_batched_reads_match_sequential(
        (shape, coords) in tensor_strategy(48)
    ) {
        let counter = artsparse::metrics::OpCounter::new();
        let queries = Region::full(&shape).to_coords();
        for kind in FormatKind::ALL {
            let org = kind.create();
            let built = par::with(Parallelism::sequential(), || {
                org.build(&coords, &shape, &counter).unwrap()
            });
            let reference = par::with(Parallelism::sequential(), || {
                org.read(&built.index, &queries, &counter).unwrap()
            });
            for threads in [2usize, 7] {
                let parallel = par::with(forced(threads), || {
                    org.read(&built.index, &queries, &counter).unwrap()
                });
                prop_assert_eq!(
                    &parallel, &reference,
                    "{} read results diverged at {} threads", kind, threads
                );
            }
        }
    }

    /// End to end through the engine: a store written and read with
    /// `threads = 2` (cutoff 1, so everything fans out) returns exactly
    /// the hits of a fully sequential engine over the same fragments.
    #[test]
    fn engine_parallel_reads_match_sequential(
        (shape, coords) in tensor_strategy(32)
    ) {
        let values: Vec<f64> = (0..coords.len()).map(|i| i as f64).collect();
        let queries = Region::full(&shape).to_coords();
        let mut outcomes = Vec::new();
        for config in [
            EngineConfig::default().with_threads(1).with_read_parallelism(1),
            EngineConfig::default().with_threads(2).with_parallel_cutoff(1),
        ] {
            let engine = StorageEngine::open_with(
                MemBackend::new(),
                FormatKind::GcsrPP,
                shape.clone(),
                8,
                config,
            ).unwrap();
            engine.write_points::<f64>(&coords, &values).unwrap();
            let hits: Vec<(usize, u64, Vec<u8>)> = engine
                .read(&queries)
                .unwrap()
                .hits
                .into_iter()
                .map(|h| (h.query_index, h.addr, h.value))
                .collect();
            outcomes.push(hits);
        }
        prop_assert_eq!(&outcomes[0], &outcomes[1]);
    }
}

/// `threads = 1` takes the sequential fallback: one shard on the calling
/// thread, zero spawns, nothing observed — the pool adds no overhead
/// path beyond two atomic loads.
#[test]
fn sequential_configuration_never_spawns() {
    let shape = Shape::cube(3, 16).unwrap();
    let pts: Vec<[u64; 3]> = (0..4096u64)
        .map(|i| [i % 16, (i / 16) % 16, i % 13])
        .collect();
    let coords = CoordBuffer::from_points(3, &pts).unwrap();
    let counter = artsparse::metrics::OpCounter::new();
    let queries = Region::full(&shape).to_coords();
    let (_, report) = par::observed(Parallelism::sequential(), || {
        for kind in FormatKind::ALL {
            let org = kind.create();
            let built = org.build(&coords, &shape, &counter).unwrap();
            org.read(&built.index, &queries, &counter).unwrap();
        }
    });
    assert_eq!(report.tasks_spawned, 0);
    assert!(report.shards.is_empty());
}

/// The same workload with a forced-parallel configuration does spawn —
/// the guard above is meaningful, not vacuously true.
#[test]
fn forced_parallel_configuration_spawns_and_reports_shards() {
    let shape = Shape::cube(2, 32).unwrap();
    let pts: Vec<[u64; 2]> = (0..512u64).map(|i| [i % 32, (i * 7) % 32]).collect();
    let coords = CoordBuffer::from_points(2, &pts).unwrap();
    let counter = artsparse::metrics::OpCounter::new();
    let (_, report) = par::observed(Parallelism::with_threads(4).with_cutoff(1), || {
        let org = FormatKind::GcsrPP.create();
        org.build(&coords, &shape, &counter).unwrap();
    });
    assert!(report.tasks_spawned > 0);
    assert!(!report.shards.is_empty());
    for shard in &report.shards {
        assert!(shard.dur_ns > 0 || shard.start_offset_ns < u64::MAX);
    }
}
