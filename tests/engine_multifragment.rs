//! Multi-fragment behavior of the Algorithm 3 engine: merges, precedence,
//! pruning, persistence, and cross-format fragments.

use artsparse::storage::{FsBackend, MemBackend, SimulatedDisk, StorageEngine};
use artsparse::{CoordBuffer, FormatKind, Region, Shape};

fn pts(p: &[[u64; 2]]) -> CoordBuffer {
    CoordBuffer::from_points(2, p).unwrap()
}

#[test]
fn many_fragments_merge_in_address_order() {
    let engine = StorageEngine::open(
        MemBackend::new(),
        FormatKind::GcsrPP,
        Shape::new(vec![64, 64]).unwrap(),
        8,
    )
    .unwrap();
    // 8 fragments of 8 points each, interleaved addresses.
    for f in 0..8u64 {
        let coords: Vec<[u64; 2]> = (0..8).map(|k| [k * 8 + f, f]).collect();
        let values: Vec<f64> = (0..8).map(|k| (f * 100 + k) as f64).collect();
        engine.write_points::<f64>(&pts(&coords), &values).unwrap();
    }
    let region = Region::from_corners(&[0, 0], &[63, 63]).unwrap();
    let result = engine.read_region(&region).unwrap();
    assert_eq!(result.hits.len(), 64);
    assert_eq!(result.fragments_matched, 8);
    assert!(result.hits.windows(2).all(|w| w[0].addr <= w[1].addr));
}

#[test]
fn overwrite_precedence_is_last_writer_wins_per_query() {
    let engine = StorageEngine::open(
        MemBackend::new(),
        FormatKind::Linear,
        Shape::new(vec![32, 32]).unwrap(),
        8,
    )
    .unwrap();
    for gen in 0..5 {
        engine
            .write_points::<f64>(&pts(&[[7, 7], [gen, 0]]), &[gen as f64 * 10.0, 1.0])
            .unwrap();
    }
    let vals = engine.read_values::<f64>(&pts(&[[7, 7]])).unwrap();
    assert_eq!(vals, vec![Some(40.0)]);
}

#[test]
fn disjoint_fragments_are_pruned_by_bbox() {
    let engine = StorageEngine::open(
        MemBackend::new(),
        FormatKind::Csf,
        Shape::new(vec![100, 100]).unwrap(),
        8,
    )
    .unwrap();
    // Four quadrant fragments.
    for (dx, dy) in [(0u64, 0u64), (0, 50), (50, 0), (50, 50)] {
        let coords: Vec<[u64; 2]> = (0..10).map(|k| [dx + k, dy + k]).collect();
        let values = vec![1.0f64; 10];
        engine.write_points::<f64>(&pts(&coords), &values).unwrap();
    }
    // A query confined to one quadrant touches exactly one fragment.
    let r = engine
        .read_region(&Region::from_corners(&[0, 0], &[20, 20]).unwrap())
        .unwrap();
    assert_eq!(r.fragments_scanned, 4);
    assert_eq!(r.fragments_matched, 1);
}

#[test]
fn fs_persistence_reopen_and_read() {
    let dir = tempfile::tempdir().unwrap();
    let shape = Shape::new(vec![16, 16]).unwrap();
    {
        let engine = StorageEngine::open(
            FsBackend::new(dir.path()).unwrap(),
            FormatKind::GcscPP,
            shape.clone(),
            8,
        )
        .unwrap();
        engine
            .write_points::<f64>(&pts(&[[3, 4], [5, 6]]), &[3.4, 5.6])
            .unwrap();
    }
    // Fresh process-equivalent: reopen from the same directory.
    let engine = StorageEngine::open(
        FsBackend::new(dir.path()).unwrap(),
        FormatKind::GcscPP,
        shape,
        8,
    )
    .unwrap();
    assert_eq!(engine.fragments().unwrap().len(), 1);
    let vals = engine
        .read_values::<f64>(&pts(&[[5, 6], [3, 4], [0, 0]]))
        .unwrap();
    assert_eq!(vals, vec![Some(5.6), Some(3.4), None]);
}

#[test]
fn fragments_written_under_different_formats_interoperate() {
    let shape = Shape::new(vec![32, 32]).unwrap();
    let backend = MemBackend::new();
    let mut expected = Vec::new();
    let mut backend_holder = Some(backend);
    for (i, kind) in FormatKind::ALL.into_iter().enumerate() {
        let engine =
            StorageEngine::open(backend_holder.take().unwrap(), kind, shape.clone(), 8).unwrap();
        let c = [i as u64, i as u64 + 1];
        engine.write_points::<f64>(&pts(&[c]), &[i as f64]).unwrap();
        expected.push((c, i as f64));
        backend_holder = Some(engine.into_backend());
    }
    let engine = StorageEngine::open(backend_holder.unwrap(), FormatKind::Coo, shape, 8).unwrap();
    assert_eq!(engine.fragments().unwrap().len(), FormatKind::ALL.len());
    for (c, v) in expected {
        let got = engine.read_values::<f64>(&pts(&[c])).unwrap();
        assert_eq!(got, vec![Some(v)], "point {c:?}");
    }
}

#[test]
fn simulated_disk_accounts_for_every_fragment_byte() {
    let engine = StorageEngine::open(
        SimulatedDisk::new(1e12, std::time::Duration::ZERO),
        FormatKind::Coo,
        Shape::new(vec![16, 16]).unwrap(),
        8,
    )
    .unwrap();
    let r1 = engine
        .write_points::<f64>(&pts(&[[1, 1], [2, 2]]), &[1.0, 2.0])
        .unwrap();
    let r2 = engine.write_points::<f64>(&pts(&[[3, 3]]), &[3.0]).unwrap();
    assert_eq!(
        engine.backend().bytes_written(),
        (r1.total_bytes + r2.total_bytes) as u64
    );
    assert_eq!(
        engine.total_stored_bytes().unwrap(),
        engine.backend().bytes_written()
    );
}
