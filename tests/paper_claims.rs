//! The paper's qualitative claims, asserted as tests.
//!
//! These run at smoke scale on deterministic data and check *rankings* and
//! *ratios* (which the paper's theory fixes), not absolute seconds (which
//! its Perlmutter testbed fixed). Operation counts are used where wall
//! time would be noisy.

use artsparse::harness::experiments::table4;
use artsparse::harness::{run_matrix, Config};
use artsparse::metrics::{OpCounter, OpKind};
use artsparse::{CoordBuffer, Dataset, FormatKind, Pattern, PatternParams, Scale};

fn gsp3d() -> Dataset {
    Dataset::for_scale(Pattern::Gsp, 3, Scale::Smoke, PatternParams::default())
}

/// §III.B / Fig. 4: file size ranking LINEAR < GCSR++ ≈ GCSC++ ≤ COO,
/// with COO ≈ d× LINEAR.
#[test]
fn file_size_ranking_matches_fig4() {
    let counter = OpCounter::new();
    for (pattern, ndim) in [(Pattern::Gsp, 2), (Pattern::Gsp, 3), (Pattern::Tsp, 4)] {
        let ds = Dataset::for_scale(pattern, ndim, Scale::Smoke, PatternParams::default());
        let size = |kind: FormatKind| -> usize {
            kind.create()
                .build(&ds.coords, &ds.shape, &counter)
                .unwrap()
                .index
                .len()
        };
        let coo = size(FormatKind::Coo);
        let linear = size(FormatKind::Linear);
        let gcsr = size(FormatKind::GcsrPP);
        let gcsc = size(FormatKind::GcscPP);
        let csf = size(FormatKind::Csf);
        assert!(linear < gcsr, "{pattern} {ndim}D");
        assert_eq!(gcsr, gcsc, "{pattern} {ndim}D");
        assert!(gcsr <= coo, "{pattern} {ndim}D");
        assert!(csf <= coo * 2, "{pattern} {ndim}D (CSF worst case ≈ 2dn)");
        // "The potential reduction in storage space can be as much as O(d)":
        let ratio = coo as f64 / linear as f64;
        assert!(
            ratio > ndim as f64 * 0.7 && ratio < ndim as f64 * 1.3,
            "{pattern} {ndim}D: COO/LINEAR = {ratio}, d = {ndim}"
        );
    }
}

/// §II.E / Fig. 4: CSF's size varies with the pattern while LINEAR's is
/// fixed at n words.
#[test]
fn csf_size_varies_with_pattern_linear_does_not() {
    let counter = OpCounter::new();
    let per_point = |kind: FormatKind, pattern: Pattern| -> f64 {
        let ds = Dataset::for_scale(pattern, 3, Scale::Smoke, PatternParams::default());
        let bytes = kind
            .create()
            .build(&ds.coords, &ds.shape, &counter)
            .unwrap()
            .index
            .len();
        bytes as f64 / ds.nnz() as f64
    };
    let lin_tsp = per_point(FormatKind::Linear, Pattern::Tsp);
    let lin_gsp = per_point(FormatKind::Linear, Pattern::Gsp);
    assert!((lin_tsp - lin_gsp).abs() < 1.0, "{lin_tsp} vs {lin_gsp}");
    let csf_msp = per_point(FormatKind::Csf, Pattern::Msp); // dense: shares prefixes
    let csf_gsp = per_point(FormatKind::Csf, Pattern::Gsp); // random: diverges
    assert!(
        csf_gsp > csf_msp * 1.5,
        "CSF per-point size should vary: GSP {csf_gsp} vs MSP {csf_msp}"
    );
}

/// §III.C / Fig. 5: read work COO ≈ LINEAR ≫ GCSR++/GCSC++ ≫-or-≈ CSF,
/// measured in comparison counts on identical queries.
#[test]
fn read_op_counts_match_fig5_ranking() {
    let ds = gsp3d();
    let queries = ds.read_region().to_coords();
    let read_ops = |kind: FormatKind| -> u64 {
        let counter = OpCounter::new();
        let org = kind.create();
        let built = org.build(&ds.coords, &ds.shape, &counter).unwrap();
        counter.reset();
        org.read(&built.index, &queries, &counter).unwrap();
        let s = counter.snapshot();
        s.compares + s.node_visits
    };
    let coo = read_ops(FormatKind::Coo);
    let linear = read_ops(FormatKind::Linear);
    let gcsr = read_ops(FormatKind::GcsrPP);
    let csf = read_ops(FormatKind::Csf);
    assert!(coo > gcsr * 10, "COO {coo} vs GCSR++ {gcsr}");
    assert!(linear > gcsr * 10, "LINEAR {linear} vs GCSR++ {gcsr}");
    assert!(coo > csf * 10, "COO {coo} vs CSF {csf}");
}

/// §III.C: GCSR++/GCSC++ read work grows with dimensionality (the bucket
/// scan is n/min{mᵢ}) while CSF's stays flat — so CSF's relative advantage
/// improves from 2D to 4D.
#[test]
fn csf_advantage_grows_with_dimensionality() {
    let ratio_for = |ndim: usize| -> f64 {
        let ds = Dataset::for_scale(Pattern::Gsp, ndim, Scale::Smoke, PatternParams::default());
        let queries = ds.read_region().to_coords();
        let per_query = |kind: FormatKind| -> f64 {
            let counter = OpCounter::new();
            let org = kind.create();
            let built = org.build(&ds.coords, &ds.shape, &counter).unwrap();
            counter.reset();
            org.read(&built.index, &queries, &counter).unwrap();
            let s = counter.snapshot();
            (s.compares + s.node_visits) as f64 / queries.len() as f64
        };
        per_query(FormatKind::Csf) / per_query(FormatKind::GcsrPP)
    };
    let r2 = ratio_for(2);
    let r4 = ratio_for(4);
    assert!(
        r4 < r2,
        "CSF:GCSR++ read-work ratio should shrink with d: 2D {r2:.3} vs 4D {r4:.3}"
    );
}

/// §III.A / Table III: GCSC++'s build does more sort work than GCSR++'s on
/// row-major-ordered input (the layout-mismatch effect).
#[test]
fn gcsc_pays_for_layout_mismatch() {
    // TSP's generator emits strictly row-major order (MSP's appends the
    // dense block after the background, so it is not globally ordered).
    let ds = Dataset::for_scale(Pattern::Tsp, 2, Scale::Smoke, PatternParams::default());
    let build_map_disorder = |kind: FormatKind| -> usize {
        let counter = OpCounter::new();
        let built = kind
            .create()
            .build(&ds.coords, &ds.shape, &counter)
            .unwrap();
        // Number of positions the map moves (0 = identity = no shuffle).
        built
            .map
            .unwrap()
            .iter()
            .enumerate()
            .filter(|(i, &j)| *i != j)
            .count()
    };
    let gcsr = build_map_disorder(FormatKind::GcsrPP);
    let gcsc = build_map_disorder(FormatKind::GcscPP);
    assert_eq!(gcsr, 0, "row sort of a row-major stream is the identity");
    assert!(
        gcsc > ds.nnz() / 2,
        "GCSC++ must shuffle a row-major stream: moved {gcsc} of {}",
        ds.nnz()
    );
}

/// Table IV: the overall ranking puts LINEAR (or its close peer GCSR++)
/// first and COO last.
#[test]
fn table4_ranking_matches_paper() {
    let cfg = Config::smoke();
    let matrix = run_matrix(&cfg).unwrap();
    let out = table4::from_matrix(&cfg, &matrix).unwrap();
    let ranking = out.json["ranking"].as_array().unwrap();
    let first = ranking[0][0].as_str().unwrap();
    let last = ranking[ranking.len() - 1][0].as_str().unwrap();
    assert!(first == "LINEAR" || first == "GCSR++", "best was {first}");
    assert_eq!(last, "COO", "worst must be COO");
}

/// §II.A: COO's zero-cost build — no transforms, no sort compares.
#[test]
fn coo_build_is_free_linear_pays_transforms() {
    let ds = gsp3d();
    let counter = OpCounter::new();
    FormatKind::Coo
        .create()
        .build(&ds.coords, &ds.shape, &counter)
        .unwrap();
    let coo = counter.snapshot();
    assert_eq!(coo.total(), 0, "COO build must cost no abstract ops");
    counter.reset();
    FormatKind::Linear
        .create()
        .build(&ds.coords, &ds.shape, &counter)
        .unwrap();
    let lin = counter.snapshot();
    assert_eq!(lin.transforms, ds.nnz() as u64);
    assert_eq!(lin.sort_compares, 0);
    counter.reset();
    FormatKind::GcsrPP
        .create()
        .build(&ds.coords, &ds.shape, &counter)
        .unwrap();
    let gcsr = counter.snapshot();
    assert!(gcsr.sort_compares > 0, "GCSR++ must sort");
    assert_eq!(gcsr.transforms, 2 * ds.nnz() as u64, "the 2n term");
}

/// The MSP read region covers both contiguous and independent points
/// (§III: "includes both independent points and contiguous points").
#[test]
fn msp_read_region_spans_both_point_kinds() {
    let ds = Dataset::for_scale(Pattern::Msp, 2, Scale::Smoke, PatternParams::default());
    let region = ds.read_region();
    let dense = artsparse::patterns::msp::dense_region(&ds.shape);
    let mut contiguous = 0;
    let mut independent = 0;
    for p in ds.coords.iter() {
        if region.contains(p) {
            if dense.contains(p) {
                contiguous += 1;
            } else {
                independent += 1;
            }
        }
    }
    assert!(contiguous > 0, "read region must cover dense points");
    // At smoke scale (256) the read region [128,153] sits inside the dense
    // block [85,169], so independent points there are possible but rare;
    // the tensor as a whole must have both kinds.
    let total_independent = ds.coords.iter().filter(|p| !dense.contains(p)).count();
    assert!(total_independent > 0);
    let _ = independent;
}

/// CoordBuffer equality of two identically-seeded runs — determinism of
/// the whole dataset layer (what makes EXPERIMENTS.md regenerable).
#[test]
fn datasets_are_bitwise_reproducible() {
    for pattern in Pattern::ALL {
        let a = Dataset::for_scale(pattern, 3, Scale::Smoke, PatternParams::default());
        let b = Dataset::for_scale(pattern, 3, Scale::Smoke, PatternParams::default());
        assert_eq!(a.coords, b.coords, "{pattern}");
        assert_eq!(a.values(), b.values(), "{pattern}");
    }
}

/// Sanity for the op-count claims above: counts scale linearly in n for
/// COO reads (the O(n · n_read) law, directly).
#[test]
fn coo_read_cost_is_linear_in_n() {
    let shape = Scale::Smoke.shape(2).unwrap();
    let counter = OpCounter::new();
    let mut costs = Vec::new();
    for n in [200usize, 400, 800] {
        let mut coords = CoordBuffer::new(2);
        for k in 0..n as u64 {
            coords.push(&[k % 256, (k * 17) % 256]).unwrap();
        }
        let built = FormatKind::Coo
            .create()
            .build(&coords, &shape, &counter)
            .unwrap();
        counter.reset();
        // All-miss queries force full scans.
        let queries = CoordBuffer::from_points(2, &[[255u64, 0], [255, 1]]).unwrap();
        FormatKind::Coo
            .create()
            .read(&built.index, &queries, &counter)
            .unwrap();
        costs.push(counter.snapshot().compares);
        counter.add(OpKind::Compare, 0);
    }
    assert_eq!(costs[1], costs[0] * 2);
    assert_eq!(costs[2], costs[1] * 2);
}
