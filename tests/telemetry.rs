//! End-to-end telemetry: the engine's span-attributed I/O accounting
//! must agree byte-for-byte with the device's own counters, a disabled
//! recorder must never be called, the report must agree with
//! `StoreStats`/`CacheStats`, and the exported per-cell document must
//! validate against the checked-in schema.

use artsparse::metrics::{Recorder, SpanKind, SpanRecord};
use artsparse::storage::{EngineConfig, MemBackend, SimulatedDisk, StorageEngine};
use artsparse::{CoordBuffer, FormatKind, Region, Shape};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A fast simulated device: real byte accounting, negligible sleeps.
fn fast_disk() -> SimulatedDisk {
    SimulatedDisk::new(1e15, Duration::ZERO)
}

fn pts(p: &[[u64; 2]]) -> CoordBuffer {
    CoordBuffer::from_points(2, p).unwrap()
}

/// Write `fragments` fragments of 32 points each (fragment `f` fills
/// row `f`).
fn seed_fragments(engine: &StorageEngine<SimulatedDisk>, fragments: u64) {
    for f in 0..fragments {
        let coords: Vec<[u64; 2]> = (0..32).map(|k| [f, k]).collect();
        let values: Vec<f64> = (0..32).map(|k| (f * 100 + k) as f64).collect();
        engine.write_points::<f64>(&pts(&coords), &values).unwrap();
    }
}

#[test]
fn telemetry_bytes_agree_with_simulated_disk() {
    let engine = StorageEngine::open_with(
        fast_disk(),
        FormatKind::GcsrPP,
        Shape::new(vec![64, 64]).unwrap(),
        8,
        EngineConfig::default().with_telemetry(true),
    )
    .unwrap();

    seed_fragments(&engine, 6);

    // A multi-fragment region read plus point lookups.
    let region = Region::from_corners(&[0, 0], &[5, 31]).unwrap();
    let result = engine.read_region(&region).unwrap();
    assert_eq!(result.hits.len(), 6 * 32);
    assert!(result.fragments_matched >= 6);
    let vals = engine
        .read_values::<f64>(&pts(&[[0, 0], [3, 7], [5, 31], [63, 63]]))
        .unwrap();
    assert_eq!(vals[1], Some(307.0));
    assert_eq!(vals[3], None);

    // Consolidation reads every source fragment and writes the merged one.
    engine.consolidate().unwrap();
    engine.read_region(&region).unwrap();

    let report = engine.telemetry_report().expect("telemetry enabled");
    let disk = engine.backend();
    assert_eq!(
        report.totals.bytes_fetched,
        disk.bytes_read(),
        "span-attributed fetched bytes must equal the device's read counter"
    );
    assert_eq!(
        report.totals.bytes_written,
        disk.bytes_written(),
        "span-attributed written bytes must equal the device's write counter"
    );
    assert!(report.totals.bytes_fetched > 0);
    assert!(report.totals.bytes_written > 0);

    // Self-IO accounting: per-kind sums reassemble the totals exactly.
    let span_sum: u64 = report.spans.iter().map(|s| s.io.bytes_fetched).sum();
    assert_eq!(span_sum, report.totals.bytes_fetched);

    // The taxonomy was exercised. Consolidation commits its merged
    // fragment through the write path, hence the 7th write span.
    assert_eq!(report.span(SpanKind::Write).unwrap().count, 7);
    assert_eq!(report.span(SpanKind::Read).unwrap().count, 3);
    assert_eq!(report.span(SpanKind::Consolidate).unwrap().count, 1);
    assert!(report.span(SpanKind::Recover).unwrap().count >= 1);
    assert!(
        report.backend_op("sim", "put").is_some()
            || report.backend_op("sim", "put_atomic").is_some()
    );
}

/// Counts every recorder callback; reports itself disabled.
#[derive(Default)]
struct CountingDisabledRecorder {
    spans: AtomicU64,
    ops: AtomicU64,
}

impl Recorder for CountingDisabledRecorder {
    fn record_span(&self, _record: &SpanRecord) {
        self.spans.fetch_add(1, Ordering::Relaxed);
    }

    fn record_backend_op(&self, _b: &'static str, _o: &'static str, _d: u64, _bytes: u64) {
        self.ops.fetch_add(1, Ordering::Relaxed);
    }
}

#[test]
fn disabled_recorder_is_never_called() {
    let counter = Arc::new(CountingDisabledRecorder::default());
    let engine = StorageEngine::open(
        MemBackend::new(),
        FormatKind::Linear,
        Shape::new(vec![32, 32]).unwrap(),
        8,
    )
    .unwrap()
    .with_recorder(counter.clone());

    engine
        .write_points::<f64>(&pts(&[[1, 2], [3, 4]]), &[1.0, 2.0])
        .unwrap();
    engine.read_values::<f64>(&pts(&[[1, 2], [9, 9]])).unwrap();
    engine.consolidate().unwrap();

    assert_eq!(counter.spans.load(Ordering::Relaxed), 0);
    assert_eq!(counter.ops.load(Ordering::Relaxed), 0);
    assert!(engine.telemetry_report().is_none());
}

#[test]
fn telemetry_agrees_with_engine_stats() {
    let engine = StorageEngine::open_with(
        fast_disk(),
        FormatKind::Csf,
        Shape::new(vec![64, 64]).unwrap(),
        8,
        EngineConfig::default()
            .with_telemetry(true)
            .with_cache_capacity(1 << 20),
    )
    .unwrap();

    seed_fragments(&engine, 4);
    let region = Region::from_corners(&[0, 0], &[3, 31]).unwrap();
    engine.read_region(&region).unwrap(); // cold: misses
    engine.read_region(&region).unwrap(); // warm: hits

    let report = engine.telemetry_report().unwrap();
    let cache = engine.cache().stats();
    assert!(cache.hits > 0 && cache.misses > 0);
    assert_eq!(report.totals.cache_hits, cache.hits);
    assert_eq!(report.totals.cache_misses, cache.misses);
    assert_eq!(report.totals.cache_evictions, cache.evictions);
    assert_eq!(report.totals.cache_evicted_bytes, cache.evicted_bytes);

    let stats = engine.stats().unwrap();
    let recovery = engine.recovery_report();
    assert_eq!(stats.epoch_markers, recovery.epoch_markers);
    assert!(stats.epoch_markers >= 1, "own epoch claim is counted");
    assert_eq!(stats.orphans_swept, recovery.orphans_swept);
}

#[test]
fn harness_writes_schema_valid_documents() {
    use artsparse::harness::telemetry::validate_file;
    use artsparse::harness::Config;
    use artsparse::{Pattern, Scale};

    let dir = tempfile::tempdir().unwrap();
    let mut cfg = Config::smoke();
    cfg.scale = Scale::Smoke;
    cfg.formats = vec![FormatKind::Coo];
    cfg.patterns = vec![Pattern::Tsp];
    cfg.ndims = vec![2];
    cfg.telemetry_out = Some(dir.path().to_path_buf());

    let (matrix, reports) = artsparse::harness::run_matrix_with_telemetry(&cfg).unwrap();
    assert_eq!(matrix.cells.len(), 1);
    assert_eq!(reports.len(), 1);

    let doc = dir.path().join("telemetry-coo-tsp-2D.json");
    assert!(doc.exists(), "per-cell document written");
    // Integration tests run from the workspace root, where the schema lives.
    let errors =
        validate_file(&doc, std::path::Path::new("schemas/telemetry.schema.json")).unwrap();
    assert!(errors.is_empty(), "{errors:?}");
}
