//! Background consolidation scheduler for streaming ingest.
//!
//! [`IngestScheduler`] owns one background thread that periodically:
//!
//! 1. **flushes stale buffers** — when the oldest buffered ingest batch
//!    has waited past [`IngestConfig::flush_interval_ms`], the buffer is
//!    group-committed even below the size thresholds, bounding how long
//!    an acked point stays WAL-only;
//! 2. **triggers consolidation under a size-tiered policy** — live
//!    fragments are bucketed by the log₂ of their byte size, and when any
//!    tier accumulates [`SchedulerConfig::tier_fragments`] fragments the
//!    store is fragmented enough to merge. Fresh flushes are all roughly
//!    flush-threshold-sized, so they pile into one tier and trip the
//!    trigger; the consolidated output lands in a higher tier and sits
//!    there alone — the fragment count plateaus instead of growing with
//!    ingest time. Passes are rate-limited by
//!    [`SchedulerConfig::min_consolidate_interval_ms`] regardless of how
//!    fragmented the store looks.
//!
//! Every pass additionally retries queued WAL retirements (so orphans
//! from a failed flush-time delete drain even on a quiet engine) and
//! probes an unhealthy write path
//! ([`StorageEngine::probe_health`](crate::engine::StorageEngine::probe_health))
//! so a degraded or read-only engine recovers automatically once the
//! device heals.
//!
//! Every pass runs under an `engine.scheduler.run` telemetry span and
//! charges the `scheduler_runs` counter. [`IngestScheduler::shutdown`]
//! (also run on drop) stops the thread cleanly: the current pass
//! finishes, no new one starts, and the thread is joined — but the wait
//! is bounded by [`SchedulerConfig::shutdown_timeout_ms`]: a worker
//! stuck inside a hung backend call is detached and surfaced as a
//! `scheduler_error` instead of blocking drop forever.
//!
//! [`IngestConfig::flush_interval_ms`]: crate::config::IngestConfig::flush_interval_ms

use crate::backend::StorageBackend;
use crate::config::SchedulerConfig;
use crate::engine::StorageEngine;
use crate::error::{Result, StorageError};
use artsparse_metrics::{charge, Span, SpanKind};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Counters describing what the scheduler has done so far.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Scheduler passes executed (ticks that did their checks).
    pub runs: u64,
    /// Staleness flushes the scheduler issued.
    pub flushes: u64,
    /// Consolidation passes the scheduler triggered.
    pub consolidations: u64,
    /// Passes that failed (error kept out of the ingest path; the next
    /// tick retries).
    pub errors: u64,
    /// Error chain of the most recent failed pass, if any — failures are
    /// swallowed to protect the ingest path, not to hide them.
    pub last_error: Option<String>,
}

#[derive(Default)]
struct Shared {
    stop: AtomicBool,
    done: AtomicBool,
    runs: AtomicU64,
    flushes: AtomicU64,
    consolidations: AtomicU64,
    errors: AtomicU64,
    last_error: parking_lot::Mutex<Option<String>>,
}

/// Handle to the background scheduler thread. Dropping it shuts the
/// thread down cleanly (current pass finishes, thread joined, wait
/// bounded by [`SchedulerConfig::shutdown_timeout_ms`]).
pub struct IngestScheduler {
    shared: Arc<Shared>,
    handle: Option<std::thread::JoinHandle<()>>,
    shutdown_timeout: Duration,
    note_error: Arc<dyn Fn(&StorageError) + Send + Sync>,
}

impl IngestScheduler {
    /// Spawn the scheduler over a shared engine.
    ///
    /// The engine must be shared (`Arc`) because the scheduler flushes
    /// and consolidates concurrently with the caller's ingests; both
    /// paths are `&self` and internally synchronized.
    pub fn spawn<B>(engine: Arc<StorageEngine<B>>, config: SchedulerConfig) -> IngestScheduler
    where
        B: StorageBackend + Send + Sync + 'static,
    {
        let shared = Arc::new(Shared::default());
        let worker = Arc::clone(&shared);
        let shutdown_timeout = Duration::from_millis(config.shutdown_timeout_ms);
        // Weak: the handle must not keep the engine alive (callers
        // reclaim it with Arc::into_inner after shutdown).
        let note_engine = Arc::downgrade(&engine);
        let handle = std::thread::Builder::new()
            .name("artsparse-ingest-scheduler".into())
            .spawn(move || scheduler_loop(&engine, &config, &worker))
            .expect("spawning the scheduler thread");
        IngestScheduler {
            shared,
            handle: Some(handle),
            shutdown_timeout,
            note_error: Arc::new(move |e| {
                if let Some(engine) = note_engine.upgrade() {
                    engine.note_scheduler_error(e);
                }
            }),
        }
    }

    /// What the scheduler has done so far.
    pub fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            runs: self.shared.runs.load(Ordering::Relaxed),
            flushes: self.shared.flushes.load(Ordering::Relaxed),
            consolidations: self.shared.consolidations.load(Ordering::Relaxed),
            errors: self.shared.errors.load(Ordering::Relaxed),
            last_error: self.shared.last_error.lock().clone(),
        }
    }

    /// Stop the scheduler: no new pass starts, the in-flight pass (if
    /// any) completes, and the thread is joined before this returns —
    /// waiting at most [`SchedulerConfig::shutdown_timeout_ms`]. A
    /// worker stuck inside a hung backend call (a device that never
    /// returns) is *detached* rather than joined, so drop never hangs;
    /// the timeout is counted as a scheduler error and journaled as a
    /// `scheduler_error` event. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        let Some(handle) = self.handle.take() else {
            return;
        };
        handle.thread().unpark();
        if self.shutdown_timeout.is_zero() {
            let _ = handle.join();
            return;
        }
        let deadline = Instant::now() + self.shutdown_timeout;
        while !self.shared.done.load(Ordering::SeqCst) {
            if Instant::now() >= deadline {
                // The worker is wedged inside a backend call. Joining
                // would inherit the hang; leak the thread instead (it
                // holds only Arcs and exits on its own if the backend
                // ever returns) and surface the timeout.
                let error = StorageError::Io(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    format!(
                        "scheduler shutdown timed out after {:?}; detaching the stuck                          worker thread",
                        self.shutdown_timeout
                    ),
                ));
                self.shared.errors.fetch_add(1, Ordering::Relaxed);
                *self.shared.last_error.lock() = Some(error.chain_string());
                (self.note_error)(&error);
                drop(handle);
                return;
            }
            handle.thread().unpark();
            std::thread::sleep(Duration::from_millis(1));
        }
        // `done` is set as the very last statement of the worker loop;
        // this join is immediate.
        let _ = handle.join();
    }
}

impl Drop for IngestScheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The log₂-size tier a fragment of `size` bytes belongs to.
fn tier_of(size: u64) -> u32 {
    64 - size.max(1).leading_zeros()
}

/// Whether any size tier holds at least `threshold` fragments.
fn tier_trigger(sizes: &[u64], threshold: usize) -> bool {
    let mut counts = std::collections::HashMap::new();
    for &size in sizes {
        let n = counts.entry(tier_of(size)).or_insert(0usize);
        *n += 1;
        if *n >= threshold {
            return true;
        }
    }
    false
}

fn scheduler_loop<B: StorageBackend + Send + Sync>(
    engine: &StorageEngine<B>,
    config: &SchedulerConfig,
    shared: &Shared,
) {
    let tick = Duration::from_millis(config.tick_ms.max(1));
    let min_gap = Duration::from_millis(config.min_consolidate_interval_ms);
    let mut last_consolidate: Option<Instant> = None;
    while !shared.stop.load(Ordering::SeqCst) {
        match scheduler_pass(engine, config, shared, &mut last_consolidate, min_gap) {
            Ok(()) => {}
            Err(e) => {
                // Keep failures out of the ingest path; the next tick
                // retries. The error is *surfaced*, not swallowed: the
                // counter and last-error text here, plus the engine's
                // health record (store stats, registry gauges, and a
                // `scheduler_error` journal event when the plane is on).
                shared.errors.fetch_add(1, Ordering::Relaxed);
                *shared.last_error.lock() = Some(e.chain_string());
                engine.note_scheduler_error(&e);
            }
        }
        // park_timeout instead of sleep so shutdown() can interrupt a
        // long tick immediately via unpark.
        if !shared.stop.load(Ordering::SeqCst) {
            std::thread::park_timeout(tick);
        }
    }
    // One parting retirement attempt, so an engine shut down right
    // after a failed flush-time delete does not strand its orphans.
    engine.retire_pending_wals();
    shared.done.store(true, Ordering::SeqCst);
}

/// One scheduler pass: staleness flush, then the size-tiered
/// consolidation check.
fn scheduler_pass<B: StorageBackend + Send + Sync>(
    engine: &StorageEngine<B>,
    config: &SchedulerConfig,
    shared: &Shared,
    last_consolidate: &mut Option<Instant>,
    min_gap: Duration,
) -> Result<()> {
    let _span = Span::enter(engine.recorder(), SpanKind::SchedulerRun);
    shared.runs.fetch_add(1, Ordering::Relaxed);
    engine.note_scheduler_run();
    charge(|io| io.scheduler_runs += 1);

    // Retry WAL retirements queued by an earlier failed delete — on
    // every tick, not only when a flush happens to run.
    engine.retire_pending_wals();
    // Probe an unhealthy write path so recovery is automatic: a probe
    // that lands resets the engine to Healthy before this tick's flush.
    engine.probe_health();

    let flush_after = Duration::from_millis(engine.config().ingest.flush_interval_ms);
    if engine.buffer_age().is_some_and(|age| age >= flush_after) && engine.flush()?.is_some() {
        shared.flushes.fetch_add(1, Ordering::Relaxed);
    }

    let rate_limited = last_consolidate.is_some_and(|at| at.elapsed() < min_gap);
    if !rate_limited {
        let sizes = engine.fragment_sizes();
        if sizes.len() >= 2 && tier_trigger(&sizes, config.tier_threshold()) {
            engine.consolidate()?;
            shared.consolidations.fetch_add(1, Ordering::Relaxed);
            *last_consolidate = Some(Instant::now());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::config::{EngineConfig, IngestConfig};
    use artsparse_core::FormatKind;
    use artsparse_tensor::{CoordBuffer, Shape};

    fn shared_engine(ingest: IngestConfig) -> Arc<StorageEngine<MemBackend>> {
        Arc::new(
            StorageEngine::open_with(
                MemBackend::new(),
                FormatKind::Coo,
                Shape::new(vec![64, 64]).unwrap(),
                8,
                EngineConfig::default().with_ingest(ingest),
            )
            .unwrap(),
        )
    }

    #[test]
    fn tiers_bucket_by_log2_size() {
        assert_eq!(tier_of(0), tier_of(1));
        assert_eq!(tier_of(900), tier_of(1023));
        assert_ne!(tier_of(1023), tier_of(1024));
        // Four same-tier fragments trip a threshold of 4; mixed tiers
        // don't.
        assert!(tier_trigger(&[1000, 1001, 1002, 1003], 4));
        assert!(!tier_trigger(&[10, 1000, 100_000, 10_000_000], 4));
        assert!(!tier_trigger(&[1000, 1001, 1002], 4));
    }

    #[test]
    fn scheduler_flushes_stale_buffer_and_shuts_down_cleanly() {
        let engine = shared_engine(IngestConfig {
            // Size thresholds far away; staleness is the only trigger.
            flush_points: 1_000_000,
            flush_bytes: usize::MAX,
            flush_interval_ms: 1,
            wal: true,
            ..Default::default()
        });
        let c = CoordBuffer::from_points(2, &[[1u64, 2u64]]).unwrap();
        engine.ingest_points::<f64>(&c, &[1.0]).unwrap();
        let mut sched = IngestScheduler::spawn(
            Arc::clone(&engine),
            SchedulerConfig {
                tick_ms: 1,
                ..Default::default()
            },
        );
        let deadline = Instant::now() + Duration::from_secs(10);
        while engine.buffer_stats().points > 0 {
            assert!(Instant::now() < deadline, "scheduler never flushed");
            std::thread::sleep(Duration::from_millis(1));
        }
        sched.shutdown();
        sched.shutdown(); // idempotent
        let stats = sched.stats();
        assert!(stats.runs >= 1);
        assert!(stats.flushes >= 1);
        assert_eq!(stats.errors, 0);
        assert_eq!(engine.fragments().unwrap().len(), 1);
    }

    #[test]
    fn scheduler_consolidates_when_a_tier_fills() {
        let engine = shared_engine(IngestConfig {
            flush_points: 1,
            ..Default::default()
        });
        // Every ingest self-flushes into one similarly-sized fragment:
        // they all land in the same log2 tier.
        for i in 0..6u64 {
            let c = CoordBuffer::from_points(2, &[[i, i]]).unwrap();
            engine.ingest_points::<f64>(&c, &[i as f64]).unwrap();
        }
        assert!(engine.fragments().unwrap().len() >= 4);
        let mut sched = IngestScheduler::spawn(
            Arc::clone(&engine),
            SchedulerConfig {
                tick_ms: 1,
                tier_fragments: 4,
                min_consolidate_interval_ms: 0,
                ..Default::default()
            },
        );
        let deadline = Instant::now() + Duration::from_secs(10);
        while engine.fragments().unwrap().len() > 1 {
            assert!(Instant::now() < deadline, "scheduler never consolidated");
            std::thread::sleep(Duration::from_millis(1));
        }
        sched.shutdown();
        assert!(sched.stats().consolidations >= 1);
        // All six points survived the merge.
        let q =
            CoordBuffer::from_points(2, &(0..6u64).map(|i| [i, i]).collect::<Vec<_>>()).unwrap();
        let vals = engine.read_values::<f64>(&q).unwrap();
        assert!(vals.iter().all(|v| v.is_some()));
    }

    #[test]
    fn scheduler_errors_surface_with_their_text() {
        use crate::config::ObservabilityConfig;
        use crate::faults::FailingBackend;
        // A backend that fails renames makes every staleness flush fail
        // at the commit rename — the exact kind of background error that
        // used to vanish into a bare counter.
        let engine = Arc::new(
            StorageEngine::open_with(
                FailingBackend::new(MemBackend::new()),
                FormatKind::Coo,
                Shape::new(vec![64, 64]).unwrap(),
                8,
                EngineConfig::default()
                    .with_ingest(IngestConfig {
                        flush_points: 1_000_000,
                        flush_bytes: usize::MAX,
                        flush_interval_ms: 0,
                        wal: false,
                        ..Default::default()
                    })
                    .with_observability(ObservabilityConfig::default()),
            )
            .unwrap(),
        );
        let c = CoordBuffer::from_points(2, &[[1u64, 2u64]]).unwrap();
        engine.ingest_points::<f64>(&c, &[1.0]).unwrap();
        engine.backend().fail_renames(true);
        let mut sched = IngestScheduler::spawn(
            Arc::clone(&engine),
            SchedulerConfig {
                tick_ms: 1,
                ..Default::default()
            },
        );
        let deadline = Instant::now() + Duration::from_secs(10);
        while sched.stats().errors == 0 {
            assert!(Instant::now() < deadline, "scheduler never failed");
            std::thread::sleep(Duration::from_millis(1));
        }
        sched.shutdown();
        // The scheduler handle carries the error text...
        let stats = sched.stats();
        assert!(stats.errors >= 1);
        assert!(stats.last_error.unwrap().contains("rename"));
        // ...and so do the engine's store stats...
        let s = engine.stats().unwrap();
        assert!(s.scheduler_errors >= 1);
        assert!(s.scheduler_runs >= 1);
        assert!(s.scheduler_last_error.unwrap().contains("rename"));
        assert!(s.scheduler_last_error_at_ms.unwrap() > 0);
        // ...and the observability journal, as an error-severity event.
        let events = engine.observability().unwrap().journal().drain_new();
        assert!(events.iter().any(|e| e.code == "scheduler_error"
            && e.severity == artsparse_metrics::Severity::Error
            && e.message.contains("rename")));
        // Healing the backend heals the scheduler on a later tick.
        engine.backend().fail_renames(false);
        engine.flush().unwrap();
        assert_eq!(engine.fragments().unwrap().len(), 1);
    }

    #[test]
    fn wal_orphans_drain_on_scheduler_ticks_without_a_flush() {
        use crate::faults::FailingBackend;
        // A flush whose WAL deletion fails queues the blob for retry.
        // Before the tick-time retirement, that retry only ran on the
        // *next flush* — on a quiet engine, never. The scheduler must
        // now drain the queue on ordinary ticks.
        let engine = Arc::new(
            StorageEngine::open_with(
                FailingBackend::new(MemBackend::new()),
                FormatKind::Coo,
                Shape::new(vec![64, 64]).unwrap(),
                8,
                EngineConfig::default().with_ingest(IngestConfig {
                    flush_points: 1, // every ingest self-flushes
                    ..Default::default()
                }),
            )
            .unwrap(),
        );
        engine.backend().fail_deletes(true);
        let c = CoordBuffer::from_points(2, &[[1u64, 2u64]]).unwrap();
        engine.ingest_points::<f64>(&c, &[1.0]).unwrap();
        // The flush committed but could not retire its WAL blob.
        let orphans = |e: &StorageEngine<FailingBackend<MemBackend>>| {
            e.backend()
                .list()
                .unwrap()
                .into_iter()
                .filter(|n| n.ends_with(".wal"))
                .count()
        };
        assert_eq!(orphans(&engine), 1, "delete failure must strand the blob");
        engine.backend().disarm();
        // No buffered data, so no flush will ever run — only ticks.
        let mut sched = IngestScheduler::spawn(
            Arc::clone(&engine),
            SchedulerConfig {
                tick_ms: 1,
                ..Default::default()
            },
        );
        let deadline = Instant::now() + Duration::from_secs(10);
        while orphans(&engine) > 0 {
            assert!(Instant::now() < deadline, "ticks never retired the orphan");
            std::thread::sleep(Duration::from_millis(1));
        }
        sched.shutdown();
        assert_eq!(engine.stats().unwrap().wal_backlog_bytes, 0);
    }

    #[test]
    fn shutdown_with_a_stuck_backend_returns_within_the_timeout() {
        use crate::faults::FailingBackend;
        // A worker wedged inside a slow backend call must not hang
        // shutdown (and therefore drop) indefinitely: the bounded wait
        // detaches it and surfaces a scheduler error.
        let engine = Arc::new(
            StorageEngine::open_with(
                FailingBackend::new(MemBackend::new()),
                FormatKind::Coo,
                Shape::new(vec![64, 64]).unwrap(),
                8,
                EngineConfig::default()
                    .with_ingest(IngestConfig {
                        flush_points: 1_000_000,
                        flush_bytes: usize::MAX,
                        flush_interval_ms: 0, // every tick wants to flush
                        wal: false,
                        ..Default::default()
                    })
                    .with_observability(crate::config::ObservabilityConfig::default()),
            )
            .unwrap(),
        );
        let c = CoordBuffer::from_points(2, &[[1u64, 2u64]]).unwrap();
        engine.ingest_points::<f64>(&c, &[1.0]).unwrap();
        // Every write now takes ~20s; the first tick's flush wedges.
        engine.backend().set_write_latency(Duration::from_secs(20));
        let mut sched = IngestScheduler::spawn(
            Arc::clone(&engine),
            SchedulerConfig {
                tick_ms: 1,
                shutdown_timeout_ms: 100,
                ..Default::default()
            },
        );
        // Give the worker time to enter the wedged backend call.
        std::thread::sleep(Duration::from_millis(50));
        let started = Instant::now();
        sched.shutdown();
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "shutdown must be bounded, took {:?}",
            started.elapsed()
        );
        let stats = sched.stats();
        assert!(stats.errors >= 1);
        assert!(stats.last_error.unwrap().contains("timed out"));
        // The timeout is journaled like any other scheduler failure.
        let events = engine.observability().unwrap().journal().drain_new();
        assert!(events
            .iter()
            .any(|e| e.code == "scheduler_error" && e.message.contains("timed out")));
    }

    #[test]
    fn shutdown_mid_flush_completes_the_flush() {
        // A shutdown while a pass is mid-flight must let the pass finish:
        // spawn, immediately shut down, and verify nothing is torn — the
        // buffer either flushed whole or not at all.
        let engine = shared_engine(IngestConfig {
            flush_points: 1_000_000,
            flush_bytes: usize::MAX,
            flush_interval_ms: 0,
            wal: true,
            ..Default::default()
        });
        let c = CoordBuffer::from_points(2, &[[5u64, 5u64]]).unwrap();
        engine.ingest_points::<f64>(&c, &[5.0]).unwrap();
        let mut sched = IngestScheduler::spawn(
            Arc::clone(&engine),
            SchedulerConfig {
                tick_ms: 1,
                ..Default::default()
            },
        );
        sched.shutdown();
        let buffered = engine.buffer_stats().points;
        let fragments = engine.fragments().unwrap().len();
        assert!(
            (buffered == 1 && fragments == 0) || (buffered == 0 && fragments == 1),
            "point must be wholly buffered or wholly flushed \
             (buffered={buffered}, fragments={fragments})"
        );
        // Either way the point is readable.
        assert_eq!(engine.read_values::<f64>(&c).unwrap(), vec![Some(5.0)],);
    }
}
