//! Striped storage — the Lustre-style parallelism of the paper's testbed.
//!
//! Lustre stripes each file across object storage targets (OSTs) so one
//! client's write streams to several devices at once. [`StripedBackend`]
//! reproduces that: a blob is cut into `stripe_size` chunks dealt
//! round-robin over N inner devices, and per-device transfers run on
//! their own OS threads — so device time (e.g. [`SimulatedDisk`] sleeps)
//! overlaps exactly like parallel OST traffic, independent of CPU count.
//!
//! [`SimulatedDisk`]: crate::backend::SimulatedDisk

use crate::backend::StorageBackend;
use crate::error::{Result, StorageError};

/// A blob store striped over several inner devices.
pub struct StripedBackend<B> {
    devices: Vec<B>,
    stripe_size: usize,
}

impl<B: StorageBackend> StripedBackend<B> {
    /// Stripe over the given devices with `stripe_size`-byte chunks.
    pub fn new(devices: Vec<B>, stripe_size: usize) -> Self {
        assert!(!devices.is_empty(), "at least one device");
        assert!(stripe_size > 0, "stripe size must be positive");
        StripedBackend {
            devices,
            stripe_size,
        }
    }

    /// Number of devices (the stripe count).
    pub fn stripe_count(&self) -> usize {
        self.devices.len()
    }

    /// Access the inner devices (e.g. for per-OST statistics).
    pub fn devices(&self) -> &[B] {
        &self.devices
    }

    /// How many bytes of a `total`-byte blob land on device `d`.
    fn part_len(&self, total: usize, d: usize) -> usize {
        let s = self.stripe_size;
        let n = self.devices.len();
        let full_rounds = total / (s * n);
        let mut len = full_rounds * s;
        let rem = total - full_rounds * s * n;
        // The remainder fills devices 0.. in order.
        let start = d * s;
        if rem > start {
            len += (rem - start).min(s);
        }
        len
    }
}

impl<B: StorageBackend> StorageBackend for StripedBackend<B> {
    fn kind_name(&self) -> &'static str {
        "striped"
    }

    fn put(&self, name: &str, data: &[u8]) -> Result<()> {
        let n = self.devices.len();
        let s = self.stripe_size;
        // Assemble each device's part (its chunks, concatenated).
        let mut parts: Vec<Vec<u8>> = (0..n)
            .map(|d| Vec::with_capacity(self.part_len(data.len(), d)))
            .collect();
        for (j, chunk) in data.chunks(s).enumerate() {
            parts[j % n].extend_from_slice(chunk);
        }
        // One OS thread per device: device time overlaps like real OSTs.
        let results: Vec<Result<()>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .devices
                .iter()
                .zip(&parts)
                .map(|(dev, part)| scope.spawn(move || dev.put(name, part)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("stripe writer panicked"))
                .collect()
        });
        results.into_iter().collect::<Result<Vec<()>>>()?;
        Ok(())
    }

    fn put_atomic(&self, name: &str, data: &[u8]) -> Result<()> {
        // Atomic per device: each OST flips its part in one step. The
        // cross-device cut-over is not atomic — the engine's staged
        // commit (temp name + rename) provides the store-level guarantee.
        let n = self.devices.len();
        let s = self.stripe_size;
        let mut parts: Vec<Vec<u8>> = (0..n)
            .map(|d| Vec::with_capacity(self.part_len(data.len(), d)))
            .collect();
        for (j, chunk) in data.chunks(s).enumerate() {
            parts[j % n].extend_from_slice(chunk);
        }
        let results: Vec<Result<()>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .devices
                .iter()
                .zip(&parts)
                .map(|(dev, part)| scope.spawn(move || dev.put_atomic(name, part)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("stripe writer panicked"))
                .collect()
        });
        results.into_iter().collect::<Result<Vec<()>>>()?;
        Ok(())
    }

    fn put_exclusive(&self, name: &str, data: &[u8]) -> Result<()> {
        // Device 0 arbitrates the claim: its exclusive create either wins
        // the name for the whole stripe set or rejects the put before any
        // other device is touched.
        let n = self.devices.len();
        let s = self.stripe_size;
        let mut parts: Vec<Vec<u8>> = (0..n)
            .map(|d| Vec::with_capacity(self.part_len(data.len(), d)))
            .collect();
        for (j, chunk) in data.chunks(s).enumerate() {
            parts[j % n].extend_from_slice(chunk);
        }
        self.devices[0].put_exclusive(name, &parts[0])?;
        for (dev, part) in self.devices.iter().zip(&parts).skip(1) {
            dev.put_atomic(name, part)?;
        }
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        // Metadata-only on every device; device order matches `put`'s
        // part order so a partially renamed blob is detected by `get`'s
        // part-length validation rather than silently reassembled.
        for dev in &self.devices {
            dev.rename(from, to)?;
        }
        Ok(())
    }

    fn get(&self, name: &str) -> Result<Vec<u8>> {
        let n = self.devices.len();
        let s = self.stripe_size;
        let parts: Vec<Result<Vec<u8>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .devices
                .iter()
                .map(|dev| scope.spawn(move || dev.get(name)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("stripe reader panicked"))
                .collect()
        });
        let parts: Vec<Vec<u8>> = parts.into_iter().collect::<Result<_>>()?;
        let total: usize = parts.iter().map(Vec::len).sum();
        // Validate the parts form a consistent striping of `total` bytes.
        for (d, part) in parts.iter().enumerate() {
            if part.len() != self.part_len(total, d) {
                return Err(StorageError::corrupt(
                    name,
                    format!("device {d} part has inconsistent length"),
                ));
            }
        }
        let mut out = Vec::with_capacity(total);
        let mut offsets = vec![0usize; n];
        let mut j = 0usize;
        while out.len() < total {
            let d = j % n;
            let lo = offsets[d];
            let hi = (lo + s).min(parts[d].len());
            out.extend_from_slice(&parts[d][lo..hi]);
            offsets[d] = hi;
            j += 1;
        }
        Ok(out)
    }

    fn get_prefix(&self, name: &str, len: usize) -> Result<Vec<u8>> {
        // Read only the devices/chunks the prefix touches.
        let n = self.devices.len();
        let s = self.stripe_size;
        let chunks_needed = len.div_ceil(s).max(1);
        let mut per_dev = vec![0usize; n];
        for j in 0..chunks_needed {
            per_dev[j % n] += s;
        }
        let parts: Vec<Result<Vec<u8>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .devices
                .iter()
                .zip(per_dev.iter())
                .map(|(dev, &want)| {
                    scope.spawn(move || {
                        if want == 0 {
                            Ok(Vec::new())
                        } else {
                            dev.get_prefix(name, want)
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("stripe reader panicked"))
                .collect()
        });
        let parts: Vec<Vec<u8>> = parts.into_iter().collect::<Result<_>>()?;
        let mut out = Vec::with_capacity(len);
        let mut offsets = vec![0usize; n];
        let mut j = 0usize;
        while out.len() < len {
            let d = j % n;
            let lo = offsets[d];
            if lo >= parts[d].len() {
                break; // blob shorter than the requested prefix
            }
            let hi = (lo + s).min(parts[d].len());
            out.extend_from_slice(&parts[d][lo..hi]);
            offsets[d] = hi;
            j += 1;
        }
        out.truncate(len);
        Ok(out)
    }

    fn get_range(&self, name: &str, offset: u64, len: usize) -> Result<Vec<u8>> {
        if len == 0 {
            return Ok(Vec::new());
        }
        let n = self.devices.len();
        let s = self.stripe_size;
        let offset = offset as usize;
        // Global chunks touched by the window; chunk j lives on device
        // j % n at device-local offset (j / n) * s, so the chunks one
        // device owns within [j0, j1] form one contiguous local window.
        let j0 = offset / s;
        let j1 = (offset + len - 1) / s;
        let mut windows: Vec<Option<(usize, usize, usize)>> = vec![None; n];
        for (d, window) in windows.iter_mut().enumerate() {
            let jmin = j0 + (d + n - j0 % n) % n;
            if jmin > j1 {
                continue;
            }
            let jmax = j1 - (j1 % n + n - d) % n;
            let local_start = (jmin / n) * s;
            let local_end = (jmax / n) * s + s;
            *window = Some((jmin, local_start, local_end - local_start));
        }
        let parts: Vec<Result<Vec<u8>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .devices
                .iter()
                .zip(windows.iter())
                .map(|(dev, window)| {
                    scope.spawn(move || match *window {
                        None => Ok(Vec::new()),
                        Some((_, lo, want)) => dev.get_range(name, lo as u64, want),
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("stripe reader panicked"))
                .collect()
        });
        let parts: Vec<Vec<u8>> = parts.into_iter().collect::<Result<_>>()?;
        // Reassemble the covered chunks in global order; a short or missing
        // chunk means the blob ends inside the window.
        let mut out = Vec::with_capacity((j1 - j0 + 1) * s);
        for j in j0..=j1 {
            let d = j % n;
            let Some((jmin, _, _)) = windows[d] else {
                break;
            };
            let rel = (j / n - jmin / n) * s;
            let part = &parts[d];
            if rel >= part.len() {
                break;
            }
            let hi = (rel + s).min(part.len());
            out.extend_from_slice(&part[rel..hi]);
            if hi - rel < s {
                break;
            }
        }
        // `out` starts at global offset j0 * s; cut the requested window.
        let skip = (offset - j0 * s).min(out.len());
        let end = (offset - j0 * s + len).min(out.len());
        Ok(out[skip..end].to_vec())
    }

    fn list(&self) -> Result<Vec<String>> {
        self.devices[0].list()
    }

    fn size(&self, name: &str) -> Result<u64> {
        let mut total = 0;
        for dev in &self.devices {
            total += dev.size(name)?;
        }
        Ok(total)
    }

    fn delete(&self, name: &str) -> Result<()> {
        for dev in &self.devices {
            dev.delete(name)?;
        }
        Ok(())
    }

    fn exists(&self, name: &str) -> bool {
        self.devices[0].exists(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{MemBackend, SimulatedDisk};
    use std::time::{Duration, Instant};

    fn striped_mem(n: usize, stripe: usize) -> StripedBackend<MemBackend> {
        StripedBackend::new((0..n).map(|_| MemBackend::new()).collect(), stripe)
    }

    #[test]
    fn roundtrip_various_sizes_and_stripe_counts() {
        for n in [1usize, 2, 3, 5] {
            for stripe in [1usize, 3, 8] {
                let b = striped_mem(n, stripe);
                for len in [0usize, 1, 7, 8, 9, 64, 100] {
                    let data: Vec<u8> = (0..len as u32).map(|x| x as u8).collect();
                    b.put("blob", &data).unwrap();
                    assert_eq!(b.get("blob").unwrap(), data, "n={n} s={stripe} len={len}");
                    assert_eq!(b.size("blob").unwrap(), len as u64);
                    for plen in [0usize, 1, stripe, stripe + 1, len, len + 5] {
                        let want: Vec<u8> = data.iter().copied().take(plen).collect();
                        assert_eq!(
                            b.get_prefix("blob", plen).unwrap(),
                            want,
                            "prefix n={n} s={stripe} len={len} plen={plen}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn range_reads_match_whole_blob_slicing() {
        for n in [1usize, 2, 3, 5] {
            for stripe in [1usize, 3, 8] {
                let b = striped_mem(n, stripe);
                let data: Vec<u8> = (0..100u32).map(|x| x as u8).collect();
                b.put("blob", &data).unwrap();
                for offset in [0usize, 1, 3, 8, 9, 24, 99, 100, 120] {
                    for len in [0usize, 1, 2, 7, 8, 9, 50, 100, 200] {
                        let start = offset.min(data.len());
                        let end = (offset + len).min(data.len());
                        assert_eq!(
                            b.get_range("blob", offset as u64, len).unwrap(),
                            &data[start..end],
                            "n={n} s={stripe} offset={offset} len={len}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn contract_basics() {
        let b = striped_mem(3, 4);
        b.put("a", &[1; 10]).unwrap();
        b.put("b", &[2; 3]).unwrap();
        assert_eq!(b.list().unwrap(), vec!["a", "b"]);
        assert!(b.exists("a"));
        b.delete("a").unwrap();
        assert!(!b.exists("a"));
        assert!(b.get("a").is_err());
    }

    #[test]
    fn commit_primitives_stripe_consistently() {
        for n in [1usize, 2, 3] {
            let b = striped_mem(n, 4);
            let data: Vec<u8> = (0..23).collect();
            b.put_atomic("x", &data).unwrap();
            assert_eq!(b.get("x").unwrap(), data);
            b.rename("x", "y").unwrap();
            assert!(!b.exists("x"));
            assert_eq!(b.get("y").unwrap(), data);
            // Exclusive create: first claim wins, the rest are rejected
            // before any device's part changes.
            b.put_exclusive("z", &data).unwrap();
            assert!(b
                .put_exclusive("z", &[9; 30])
                .unwrap_err()
                .is_already_exists());
            assert_eq!(b.get("z").unwrap(), data);
        }
    }

    #[test]
    fn range_reads_transfer_fewer_device_bytes_than_whole_gets() {
        // The satellite regression: a striped range read must hit only
        // the devices (and only the windows) the byte range maps to, not
        // fall back to assembling the whole blob. Asserted through the
        // per-OST `bytes_read` accounting.
        let mk = || SimulatedDisk::new(1e12, Duration::ZERO);
        let b = StripedBackend::new((0..4).map(|_| mk()).collect(), 16);
        let data: Vec<u8> = (0..4096u32).map(|x| x as u8).collect();
        b.put("blob", &data).unwrap();

        let device_bytes = |b: &StripedBackend<SimulatedDisk>| -> u64 {
            b.devices().iter().map(|d| d.bytes_read()).sum()
        };

        let before = device_bytes(&b);
        let window = b.get_range("blob", 100, 50).unwrap();
        assert_eq!(window, &data[100..150]);
        let ranged = device_bytes(&b) - before;

        let before = device_bytes(&b);
        let _ = b.get("blob").unwrap();
        let whole = device_bytes(&b) - before;

        assert_eq!(whole, data.len() as u64);
        // The 50-byte window spans at most 4 chunks of 16 bytes + stripe
        // rounding — far below the 4096-byte blob.
        assert!(
            ranged < whole && ranged <= 5 * 16,
            "ranged read transferred {ranged} bytes vs whole {whole}"
        );

        // Prefix reads are windowed the same way.
        let before = device_bytes(&b);
        let head = b.get_prefix("blob", 40).unwrap();
        assert_eq!(head, &data[..40]);
        let prefixed = device_bytes(&b) - before;
        assert!(prefixed < whole && prefixed <= 3 * 16, "{prefixed}");
    }

    #[test]
    fn chunks_are_distributed_round_robin() {
        let b = striped_mem(2, 4);
        let data: Vec<u8> = (0..12).collect();
        b.put("x", &data).unwrap();
        assert_eq!(
            b.devices()[0].get("x").unwrap(),
            vec![0, 1, 2, 3, 8, 9, 10, 11]
        );
        assert_eq!(b.devices()[1].get("x").unwrap(), vec![4, 5, 6, 7]);
    }

    #[test]
    fn striping_overlaps_device_time() {
        // 4 devices at 10 MiB/s each: a 1 MiB blob takes ≈100 ms unstriped
        // but ≈25 ms striped (each device moves ¼ of the bytes in
        // parallel). Generous margins keep this robust on loaded hosts.
        let mk = || SimulatedDisk::new(10.0 * (1 << 20) as f64, Duration::ZERO);
        let data = vec![7u8; 1 << 20];

        let single = mk();
        let t0 = Instant::now();
        single.put("blob", &data).unwrap();
        let unstriped = t0.elapsed();

        let striped = StripedBackend::new((0..4).map(|_| mk()).collect(), 1 << 16);
        let t0 = Instant::now();
        striped.put("blob", &data).unwrap();
        let striped_t = t0.elapsed();

        assert!(
            striped_t.as_secs_f64() < unstriped.as_secs_f64() * 0.6,
            "striped {striped_t:?} vs unstriped {unstriped:?}"
        );
        // All bytes accounted for across the OSTs.
        let total: u64 = striped.devices().iter().map(|d| d.bytes_written()).sum();
        assert_eq!(total, data.len() as u64);
    }

    #[test]
    fn engine_runs_on_a_striped_backend() {
        use crate::engine::StorageEngine;
        use artsparse_core::FormatKind;
        use artsparse_tensor::{CoordBuffer, Shape};

        let backend = striped_mem(3, 16);
        let engine = StorageEngine::open(
            backend,
            FormatKind::GcsrPP,
            Shape::new(vec![32, 32]).unwrap(),
            8,
        )
        .unwrap();
        let coords = CoordBuffer::from_points(2, &[[1u64, 2], [30, 31], [5, 5]]).unwrap();
        engine
            .write_points::<f64>(&coords, &[1.0, 2.0, 3.0])
            .unwrap();
        assert_eq!(
            engine.read_values::<f64>(&coords).unwrap(),
            vec![Some(1.0), Some(2.0), Some(3.0)]
        );
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_panics() {
        StripedBackend::<MemBackend>::new(vec![], 8);
    }
}
