//! End-to-end data integrity: a table-driven software CRC32C.
//!
//! Fragment layout v3 stamps one CRC32C per fragment section (header,
//! stored index, stored values) so every fetch verifies the bytes it is
//! about to trust — bit rot, torn sectors, and buggy devices surface as
//! typed [`StorageError::ChecksumMismatch`](crate::error::StorageError)
//! instead of silently wrong query answers. Checksums cover the *stored*
//! (possibly compressed) bytes, so verification never needs to decompress
//! or decode an organization — which is what lets
//! [`StorageEngine::scrub`](crate::engine::StorageEngine::scrub) audit a
//! whole store with pure sequential reads.
//!
//! The polynomial is Castagnoli's (CRC32C, reflected `0x82F63B78`) — the
//! same checksum iSCSI, ext4, and most storage systems use, chosen for
//! its published error-detection bounds on storage-sized payloads. The
//! implementation is pure software (the build container has no registry
//! access, and portability beats peak throughput here): slicing-by-8 over
//! compile-time tables, ~1–2 GB/s — far faster than the devices being
//! verified.

/// Reflected CRC32C (Castagnoli) polynomial.
const POLY: u32 = 0x82F6_3B78;

/// Slicing-by-8 lookup tables, built at compile time.
const fn make_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = make_tables();

/// CRC32C of `data` in one call.
pub fn crc32c(data: &[u8]) -> u32 {
    let mut h = Crc32c::new();
    h.update(data);
    h.finalize()
}

/// Incremental CRC32C state, for checksumming streamed or segmented
/// payloads without concatenating them first.
#[derive(Debug, Clone, Copy)]
pub struct Crc32c {
    state: u32,
}

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32c {
    /// Fresh state (equivalent to having hashed zero bytes).
    pub fn new() -> Self {
        Crc32c { state: !0 }
    }

    /// Fold more bytes into the checksum.
    pub fn update(&mut self, mut data: &[u8]) {
        let mut crc = self.state;
        while data.len() >= 8 {
            let lo = u32::from_le_bytes([data[0], data[1], data[2], data[3]]) ^ crc;
            let hi = u32::from_le_bytes([data[4], data[5], data[6], data[7]]);
            crc = TABLES[7][(lo & 0xFF) as usize]
                ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ TABLES[4][(lo >> 24) as usize]
                ^ TABLES[3][(hi & 0xFF) as usize]
                ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ TABLES[0][(hi >> 24) as usize];
            data = &data[8..];
        }
        for &b in data {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Finish and return the checksum.
    pub fn finalize(self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 7143 (iSCSI) CRC32C test vectors.
    #[test]
    fn known_vectors() {
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
        let descending: Vec<u8> = (0..32).rev().collect();
        assert_eq!(crc32c(&descending), 0x113F_DB5C);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..1000u32).flat_map(|v| v.to_le_bytes()).collect();
        let whole = crc32c(&data);
        for split in [0, 1, 7, 8, 9, 500, data.len()] {
            let mut h = Crc32c::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), whole, "split at {split}");
        }
        // Byte-at-a-time must agree with slicing-by-8.
        let mut h = Crc32c::new();
        for &b in &data {
            h.update(&[b]);
        }
        assert_eq!(h.finalize(), whole);
    }

    #[test]
    fn any_single_bit_flip_changes_the_checksum() {
        let data: Vec<u8> = (0..257u32).flat_map(|v| (v * 31).to_le_bytes()).collect();
        let clean = crc32c(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32c(&flipped), clean, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
