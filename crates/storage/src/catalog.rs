//! The fragment catalog — an in-engine manifest of every fragment's
//! metadata.
//!
//! Algorithm 3's READ discovers fragments by listing the device and
//! peeking each header (line 4). Doing that on every query charges the
//! device for `O(fragments)` metadata operations per read. The catalog
//! pays that cost once — when the engine opens — and keeps the manifest
//! current as fragments are written, consolidated, and deleted, so
//! discovery and bounding-box pruning become a pure in-memory planning
//! step ([`FragmentCatalog::plan`]).
//!
//! External mutations of the device (another writer, manual blob edits)
//! are picked up by [`FragmentCatalog::reload`].
//!
//! The catalog is also where fault-tolerant reads park damaged
//! fragments: [`FragmentCatalog::quarantine`] marks a fragment that
//! exhausted its retries or failed checksum verification. Quarantined
//! fragments stay on the device and in the manifest (so accounting and
//! scrubbing still see them) but are skipped by planning and by
//! consolidation — degraded reads proceed over the survivors, and
//! nothing ever deletes the evidence.

use crate::backend::StorageBackend;
use crate::error::Result;
use crate::fragment::{decode_meta, FragmentMeta};
use artsparse_tensor::Region;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Everything the engine knows about one fragment without touching its
/// payload sections.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// Blob name on the device.
    pub name: String,
    /// Decoded header.
    pub meta: FragmentMeta,
    /// Size of the blob on the device in bytes.
    pub size: u64,
}

/// The outcome of planning a read: which fragments were considered and
/// which survive bounding-box pruning, in write order.
#[derive(Debug, Clone, Default)]
pub struct ReadPlan {
    /// Fragments whose metadata was examined.
    pub scanned: usize,
    /// Fragments whose bounding box overlaps the query, in write order.
    pub fragments: Vec<Arc<CatalogEntry>>,
    /// Quarantined fragments whose bounding box overlaps the query —
    /// data the plan *would* have read but cannot trust. A non-empty
    /// list means any result built from this plan may be incomplete.
    pub quarantined: Vec<String>,
}

/// Manifest of fragment metadata, keyed by name (names sort in write
/// order, so iteration order is write order).
#[derive(Debug, Default)]
pub struct FragmentCatalog {
    entries: RwLock<BTreeMap<String, Arc<CatalogEntry>>>,
    /// Damaged fragments (name → why), excluded from planning and
    /// consolidation but never deleted. Kept separate from `entries` so
    /// a `reload` resyncing the manifest does not forget what was
    /// already found to be damaged.
    quarantined: RwLock<BTreeMap<String, String>>,
}

impl FragmentCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a catalog by listing the device and peeking every header
    /// once. `ndim` sizes the header peek; `filter` keeps only blob names
    /// that belong to the engine (fragment names). The engine's filter is
    /// strict fragment-name parsing, which is what keeps the commit
    /// protocol's auxiliary blobs — `.tmp` staging blobs, `tomb-*.tsn`
    /// tombstones, `epoch-*.lck` claim markers — invisible to discovery:
    /// a staged fragment simply does not exist until its rename-commit.
    pub fn load<B: StorageBackend>(
        backend: &B,
        ndim: usize,
        filter: impl Fn(&str) -> bool,
    ) -> Result<Self> {
        let catalog = FragmentCatalog::new();
        let header_len = FragmentMeta::header_len(ndim);
        for name in backend.list()? {
            if !filter(&name) {
                continue;
            }
            let header = backend.get_prefix(&name, header_len)?;
            let meta = decode_meta(&name, &header)?;
            let size = backend.size(&name)?;
            catalog.insert(CatalogEntry { name, meta, size });
        }
        Ok(catalog)
    }

    /// Replace this catalog's contents with a freshly loaded manifest.
    pub fn reload<B: StorageBackend>(
        &self,
        backend: &B,
        ndim: usize,
        filter: impl Fn(&str) -> bool,
    ) -> Result<()> {
        let fresh = Self::load(backend, ndim, filter)?;
        *self.entries.write() = fresh.entries.into_inner();
        Ok(())
    }

    /// Record a fragment (newly written or externally discovered).
    pub fn insert(&self, entry: CatalogEntry) {
        self.entries
            .write()
            .insert(entry.name.clone(), Arc::new(entry));
    }

    /// Forget a fragment, returning its entry if it was known. Also
    /// clears any quarantine record — the name may be reused by a
    /// future epoch, which must start with a clean slate.
    pub fn remove(&self, name: &str) -> Option<Arc<CatalogEntry>> {
        self.quarantined.write().remove(name);
        self.entries.write().remove(name)
    }

    /// Mark a fragment as damaged: excluded from planning and
    /// consolidation, never deleted. Returns `true` if the fragment was
    /// not already quarantined (so callers can count first observations
    /// exactly once); the first diagnosis wins — re-quarantining keeps
    /// the original reason. The record survives [`reload`](Self::reload).
    pub fn quarantine(&self, name: impl Into<String>, reason: impl Into<String>) -> bool {
        match self.quarantined.write().entry(name.into()) {
            std::collections::btree_map::Entry::Occupied(_) => false,
            std::collections::btree_map::Entry::Vacant(slot) => {
                slot.insert(reason.into());
                true
            }
        }
    }

    /// Whether a fragment is quarantined.
    pub fn is_quarantined(&self, name: &str) -> bool {
        self.quarantined.read().contains_key(name)
    }

    /// All quarantine records as `(name, reason)`, in name order.
    pub fn quarantined(&self) -> Vec<(String, String)> {
        self.quarantined
            .read()
            .iter()
            .map(|(n, r)| (n.clone(), r.clone()))
            .collect()
    }

    /// Look up one fragment.
    pub fn get(&self, name: &str) -> Option<Arc<CatalogEntry>> {
        self.entries.read().get(name).cloned()
    }

    /// Number of fragments.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Fragment names in write order.
    pub fn names(&self) -> Vec<String> {
        self.entries.read().keys().cloned().collect()
    }

    /// All healthy (non-quarantined) entries in write order — what
    /// consolidation and other bulk readers may safely decode.
    pub fn snapshot(&self) -> Vec<Arc<CatalogEntry>> {
        let quarantined = self.quarantined.read();
        self.entries
            .read()
            .values()
            .filter(|e| !quarantined.contains_key(&e.name))
            .cloned()
            .collect()
    }

    /// Every entry in write order, quarantined ones included — what
    /// accounting and scrubbing walk.
    pub fn snapshot_all(&self) -> Vec<Arc<CatalogEntry>> {
        self.entries.read().values().cloned().collect()
    }

    /// Total stored bytes across all fragments.
    pub fn total_bytes(&self) -> u64 {
        self.entries.read().values().map(|e| e.size).sum()
    }

    /// Bounding-box pruning against a query box — the in-memory version
    /// of Algorithm 3's discovery loop. Empty fragments have no box and
    /// never match.
    pub fn plan(&self, query_bbox: &Region) -> ReadPlan {
        let entries = self.entries.read();
        let quarantined = self.quarantined.read();
        let mut plan = ReadPlan {
            scanned: entries.len(),
            fragments: Vec::new(),
            quarantined: Vec::new(),
        };
        for entry in entries.values() {
            let overlaps = entry
                .meta
                .bbox
                .as_ref()
                .is_some_and(|b| b.intersects(query_bbox));
            if overlaps {
                if quarantined.contains_key(&entry.name) {
                    plan.quarantined.push(entry.name.clone());
                } else {
                    plan.fragments.push(entry.clone());
                }
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::codec::Codec;
    use crate::fragment::encode_fragment;
    use artsparse_core::FormatKind;
    use artsparse_tensor::Shape;

    fn put_fragment(backend: &MemBackend, name: &str, lo: [u64; 2], hi: [u64; 2]) -> usize {
        let shape = Shape::new(vec![32, 32]).unwrap();
        let bbox = Region::from_corners(&lo, &hi).unwrap();
        let bytes = encode_fragment(
            FormatKind::Linear,
            &shape,
            1,
            8,
            Some(&bbox),
            &[1, 2, 3, 4],
            &[0u8; 8],
            Codec::None,
            Codec::None,
        );
        backend.put(name, &bytes).unwrap();
        bytes.len()
    }

    #[test]
    fn load_filters_and_records_sizes() {
        let backend = MemBackend::new();
        let len_a = put_fragment(&backend, "frag-00000001.asf", [0, 0], [3, 3]);
        let len_b = put_fragment(&backend, "frag-00000002.asf", [10, 10], [12, 12]);
        backend.put("not-a-fragment.txt", &[1, 2, 3]).unwrap();

        let catalog = FragmentCatalog::load(&backend, 2, |n| n.starts_with("frag-")).unwrap();
        assert_eq!(catalog.len(), 2);
        assert_eq!(
            catalog.names(),
            vec!["frag-00000001.asf", "frag-00000002.asf"]
        );
        assert_eq!(catalog.total_bytes(), (len_a + len_b) as u64);
        assert_eq!(catalog.get("frag-00000001.asf").unwrap().meta.n, 1);
    }

    #[test]
    fn commit_protocol_blobs_stay_invisible_to_discovery() {
        // Staging blobs, tombstones, and epoch markers share the store
        // with fragments; the engine's name filter must keep all of them
        // out of the catalog. Their payloads are not valid fragments, so
        // letting one through would fail the load outright.
        let backend = MemBackend::new();
        put_fragment(&backend, "frag-00000001-00000001.asf", [0, 0], [3, 3]);
        backend
            .put("frag-00000002-00000001.asf.tmp", &[0xde, 0xad])
            .unwrap();
        backend
            .put(
                "tomb-frag-00000001-00000001c000001.asf.tsn",
                b"frag-00000001-00000001.asf\n",
            )
            .unwrap();
        backend.put("epoch-00000001.lck", &[]).unwrap();

        let filter = |n: &str| n.starts_with("frag-") && n.ends_with(".asf");
        let catalog = FragmentCatalog::load(&backend, 2, filter).unwrap();
        assert_eq!(catalog.names(), vec!["frag-00000001-00000001.asf"]);
    }

    #[test]
    fn plan_prunes_by_bounding_box() {
        let backend = MemBackend::new();
        put_fragment(&backend, "frag-00000001.asf", [0, 0], [3, 3]);
        put_fragment(&backend, "frag-00000002.asf", [10, 10], [12, 12]);
        let catalog = FragmentCatalog::load(&backend, 2, |_| true).unwrap();

        let q = Region::from_corners(&[2, 2], &[5, 5]).unwrap();
        let plan = catalog.plan(&q);
        assert_eq!(plan.scanned, 2);
        assert_eq!(plan.fragments.len(), 1);
        assert_eq!(plan.fragments[0].name, "frag-00000001.asf");

        let q = Region::from_corners(&[20, 20], &[30, 30]).unwrap();
        assert!(catalog.plan(&q).fragments.is_empty());
    }

    #[test]
    fn quarantine_excludes_from_planning_but_not_accounting() {
        let backend = MemBackend::new();
        put_fragment(&backend, "frag-00000001.asf", [0, 0], [3, 3]);
        put_fragment(&backend, "frag-00000002.asf", [2, 2], [5, 5]);
        let catalog = FragmentCatalog::load(&backend, 2, |_| true).unwrap();
        let all_bytes = catalog.total_bytes();

        assert!(catalog.quarantine("frag-00000001.asf", "checksum mismatch"));
        assert!(
            !catalog.quarantine("frag-00000001.asf", "again"),
            "already known"
        );
        assert!(catalog.is_quarantined("frag-00000001.asf"));

        // Planning routes the damaged overlap into `quarantined`.
        let q = Region::from_corners(&[2, 2], &[3, 3]).unwrap();
        let plan = catalog.plan(&q);
        assert_eq!(plan.fragments.len(), 1);
        assert_eq!(plan.fragments[0].name, "frag-00000002.asf");
        assert_eq!(plan.quarantined, vec!["frag-00000001.asf"]);
        // A query that misses the damaged bbox reports nothing.
        let q = Region::from_corners(&[5, 5], &[5, 5]).unwrap();
        assert!(catalog.plan(&q).quarantined.is_empty());

        // Healthy snapshots shrink; accounting and the full walk do not.
        assert_eq!(catalog.snapshot().len(), 1);
        assert_eq!(catalog.snapshot_all().len(), 2);
        assert_eq!(catalog.len(), 2);
        assert_eq!(catalog.total_bytes(), all_bytes);

        // The record survives a reload (the manifest resyncs, the
        // damage verdict stands)…
        catalog.reload(&backend, 2, |_| true).unwrap();
        assert!(catalog.is_quarantined("frag-00000001.asf"));
        assert_eq!(catalog.quarantined()[0].1, "checksum mismatch");

        // …but removal clears it: the name may be reused.
        catalog.remove("frag-00000001.asf");
        assert!(!catalog.is_quarantined("frag-00000001.asf"));
    }

    #[test]
    fn incremental_maintenance_and_reload() {
        let backend = MemBackend::new();
        put_fragment(&backend, "frag-00000001.asf", [0, 0], [3, 3]);
        let catalog = FragmentCatalog::load(&backend, 2, |_| true).unwrap();

        catalog.remove("frag-00000001.asf").unwrap();
        assert!(catalog.is_empty());
        assert_eq!(catalog.total_bytes(), 0);

        // The device changed behind the catalog's back; reload resyncs.
        put_fragment(&backend, "frag-00000002.asf", [4, 4], [6, 6]);
        catalog.reload(&backend, 2, |_| true).unwrap();
        assert_eq!(catalog.names().len(), 2);
    }
}
