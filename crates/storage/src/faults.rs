//! Failure injection for the commit protocol and the read path.
//!
//! [`FailingBackend`] wraps any device and simulates two families of
//! faults. **Write crashes** (since the commit-protocol work): a torn
//! `put` (only a prefix of the payload reaches the device before the
//! "crash"), a killed rename (the staged blob never becomes visible), or
//! failing deletes (a consolidation dies between committing its merged
//! fragment and removing the sources). **Read faults** (the integrity
//! work): N-transient-errors-then-succeed, per-read latency, and
//! deterministic seeded bit-flips in returned payloads — the chaos
//! primitives the retry/checksum/quarantine machinery is tested against.
//! **Write faults** (the write-path fault-domain work):
//! N-transient-errors-then-succeed across every mutating operation, a
//! persistent `ENOSPC`-style no-space mode, and per-write latency — the
//! primitives the write retry policy, backpressure, and health state
//! machine are tortured against.
//!
//! Every injected error carries a typed [`InjectedFault`] payload (not
//! just a formatted string), so tests match on `op`/`transient` via
//! [`injected_fault`] instead of scraping messages.
//!
//! The wrapper is shipped in the library (not `#[cfg(test)]`) so
//! integration tests and downstream chaos harnesses can reuse it.

use crate::backend::StorageBackend;
use crate::error::{Result, StorageError};
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// The machine-matchable payload of every error [`FailingBackend`]
/// injects. Reach it through [`injected_fault`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// Backend operation the fault fired in (`"put"`, `"get_range"`, …).
    pub op: &'static str,
    /// Blob name the operation targeted.
    pub name: String,
    /// Whether the fault models a transient condition (a flaky read that
    /// would succeed on retry) or a hard crash.
    pub transient: bool,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = if self.transient { "fault" } else { "crash" };
        write!(f, "injected {kind} during {} of {}", self.op, self.name)
    }
}

impl std::error::Error for InjectedFault {}

/// Extract the [`InjectedFault`] payload from an error, looking through
/// [`StorageError::RetriesExhausted`] wrapping. Returns `None` for
/// organic (non-injected) errors.
pub fn injected_fault(err: &StorageError) -> Option<&InjectedFault> {
    match err {
        StorageError::Io(e) => e.get_ref().and_then(|inner| inner.downcast_ref()),
        StorageError::RetriesExhausted { source, .. } => injected_fault(source),
        _ => None,
    }
}

/// A write crash: permanent, `ErrorKind::Other` — the engine must not
/// retry its way past a died process.
fn crash(op: &'static str, name: &str) -> StorageError {
    artsparse_metrics::charge(|io| io.fault_trips += 1);
    std::io::Error::other(InjectedFault {
        op,
        name: name.to_string(),
        transient: false,
    })
    .into()
}

/// A persistent no-space fault: `ErrorKind::StorageFull`, which
/// [`StorageError::is_transient`] classifies as permanent — retrying
/// cannot make room on a full device.
fn no_space(op: &'static str, name: &str) -> StorageError {
    artsparse_metrics::charge(|io| io.fault_trips += 1);
    std::io::Error::new(
        std::io::ErrorKind::StorageFull,
        InjectedFault {
            op,
            name: name.to_string(),
            transient: false,
        },
    )
    .into()
}

/// A transient read fault: `ErrorKind::Interrupted`, which
/// [`StorageError::is_transient`] classifies as retryable.
fn flake(op: &'static str, name: &str) -> StorageError {
    artsparse_metrics::charge(|io| io.fault_trips += 1);
    std::io::Error::new(
        std::io::ErrorKind::Interrupted,
        InjectedFault {
            op,
            name: name.to_string(),
            transient: true,
        },
    )
    .into()
}

/// Advance an xorshift64 state (zero-proofed).
fn xorshift64(state: u64) -> u64 {
    let mut x = if state == 0 {
        0x9E37_79B9_7F4A_7C15
    } else {
        state
    };
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

/// A [`StorageBackend`] wrapper that kills writes at a chosen byte or
/// operation and injects transient faults, latency, or bit-flips into
/// reads.
#[derive(Debug)]
pub struct FailingBackend<B> {
    inner: B,
    /// Remaining write-byte budget; `None` = unlimited.
    write_budget: Mutex<Option<u64>>,
    fail_renames: AtomicBool,
    fail_deletes: AtomicBool,
    /// How many upcoming read operations fail with a transient error
    /// before reads start succeeding again.
    read_faults_left: AtomicU64,
    /// Artificial per-read latency (slow-device simulation).
    read_latency_nanos: AtomicU64,
    /// Bit-flip corruption state; `None` = reads return clean bytes.
    corrupt_state: Mutex<Option<u64>>,
    /// How many upcoming write operations fail with a transient error
    /// before writes start succeeding again.
    write_faults_left: AtomicU64,
    /// When set, every write operation fails permanently with a
    /// `StorageFull` error (an `ENOSPC` device).
    out_of_space: AtomicBool,
    /// Artificial per-write latency (a saturated or throttled device).
    write_latency_nanos: AtomicU64,
}

impl<B: StorageBackend> FailingBackend<B> {
    /// Wrap a device with no failures armed.
    pub fn new(inner: B) -> Self {
        FailingBackend {
            inner,
            write_budget: Mutex::new(None),
            fail_renames: AtomicBool::new(false),
            fail_deletes: AtomicBool::new(false),
            read_faults_left: AtomicU64::new(0),
            read_latency_nanos: AtomicU64::new(0),
            corrupt_state: Mutex::new(None),
            write_faults_left: AtomicU64::new(0),
            out_of_space: AtomicBool::new(false),
            write_latency_nanos: AtomicU64::new(0),
        }
    }

    /// Unwrap the inner device.
    pub fn into_inner(self) -> B {
        self.inner
    }

    /// The inner device (for accounting assertions).
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Arm a torn write: after `budget` more payload bytes, a `put`
    /// writes only the prefix that fits and then errors — the on-device
    /// blob is torn, exactly as if the process died mid-write. An armed
    /// `put_atomic` honors its all-or-nothing contract: it writes nothing
    /// once the budget cannot cover the whole payload.
    pub fn fail_after_write_bytes(&self, budget: u64) {
        *self.write_budget.lock() = Some(budget);
    }

    /// Disarm every injected failure (write and read side).
    pub fn disarm(&self) {
        *self.write_budget.lock() = None;
        self.fail_renames.store(false, Ordering::SeqCst);
        self.fail_deletes.store(false, Ordering::SeqCst);
        self.read_faults_left.store(0, Ordering::SeqCst);
        self.read_latency_nanos.store(0, Ordering::SeqCst);
        *self.corrupt_state.lock() = None;
        self.write_faults_left.store(0, Ordering::SeqCst);
        self.out_of_space.store(false, Ordering::SeqCst);
        self.write_latency_nanos.store(0, Ordering::SeqCst);
    }

    /// Make every `rename` fail (a crash between staging and commit).
    pub fn fail_renames(&self, on: bool) {
        self.fail_renames.store(on, Ordering::SeqCst);
    }

    /// Make every `delete` fail without deleting (a crash between a
    /// consolidation's commit and its source deletions).
    pub fn fail_deletes(&self, on: bool) {
        self.fail_deletes.store(on, Ordering::SeqCst);
    }

    /// Arm `n` transient read faults: the next `n` read operations
    /// (`get`/`get_prefix`/`get_range`) fail with a retryable error,
    /// then reads succeed again — the N-errors-then-succeed shape retry
    /// policies are tested against.
    pub fn fail_next_reads(&self, n: u64) {
        self.read_faults_left.store(n, Ordering::SeqCst);
    }

    /// Transient read faults still armed (not yet consumed).
    pub fn read_faults_remaining(&self) -> u64 {
        self.read_faults_left.load(Ordering::SeqCst)
    }

    /// Add a fixed latency to every read operation (a slow or
    /// overloaded device). `Duration::ZERO` turns it off.
    pub fn set_read_latency(&self, latency: Duration) {
        self.read_latency_nanos
            .store(latency.as_nanos() as u64, Ordering::SeqCst);
    }

    /// Start flipping one deterministically chosen bit in every
    /// non-empty read result. The same seed and read sequence reproduce
    /// the same corruption — chaos runs replay exactly. The device
    /// contents are untouched; only returned bytes are corrupted (a
    /// bad cable, not bad media).
    pub fn corrupt_reads(&self, seed: u64) {
        *self.corrupt_state.lock() = Some(xorshift64(seed));
    }

    /// Stop corrupting read results.
    pub fn stop_corrupting(&self) {
        *self.corrupt_state.lock() = None;
    }

    /// Arm `n` transient write faults: the next `n` write operations
    /// (`put`/`put_atomic`/`put_exclusive`/`rename`/`delete`) fail with
    /// a retryable error and leave device state untouched, then writes
    /// succeed again — the N-errors-then-succeed shape the write-side
    /// retry policy is tested against.
    pub fn fail_next_writes(&self, n: u64) {
        self.write_faults_left.store(n, Ordering::SeqCst);
    }

    /// Transient write faults still armed (not yet consumed).
    pub fn write_faults_remaining(&self) -> u64 {
        self.write_faults_left.load(Ordering::SeqCst)
    }

    /// Simulate a full device: while set, every write operation fails
    /// permanently with a `StorageFull` (`ENOSPC`-style) error; reads
    /// are unaffected. Retrying cannot succeed until space is "freed"
    /// by turning this off.
    pub fn set_out_of_space(&self, on: bool) {
        self.out_of_space.store(on, Ordering::SeqCst);
    }

    /// Add a fixed latency to every write operation (a saturated or
    /// throttled device). `Duration::ZERO` turns it off.
    pub fn set_write_latency(&self, latency: Duration) {
        self.write_latency_nanos
            .store(latency.as_nanos() as u64, Ordering::SeqCst);
    }

    /// Consume one armed write fault or the no-space condition, if any;
    /// then apply write latency.
    fn write_gate(&self, op: &'static str, name: &str) -> Result<()> {
        if self.out_of_space.load(Ordering::SeqCst) {
            return Err(no_space(op, name));
        }
        let fire = self
            .write_faults_left
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |left| {
                left.checked_sub(1)
            })
            .is_ok();
        if fire {
            return Err(flake(op, name));
        }
        let nanos = self.write_latency_nanos.load(Ordering::SeqCst);
        if nanos > 0 {
            std::thread::sleep(Duration::from_nanos(nanos));
        }
        Ok(())
    }

    /// Consume one armed read fault, if any; then apply latency.
    fn read_gate(&self, op: &'static str, name: &str) -> Result<()> {
        let fire = self
            .read_faults_left
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |left| {
                left.checked_sub(1)
            })
            .is_ok();
        if fire {
            return Err(flake(op, name));
        }
        let nanos = self.read_latency_nanos.load(Ordering::SeqCst);
        if nanos > 0 {
            std::thread::sleep(Duration::from_nanos(nanos));
        }
        Ok(())
    }

    /// Flip one bit of `data` when corruption is armed.
    fn maybe_corrupt(&self, data: &mut [u8]) {
        if data.is_empty() {
            return;
        }
        let mut state = self.corrupt_state.lock();
        if let Some(s) = *state {
            let bit = (s % (data.len() as u64 * 8)) as usize;
            data[bit / 8] ^= 1 << (bit % 8);
            *state = Some(xorshift64(s));
            artsparse_metrics::charge(|io| io.fault_trips += 1);
        }
    }
}

impl<B: StorageBackend> StorageBackend for FailingBackend<B> {
    fn kind_name(&self) -> &'static str {
        self.inner.kind_name()
    }

    fn put(&self, name: &str, data: &[u8]) -> Result<()> {
        self.write_gate("put", name)?;
        match self.take_budget(data.len() as u64) {
            None => self.inner.put(name, data),
            Some(allowed) if allowed >= data.len() as u64 => self.inner.put(name, data),
            Some(allowed) => {
                // Torn write: the prefix lands, then the "process dies".
                self.inner.put(name, &data[..allowed as usize])?;
                Err(crash("put", name))
            }
        }
    }

    fn put_atomic(&self, name: &str, data: &[u8]) -> Result<()> {
        self.write_gate("put_atomic", name)?;
        match self.take_budget(data.len() as u64) {
            None => self.inner.put_atomic(name, data),
            Some(allowed) if allowed >= data.len() as u64 => self.inner.put_atomic(name, data),
            // All-or-nothing: a crash mid-`put_atomic` leaves no blob.
            Some(_) => Err(crash("put_atomic", name)),
        }
    }

    fn put_exclusive(&self, name: &str, data: &[u8]) -> Result<()> {
        self.write_gate("put_exclusive", name)?;
        match self.take_budget(data.len() as u64) {
            None => self.inner.put_exclusive(name, data),
            Some(allowed) if allowed >= data.len() as u64 => self.inner.put_exclusive(name, data),
            Some(_) => Err(crash("put_exclusive", name)),
        }
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        self.write_gate("rename", from)?;
        if self.fail_renames.load(Ordering::SeqCst) {
            return Err(crash("rename", from));
        }
        self.inner.rename(from, to)
    }

    fn delete(&self, name: &str) -> Result<()> {
        self.write_gate("delete", name)?;
        if self.fail_deletes.load(Ordering::SeqCst) {
            return Err(crash("delete", name));
        }
        self.inner.delete(name)
    }

    fn get(&self, name: &str) -> Result<Vec<u8>> {
        self.read_gate("get", name)?;
        let mut data = self.inner.get(name)?;
        self.maybe_corrupt(&mut data);
        Ok(data)
    }

    fn get_prefix(&self, name: &str, len: usize) -> Result<Vec<u8>> {
        self.read_gate("get_prefix", name)?;
        let mut data = self.inner.get_prefix(name, len)?;
        self.maybe_corrupt(&mut data);
        Ok(data)
    }

    fn get_range(&self, name: &str, offset: u64, len: usize) -> Result<Vec<u8>> {
        self.read_gate("get_range", name)?;
        let mut data = self.inner.get_range(name, offset, len)?;
        self.maybe_corrupt(&mut data);
        Ok(data)
    }

    fn list(&self) -> Result<Vec<String>> {
        self.inner.list()
    }

    fn size(&self, name: &str) -> Result<u64> {
        self.inner.size(name)
    }

    fn exists(&self, name: &str) -> bool {
        self.inner.exists(name)
    }
}

impl<B: StorageBackend> FailingBackend<B> {
    /// Charge `len` bytes against the armed budget. Returns how many of
    /// them may still be written (`None` = all of them).
    fn take_budget(&self, len: u64) -> Option<u64> {
        let mut budget = self.write_budget.lock();
        match *budget {
            None => None,
            Some(left) => {
                let allowed = left.min(len);
                *budget = Some(left - allowed);
                Some(allowed)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    #[test]
    fn passthrough_when_disarmed() {
        let b = FailingBackend::new(MemBackend::new());
        b.put("a", &[1, 2, 3]).unwrap();
        b.put_atomic("b", &[4]).unwrap();
        b.rename("b", "c").unwrap();
        assert_eq!(b.get("a").unwrap(), vec![1, 2, 3]);
        assert_eq!(b.get("c").unwrap(), vec![4]);
        b.delete("c").unwrap();
        assert_eq!(b.list().unwrap(), vec!["a"]);
    }

    #[test]
    fn torn_put_leaves_a_prefix() {
        let b = FailingBackend::new(MemBackend::new());
        b.fail_after_write_bytes(4);
        assert!(b.put("x", &[7; 10]).is_err());
        assert_eq!(b.inner().get("x").unwrap(), vec![7; 4]);
        // Budget is exhausted: the next write tears at zero bytes.
        assert!(b.put("y", &[7; 2]).is_err());
        assert_eq!(b.inner().get("y").unwrap(), Vec::<u8>::new());
        b.disarm();
        b.put("x", &[7; 10]).unwrap();
        assert_eq!(b.get("x").unwrap(), vec![7; 10]);
    }

    #[test]
    fn atomic_put_never_tears() {
        let b = FailingBackend::new(MemBackend::new());
        b.put_atomic("x", &[1, 2]).unwrap();
        b.fail_after_write_bytes(1);
        assert!(b.put_atomic("x", &[9; 8]).is_err());
        // The old contents survive untouched.
        assert_eq!(b.get("x").unwrap(), vec![1, 2]);
    }

    #[test]
    fn rename_and_delete_failures_leave_state_intact() {
        let b = FailingBackend::new(MemBackend::new());
        b.put("a", &[1]).unwrap();
        b.fail_renames(true);
        assert!(b.rename("a", "b").is_err());
        assert!(b.exists("a") && !b.exists("b"));
        b.fail_deletes(true);
        assert!(b.delete("a").is_err());
        assert!(b.exists("a"));
        b.disarm();
        b.rename("a", "b").unwrap();
        b.delete("b").unwrap();
    }

    #[test]
    fn injected_errors_carry_a_typed_payload() {
        let b = FailingBackend::new(MemBackend::new());
        b.fail_renames(true);
        let err = b.rename("a", "b").unwrap_err();
        let fault = injected_fault(&err).expect("typed payload");
        assert_eq!(fault.op, "rename");
        assert_eq!(fault.name, "a");
        assert!(!fault.transient);
        assert!(!err.is_transient());

        b.disarm();
        b.put("x", &[1]).unwrap();
        b.fail_next_reads(1);
        let err = b.get("x").unwrap_err();
        let fault = injected_fault(&err).expect("typed payload");
        assert_eq!(fault.op, "get");
        assert!(fault.transient);
        assert!(err.is_transient());

        // Organic errors carry no payload.
        let organic = StorageError::corrupt("f", "x");
        assert!(injected_fault(&organic).is_none());

        // The payload survives RetriesExhausted wrapping.
        b.fail_next_reads(1);
        let wrapped = StorageError::RetriesExhausted {
            attempts: 3,
            source: Box::new(b.get("x").unwrap_err()),
        };
        assert_eq!(injected_fault(&wrapped).expect("through wrapper").op, "get");
    }

    #[test]
    fn read_faults_fire_then_clear() {
        let b = FailingBackend::new(MemBackend::new());
        b.put("x", &[1, 2, 3]).unwrap();
        b.fail_next_reads(2);
        assert!(b.get("x").is_err());
        assert_eq!(b.read_faults_remaining(), 1);
        assert!(b.get_range("x", 0, 2).is_err());
        assert_eq!(b.read_faults_remaining(), 0);
        assert_eq!(b.get("x").unwrap(), vec![1, 2, 3]);
        assert_eq!(b.get_prefix("x", 2).unwrap(), vec![1, 2]);
    }

    #[test]
    fn corruption_flips_exactly_one_deterministic_bit() {
        let clean: Vec<u8> = (0..64).collect();
        let run = |seed: u64| {
            let b = FailingBackend::new(MemBackend::new());
            b.put("x", &clean).unwrap();
            b.corrupt_reads(seed);
            (b.get("x").unwrap(), b.get("x").unwrap())
        };
        let (first, second) = run(42);
        let diff = |got: &[u8]| -> u32 {
            got.iter()
                .zip(&clean)
                .map(|(a, b)| (a ^ b).count_ones())
                .sum()
        };
        assert_eq!(diff(&first), 1, "exactly one bit flipped");
        assert_eq!(diff(&second), 1);
        // The state advances, so successive reads corrupt differently
        // (for this seed), while the whole sequence replays exactly.
        let (again_first, again_second) = run(42);
        assert_eq!(first, again_first);
        assert_eq!(second, again_second);
        // Device contents stay pristine; stop_corrupting restores reads.
        let b = FailingBackend::new(MemBackend::new());
        b.put("x", &clean).unwrap();
        b.corrupt_reads(7);
        let _ = b.get("x").unwrap();
        b.stop_corrupting();
        assert_eq!(b.get("x").unwrap(), clean);
        // Empty blobs cannot be corrupted and must not panic.
        b.corrupt_reads(7);
        b.put("e", &[]).unwrap();
        assert_eq!(b.get("e").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn write_faults_fire_transiently_then_clear() {
        let b = FailingBackend::new(MemBackend::new());
        b.fail_next_writes(3);
        let err = b.put("x", &[1]).unwrap_err();
        assert!(err.is_transient(), "armed write faults are retryable");
        let fault = injected_fault(&err).expect("typed payload");
        assert_eq!(fault.op, "put");
        assert!(fault.transient);
        assert!(!b.exists("x"), "a faulted write leaves no blob");
        assert!(b.put_atomic("x", &[1]).is_err());
        assert_eq!(b.write_faults_remaining(), 1);
        assert!(b.rename("x", "y").is_err());
        assert_eq!(b.write_faults_remaining(), 0);
        // The budget is spent: writes succeed again.
        b.put("x", &[1, 2]).unwrap();
        b.rename("x", "y").unwrap();
        b.delete("y").unwrap();
        // Reads never consume write faults.
        b.put("z", &[9]).unwrap();
        b.fail_next_writes(1);
        assert_eq!(b.get("z").unwrap(), vec![9]);
        assert_eq!(b.write_faults_remaining(), 1);
        b.disarm();
        b.put("w", &[1]).unwrap();
    }

    #[test]
    fn out_of_space_is_persistent_and_permanent() {
        let b = FailingBackend::new(MemBackend::new());
        b.put("x", &[1]).unwrap();
        b.set_out_of_space(true);
        for _ in 0..3 {
            let err = b.put_atomic("y", &[2]).unwrap_err();
            assert!(!err.is_transient(), "ENOSPC never retries clean");
            assert!(!injected_fault(&err).unwrap().transient);
        }
        assert!(b.delete("x").is_err());
        // Reads keep working on a full device.
        assert_eq!(b.get("x").unwrap(), vec![1]);
        b.set_out_of_space(false);
        b.put("y", &[2]).unwrap();
    }

    #[test]
    fn write_latency_is_applied() {
        let b = FailingBackend::new(MemBackend::new());
        b.set_write_latency(Duration::from_millis(5));
        let t0 = std::time::Instant::now();
        b.put("x", &[1]).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(5));
        b.set_write_latency(Duration::ZERO);
        b.put("x", &[1]).unwrap();
    }

    #[test]
    fn read_latency_is_applied() {
        let b = FailingBackend::new(MemBackend::new());
        b.put("x", &[1]).unwrap();
        b.set_read_latency(Duration::from_millis(5));
        let t0 = std::time::Instant::now();
        b.get("x").unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(5));
        b.set_read_latency(Duration::ZERO);
        b.get("x").unwrap();
    }
}
