//! Failure injection for the commit protocol.
//!
//! [`FailingBackend`] wraps any device and simulates a process crash at a
//! chosen point in the write path: a torn `put` (only a prefix of the
//! payload reaches the device before the "crash"), a killed rename (the
//! staged blob never becomes visible), or failing deletes (a
//! consolidation dies between committing its merged fragment and removing
//! the sources). Tests drive the engine into each window, then reopen the
//! store and assert the recovery sweep restores the invariants.
//!
//! The wrapper is shipped in the library (not `#[cfg(test)]`) so
//! integration tests and downstream chaos harnesses can reuse it.

use crate::backend::StorageBackend;
use crate::error::Result;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};

fn injected(op: &str, name: &str) -> crate::error::StorageError {
    artsparse_metrics::charge(|io| io.fault_trips += 1);
    std::io::Error::new(
        std::io::ErrorKind::Interrupted,
        format!("injected crash during {op} of {name}"),
    )
    .into()
}

/// A [`StorageBackend`] wrapper that kills writes at a chosen byte or
/// operation. Reads always pass through unmodified.
#[derive(Debug)]
pub struct FailingBackend<B> {
    inner: B,
    /// Remaining write-byte budget; `None` = unlimited.
    write_budget: Mutex<Option<u64>>,
    fail_renames: AtomicBool,
    fail_deletes: AtomicBool,
}

impl<B: StorageBackend> FailingBackend<B> {
    /// Wrap a device with no failures armed.
    pub fn new(inner: B) -> Self {
        FailingBackend {
            inner,
            write_budget: Mutex::new(None),
            fail_renames: AtomicBool::new(false),
            fail_deletes: AtomicBool::new(false),
        }
    }

    /// Unwrap the inner device.
    pub fn into_inner(self) -> B {
        self.inner
    }

    /// The inner device (for accounting assertions).
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Arm a torn write: after `budget` more payload bytes, a `put`
    /// writes only the prefix that fits and then errors — the on-device
    /// blob is torn, exactly as if the process died mid-write. An armed
    /// `put_atomic` honors its all-or-nothing contract: it writes nothing
    /// once the budget cannot cover the whole payload.
    pub fn fail_after_write_bytes(&self, budget: u64) {
        *self.write_budget.lock() = Some(budget);
    }

    /// Disarm the write-byte budget.
    pub fn disarm(&self) {
        *self.write_budget.lock() = None;
        self.fail_renames.store(false, Ordering::SeqCst);
        self.fail_deletes.store(false, Ordering::SeqCst);
    }

    /// Make every `rename` fail (a crash between staging and commit).
    pub fn fail_renames(&self, on: bool) {
        self.fail_renames.store(on, Ordering::SeqCst);
    }

    /// Make every `delete` fail without deleting (a crash between a
    /// consolidation's commit and its source deletions).
    pub fn fail_deletes(&self, on: bool) {
        self.fail_deletes.store(on, Ordering::SeqCst);
    }

    /// Charge `len` bytes against the armed budget. Returns how many of
    /// them may still be written (`None` = all of them).
    fn take_budget(&self, len: u64) -> Option<u64> {
        let mut budget = self.write_budget.lock();
        match *budget {
            None => None,
            Some(left) => {
                let allowed = left.min(len);
                *budget = Some(left - allowed);
                Some(allowed)
            }
        }
    }
}

impl<B: StorageBackend> StorageBackend for FailingBackend<B> {
    fn kind_name(&self) -> &'static str {
        self.inner.kind_name()
    }

    fn put(&self, name: &str, data: &[u8]) -> Result<()> {
        match self.take_budget(data.len() as u64) {
            None => self.inner.put(name, data),
            Some(allowed) if allowed >= data.len() as u64 => self.inner.put(name, data),
            Some(allowed) => {
                // Torn write: the prefix lands, then the "process dies".
                self.inner.put(name, &data[..allowed as usize])?;
                Err(injected("put", name))
            }
        }
    }

    fn put_atomic(&self, name: &str, data: &[u8]) -> Result<()> {
        match self.take_budget(data.len() as u64) {
            None => self.inner.put_atomic(name, data),
            Some(allowed) if allowed >= data.len() as u64 => self.inner.put_atomic(name, data),
            // All-or-nothing: a crash mid-`put_atomic` leaves no blob.
            Some(_) => Err(injected("put_atomic", name)),
        }
    }

    fn put_exclusive(&self, name: &str, data: &[u8]) -> Result<()> {
        match self.take_budget(data.len() as u64) {
            None => self.inner.put_exclusive(name, data),
            Some(allowed) if allowed >= data.len() as u64 => self.inner.put_exclusive(name, data),
            Some(_) => Err(injected("put_exclusive", name)),
        }
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        if self.fail_renames.load(Ordering::SeqCst) {
            return Err(injected("rename", from));
        }
        self.inner.rename(from, to)
    }

    fn delete(&self, name: &str) -> Result<()> {
        if self.fail_deletes.load(Ordering::SeqCst) {
            return Err(injected("delete", name));
        }
        self.inner.delete(name)
    }

    fn get(&self, name: &str) -> Result<Vec<u8>> {
        self.inner.get(name)
    }

    fn get_prefix(&self, name: &str, len: usize) -> Result<Vec<u8>> {
        self.inner.get_prefix(name, len)
    }

    fn get_range(&self, name: &str, offset: u64, len: usize) -> Result<Vec<u8>> {
        self.inner.get_range(name, offset, len)
    }

    fn list(&self) -> Result<Vec<String>> {
        self.inner.list()
    }

    fn size(&self, name: &str) -> Result<u64> {
        self.inner.size(name)
    }

    fn exists(&self, name: &str) -> bool {
        self.inner.exists(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    #[test]
    fn passthrough_when_disarmed() {
        let b = FailingBackend::new(MemBackend::new());
        b.put("a", &[1, 2, 3]).unwrap();
        b.put_atomic("b", &[4]).unwrap();
        b.rename("b", "c").unwrap();
        assert_eq!(b.get("a").unwrap(), vec![1, 2, 3]);
        assert_eq!(b.get("c").unwrap(), vec![4]);
        b.delete("c").unwrap();
        assert_eq!(b.list().unwrap(), vec!["a"]);
    }

    #[test]
    fn torn_put_leaves_a_prefix() {
        let b = FailingBackend::new(MemBackend::new());
        b.fail_after_write_bytes(4);
        assert!(b.put("x", &[7; 10]).is_err());
        assert_eq!(b.inner().get("x").unwrap(), vec![7; 4]);
        // Budget is exhausted: the next write tears at zero bytes.
        assert!(b.put("y", &[7; 2]).is_err());
        assert_eq!(b.inner().get("y").unwrap(), Vec::<u8>::new());
        b.disarm();
        b.put("x", &[7; 10]).unwrap();
        assert_eq!(b.get("x").unwrap(), vec![7; 10]);
    }

    #[test]
    fn atomic_put_never_tears() {
        let b = FailingBackend::new(MemBackend::new());
        b.put_atomic("x", &[1, 2]).unwrap();
        b.fail_after_write_bytes(1);
        assert!(b.put_atomic("x", &[9; 8]).is_err());
        // The old contents survive untouched.
        assert_eq!(b.get("x").unwrap(), vec![1, 2]);
    }

    #[test]
    fn rename_and_delete_failures_leave_state_intact() {
        let b = FailingBackend::new(MemBackend::new());
        b.put("a", &[1]).unwrap();
        b.fail_renames(true);
        assert!(b.rename("a", "b").is_err());
        assert!(b.exists("a") && !b.exists("b"));
        b.fail_deletes(true);
        assert!(b.delete("a").is_err());
        assert!(b.exists("a"));
        b.disarm();
        b.rename("a", "b").unwrap();
        b.delete("b").unwrap();
    }
}
