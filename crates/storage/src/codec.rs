//! General-purpose compression codecs for fragment payloads.
//!
//! §II of the paper: *"Common practice in the community, as observed in
//! systems like TileDB and HDF5, is to choose a basic sparse organization
//! first and then apply compression algorithms to further reduce data
//! size"* — the organizations are orthogonal to compression. This module
//! supplies that second stage: self-contained codecs a fragment can apply
//! to its index and value payloads independently.
//!
//! * [`Codec::Rle`] — byte-level run-length encoding (dense value payloads
//!   with repeated bytes, zero runs);
//! * [`Codec::DeltaVarint`] — interprets the payload as little-endian
//!   `u64` words and stores zigzag deltas as LEB128 varints. Sorted or
//!   locally increasing address streams (LINEAR over TSP, sorted COO,
//!   CSR pointers) shrink dramatically.
//!
//! All codecs are lossless for arbitrary byte payloads (DeltaVarint pads
//! to a word boundary and records the true length).

use crate::error::{Result, StorageError};

/// A compression codec choice.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum Codec {
    /// No compression.
    #[default]
    None,
    /// Byte-level run-length encoding.
    Rle,
    /// Zigzag-delta LEB128 varints over `u64` words.
    DeltaVarint,
}

impl Codec {
    /// Stable 3-bit wire id (stored in fragment flags).
    pub fn id(self) -> u16 {
        match self {
            Codec::None => 0,
            Codec::Rle => 1,
            Codec::DeltaVarint => 2,
        }
    }

    /// Inverse of [`Codec::id`].
    pub fn from_id(id: u16) -> Option<Codec> {
        match id {
            0 => Some(Codec::None),
            1 => Some(Codec::Rle),
            2 => Some(Codec::DeltaVarint),
            _ => None,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Codec::None => "none",
            Codec::Rle => "rle",
            Codec::DeltaVarint => "delta-varint",
        }
    }

    /// Parse a display name.
    pub fn parse(s: &str) -> Option<Codec> {
        match s.to_ascii_lowercase().as_str() {
            "none" | "raw" => Some(Codec::None),
            "rle" => Some(Codec::Rle),
            "delta-varint" | "varint" | "delta" => Some(Codec::DeltaVarint),
            _ => None,
        }
    }

    /// Compress `data`. The output is self-contained given the codec and
    /// the original length.
    pub fn compress(self, data: &[u8]) -> Vec<u8> {
        match self {
            Codec::None => data.to_vec(),
            Codec::Rle => rle_compress(data),
            Codec::DeltaVarint => delta_varint_compress(data),
        }
    }

    /// Decompress to exactly `raw_len` bytes.
    pub fn decompress(self, data: &[u8], raw_len: usize) -> Result<Vec<u8>> {
        let out = match self {
            Codec::None => data.to_vec(),
            Codec::Rle => rle_decompress(data, raw_len)?,
            Codec::DeltaVarint => delta_varint_decompress(data, raw_len)?,
        };
        if out.len() != raw_len {
            return Err(StorageError::corrupt(
                "payload",
                format!("decompressed to {} bytes, expected {raw_len}", out.len()),
            ));
        }
        Ok(out)
    }
}

// --- RLE -------------------------------------------------------------------
//
// Stream of (count: u8 ≥ 1, byte) pairs.

fn rle_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 8);
    let mut i = 0;
    while i < data.len() {
        let b = data[i];
        let mut run = 1usize;
        while run < 255 && i + run < data.len() && data[i + run] == b {
            run += 1;
        }
        out.push(run as u8);
        out.push(b);
        i += run;
    }
    out
}

fn rle_decompress(data: &[u8], raw_len: usize) -> Result<Vec<u8>> {
    if !data.len().is_multiple_of(2) {
        return Err(StorageError::corrupt("rle", "odd stream length"));
    }
    let mut out = Vec::with_capacity(raw_len);
    for pair in data.chunks_exact(2) {
        let (count, byte) = (pair[0] as usize, pair[1]);
        if count == 0 {
            return Err(StorageError::corrupt("rle", "zero-length run"));
        }
        if out.len() + count > raw_len {
            return Err(StorageError::corrupt("rle", "runs exceed raw length"));
        }
        out.resize(out.len() + count, byte);
    }
    Ok(out)
}

// --- zigzag delta varint ---------------------------------------------------

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append a LEB128 varint.
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Read a LEB128 varint; returns `(value, bytes_consumed)`.
fn get_varint(data: &[u8]) -> Result<(u64, usize)> {
    let mut v = 0u64;
    let mut shift = 0u32;
    for (i, &byte) in data.iter().enumerate() {
        if shift >= 64 {
            return Err(StorageError::corrupt("varint", "overlong encoding"));
        }
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok((v, i + 1));
        }
        shift += 7;
    }
    Err(StorageError::corrupt("varint", "truncated varint"))
}

fn delta_varint_compress(data: &[u8]) -> Vec<u8> {
    // Pad to a word boundary; the true length restores it on decompress.
    let mut padded = data.to_vec();
    while !padded.len().is_multiple_of(8) {
        padded.push(0);
    }
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    let mut prev = 0i64;
    for word in padded.chunks_exact(8) {
        let v = u64::from_le_bytes(word.try_into().expect("chunk of 8")) as i64;
        put_varint(&mut out, zigzag(v.wrapping_sub(prev)));
        prev = v;
    }
    out
}

fn delta_varint_decompress(data: &[u8], raw_len: usize) -> Result<Vec<u8>> {
    let padded_len = raw_len.div_ceil(8) * 8;
    let mut out = Vec::with_capacity(padded_len);
    let mut prev = 0i64;
    let mut pos = 0usize;
    while out.len() < padded_len {
        let (z, used) = get_varint(&data[pos..])?;
        pos += used;
        let v = prev.wrapping_add(unzigzag(z));
        out.extend_from_slice(&(v as u64).to_le_bytes());
        prev = v;
    }
    if pos != data.len() {
        return Err(StorageError::corrupt("varint", "trailing compressed bytes"));
    }
    out.truncate(raw_len);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(codec: Codec, data: &[u8]) {
        let c = codec.compress(data);
        let d = codec.decompress(&c, data.len()).unwrap();
        assert_eq!(d, data, "{codec:?} on {} bytes", data.len());
    }

    #[test]
    fn all_codecs_roundtrip_varied_payloads() {
        let payloads: Vec<Vec<u8>> = vec![
            vec![],
            vec![0u8; 1000],
            (0..=255u8).collect(),
            b"abcabcabc".to_vec(),
            vec![7u8; 3], // non-word-aligned
            (0..999u16)
                .flat_map(|x| (x as u64 * 3).to_le_bytes())
                .collect(),
        ];
        for codec in [Codec::None, Codec::Rle, Codec::DeltaVarint] {
            for p in &payloads {
                roundtrip(codec, p);
            }
        }
    }

    #[test]
    fn rle_shrinks_runs() {
        let data = vec![0u8; 4096];
        let c = Codec::Rle.compress(&data);
        assert!(c.len() < 64, "{} bytes", c.len());
    }

    #[test]
    fn delta_varint_shrinks_sorted_addresses() {
        // A sorted LINEAR index stream: ascending addresses, small gaps —
        // the TSP case. Each 8-byte word should shrink to ~1 byte.
        let words: Vec<u8> = (0..4096u64)
            .map(|k| k * 9 + 1_000_000)
            .flat_map(|v| v.to_le_bytes())
            .collect();
        let c = Codec::DeltaVarint.compress(&words);
        assert!(
            c.len() < words.len() / 4,
            "{} vs {} bytes",
            c.len(),
            words.len()
        );
        roundtrip(Codec::DeltaVarint, &words);
    }

    #[test]
    fn delta_varint_handles_descending_and_random() {
        let words: Vec<u8> = [u64::MAX, 0, 42, u64::MAX / 2, 7, 7, 7]
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        roundtrip(Codec::DeltaVarint, &words);
    }

    #[test]
    fn corrupted_streams_error_cleanly() {
        assert!(Codec::Rle.decompress(&[1], 1).is_err()); // odd length
        assert!(Codec::Rle.decompress(&[0, 5], 1).is_err()); // zero run
        assert!(Codec::Rle.decompress(&[200, 5], 10).is_err()); // too long
        assert!(Codec::DeltaVarint.decompress(&[0x80], 8).is_err()); // truncated
        assert!(Codec::DeltaVarint.decompress(&[0x80; 12], 8).is_err()); // overlong
                                                                         // Trailing bytes after the last word.
        let mut ok = Codec::DeltaVarint.compress(&1u64.to_le_bytes());
        ok.push(0);
        assert!(Codec::DeltaVarint.decompress(&ok, 8).is_err());
        // Wrong raw_len surfaces as error, not truncation.
        let c = Codec::None.compress(&[1, 2, 3]);
        assert!(Codec::None.decompress(&c, 2).is_err());
    }

    #[test]
    fn ids_roundtrip() {
        for codec in [Codec::None, Codec::Rle, Codec::DeltaVarint] {
            assert_eq!(Codec::from_id(codec.id()), Some(codec));
            assert_eq!(Codec::parse(codec.name()), Some(codec));
        }
        assert_eq!(Codec::from_id(7), None);
    }

    #[test]
    fn zigzag_is_bijective_on_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 123456, -987654] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn varint_boundaries() {
        let mut buf = Vec::new();
        for v in [0u64, 127, 128, 16383, 16384, u64::MAX] {
            buf.clear();
            put_varint(&mut buf, v);
            let (got, used) = get_varint(&buf).unwrap();
            assert_eq!(got, v);
            assert_eq!(used, buf.len());
        }
    }
}
