//! Continuous metrics exporter: the background thread that turns the
//! in-memory observability plane into files other processes can tail.
//!
//! Each tick the [`MetricsExporter`]:
//!
//! 1. asks the engine to [`observe`](crate::engine::StorageEngine::observe)
//!    — refreshing every point-in-time gauge (buffer occupancy, WAL
//!    backlog, fragment tiers, cache, scheduler health, read
//!    amplification);
//! 2. takes one registry snapshot (advancing the delta baseline) and
//!    publishes it twice: as Prometheus exposition text at
//!    `<dir>/metrics.prom` — written to a temp file and atomically
//!    renamed into place, so a scraper or the harness `watch` dashboard
//!    never reads a torn document — and as one JSONL line appended to
//!    `<dir>/metrics.jsonl` (the durable time series);
//! 3. drains the journal's new events — each exactly once, via the
//!    journal's cursor — appending them to `<dir>/journal.jsonl`.
//!
//! Like [`IngestScheduler`](crate::scheduler::IngestScheduler), the
//! exporter owns one thread, parks between ticks so shutdown interrupts
//! a long interval immediately, runs a final tick on shutdown (a
//! short-lived process still publishes its last state), and stops
//! cleanly on drop. Export failures (a full disk, a vanished directory)
//! are counted and retried next tick — observability must never take
//! the store down.

use crate::backend::StorageBackend;
use crate::engine::StorageEngine;
use crate::error::{Result, StorageError};
use artsparse_metrics::exposition;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Exposition file the exporter atomically republishes each tick.
pub const METRICS_PROM: &str = "metrics.prom";
/// JSONL file of registry snapshots, one per tick.
pub const METRICS_JSONL: &str = "metrics.jsonl";
/// JSONL file of journal events, each appended exactly once.
pub const JOURNAL_JSONL: &str = "journal.jsonl";

/// Counters describing what the exporter has done so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExporterStats {
    /// Ticks that published successfully.
    pub ticks: u64,
    /// Ticks that failed to write (retried next tick).
    pub errors: u64,
}

#[derive(Default)]
struct Shared {
    stop: AtomicBool,
    ticks: AtomicU64,
    errors: AtomicU64,
}

/// Handle to the background exporter thread. Dropping it shuts the
/// thread down cleanly (one final tick, then joined).
pub struct MetricsExporter {
    shared: Arc<Shared>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsExporter {
    /// Spawn the exporter over a shared engine, publishing into `dir`
    /// (created if missing) every
    /// [`ObservabilityConfig::export_interval_ms`](crate::config::ObservabilityConfig::export_interval_ms).
    ///
    /// Fails if the engine was opened without `config.observability` —
    /// there is no plane to export — or if `dir` cannot be created.
    pub fn spawn<B>(
        engine: Arc<StorageEngine<B>>,
        dir: impl Into<PathBuf>,
    ) -> Result<MetricsExporter>
    where
        B: StorageBackend + Send + Sync + 'static,
    {
        let dir = dir.into();
        if engine.observability().is_none() {
            return Err(StorageError::Mismatch {
                reason: "metrics exporter needs an engine opened with \
                         EngineConfig::observability set"
                    .to_string(),
            });
        }
        std::fs::create_dir_all(&dir)?;
        let interval = engine
            .config()
            .observability
            .as_ref()
            .map(|oc| oc.export_interval_ms.max(1))
            .unwrap_or(500);
        let shared = Arc::new(Shared::default());
        let worker = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("artsparse-metrics-exporter".into())
            .spawn(move || exporter_loop(&engine, &dir, Duration::from_millis(interval), &worker))
            .expect("spawning the exporter thread");
        Ok(MetricsExporter {
            shared,
            handle: Some(handle),
        })
    }

    /// What the exporter has done so far.
    pub fn stats(&self) -> ExporterStats {
        ExporterStats {
            ticks: self.shared.ticks.load(Ordering::Relaxed),
            errors: self.shared.errors.load(Ordering::Relaxed),
        }
    }

    /// Stop the exporter: the thread runs one final tick (publishing the
    /// closing state), then exits and is joined. Idempotent; also runs
    /// on drop.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            handle.thread().unpark();
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsExporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn exporter_loop<B: StorageBackend + Send + Sync>(
    engine: &StorageEngine<B>,
    dir: &Path,
    interval: Duration,
    shared: &Shared,
) {
    loop {
        let stopping = shared.stop.load(Ordering::SeqCst);
        match export_tick(engine, dir) {
            Ok(()) => {
                shared.ticks.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                shared.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        if stopping {
            return;
        }
        std::thread::park_timeout(interval);
    }
}

/// One export pass: refresh gauges, snapshot, publish, drain.
fn export_tick<B: StorageBackend + Send + Sync>(
    engine: &StorageEngine<B>,
    dir: &std::path::Path,
) -> std::io::Result<()> {
    let plane = engine
        .observability()
        .expect("spawn() rejected engines without a plane");
    engine.observe();
    let snapshot = plane.registry().snapshot();

    // Atomic publish: scrapers see the old document or the new one,
    // never a torn write.
    let prom = exposition::render(&snapshot);
    let tmp = dir.join(format!("{METRICS_PROM}.tmp"));
    std::fs::write(&tmp, prom)?;
    std::fs::rename(&tmp, dir.join(METRICS_PROM))?;

    let mut metrics = OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join(METRICS_JSONL))?;
    let line =
        serde_json::to_string(&snapshot).map_err(|e| std::io::Error::other(e.to_string()))?;
    writeln!(metrics, "{line}")?;

    let events = plane.journal().drain_new();
    if !events.is_empty() {
        let mut journal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(JOURNAL_JSONL))?;
        for event in &events {
            let line =
                serde_json::to_string(event).map_err(|e| std::io::Error::other(e.to_string()))?;
            writeln!(journal, "{line}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::config::{EngineConfig, ObservabilityConfig};
    use artsparse_core::FormatKind;
    use artsparse_tensor::{CoordBuffer, Shape};

    fn observed_engine() -> Arc<StorageEngine<MemBackend>> {
        Arc::new(
            StorageEngine::open_with(
                MemBackend::new(),
                FormatKind::Coo,
                Shape::new(vec![16, 16]).unwrap(),
                8,
                EngineConfig::default().with_observability(ObservabilityConfig {
                    export_interval_ms: 1,
                    slow_span_ms: 0,
                    ..Default::default()
                }),
            )
            .unwrap(),
        )
    }

    #[test]
    fn exporter_requires_the_plane() {
        let plain = Arc::new(
            StorageEngine::open(
                MemBackend::new(),
                FormatKind::Coo,
                Shape::new(vec![16, 16]).unwrap(),
                8,
            )
            .unwrap(),
        );
        let dir = tempfile::tempdir().unwrap();
        assert!(MetricsExporter::spawn(plain, dir.path()).is_err());
    }

    #[test]
    fn exporter_publishes_parseable_exposition_and_journal_lines() {
        let engine = observed_engine();
        let dir = tempfile::tempdir().unwrap();
        let c = CoordBuffer::from_points(2, &[[1u64, 2u64], [3, 4]]).unwrap();
        engine.write_points::<f64>(&c, &[1.0, 2.0]).unwrap();
        engine.read_values::<f64>(&c).unwrap();

        let mut exporter = MetricsExporter::spawn(Arc::clone(&engine), dir.path()).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while exporter.stats().ticks < 2 {
            assert!(
                std::time::Instant::now() < deadline,
                "exporter never ticked"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        exporter.shutdown();
        exporter.shutdown(); // idempotent
        assert_eq!(exporter.stats().errors, 0);

        // The exposition file parses under the strict grammar and holds
        // live readings.
        let prom = std::fs::read_to_string(dir.path().join(METRICS_PROM)).unwrap();
        let doc = exposition::parse(&prom).expect("published exposition must parse");
        assert_eq!(doc.value("artsparse_fragments"), Some(1.0));
        assert!(doc.value("artsparse_bytes_written_total").unwrap() > 0.0);
        assert!(
            doc.value("artsparse_read_amplification").unwrap() >= 1.0,
            "a cold read fetches at least what it returns"
        );

        // The snapshot series has one JSON document per tick, with
        // monotonically increasing sequence numbers.
        let series = std::fs::read_to_string(dir.path().join(METRICS_JSONL)).unwrap();
        let mut last_seq = 0u64;
        for line in series.lines() {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            let seq = v["seq"].as_u64().unwrap();
            assert!(seq > last_seq, "snapshot seq must increase");
            last_seq = seq;
            assert!(v["samples"].as_array().unwrap().len() >= 10);
        }
        assert!(last_seq >= 2);
    }

    #[test]
    fn journal_events_are_exported_exactly_once() {
        let engine = observed_engine();
        let dir = tempfile::tempdir().unwrap();
        let plane = Arc::clone(engine.observability().unwrap());
        plane.event(
            artsparse_metrics::Severity::Warn,
            "slow_span",
            "synthetic event".to_string(),
            7,
        );
        let mut exporter = MetricsExporter::spawn(Arc::clone(&engine), dir.path()).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while exporter.stats().ticks < 3 {
            assert!(
                std::time::Instant::now() < deadline,
                "exporter never ticked"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        exporter.shutdown();
        let journal = std::fs::read_to_string(dir.path().join(JOURNAL_JSONL)).unwrap();
        let lines: Vec<&str> = journal.lines().collect();
        assert_eq!(lines.len(), 1, "drained exactly once across many ticks");
        let v: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(v["code"].as_str(), Some("slow_span"));
        assert_eq!(v["trace_id"].as_u64(), Some(7));
    }
}
