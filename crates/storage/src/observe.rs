//! Telemetry instrumentation for storage devices.
//!
//! [`RecordingBackend`] wraps any [`StorageBackend`] and, when its
//! recorder is enabled, times every device operation and charges the
//! moved bytes to the innermost open span on the calling thread (see
//! `artsparse_metrics::span`). The engine stores its device inside this
//! wrapper so every existing `self.backend.…` call site is instrumented
//! without per-call-site changes. With the default
//! [`NoopRecorder`](artsparse_metrics::NoopRecorder) the wrapper is a
//! cached-bool check plus a direct delegate — effectively free.

use crate::backend::StorageBackend;
use crate::error::Result;
use artsparse_metrics::{charge, Recorder};
use std::sync::Arc;
use std::time::Instant;

/// A [`StorageBackend`] decorator that reports per-operation timing and
/// byte counts to a [`Recorder`].
///
/// Byte accounting rules:
/// * reads (`get`, `get_prefix`, `get_range`) charge `requests`,
///   `bytes_requested` (the window asked for; for `get` the blob length
///   actually returned) and, on success, `bytes_fetched` (bytes
///   returned);
/// * writes (`put`, `put_atomic`, `put_exclusive`) charge `requests` and,
///   on success, `bytes_written`;
/// * `rename`, `delete`, and `list` are timed with zero bytes;
/// * `size` and `exists` are metadata peeks and are not recorded.
pub struct RecordingBackend<B> {
    inner: B,
    recorder: Arc<dyn Recorder>,
    enabled: bool,
}

impl<B: StorageBackend> RecordingBackend<B> {
    /// Wrap `inner`, reporting to `recorder`.
    pub fn new(inner: B, recorder: Arc<dyn Recorder>) -> Self {
        let enabled = recorder.enabled();
        RecordingBackend {
            inner,
            recorder,
            enabled,
        }
    }

    /// The wrapped device.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Unwrap, discarding the recorder.
    pub fn into_inner(self) -> B {
        self.inner
    }

    /// Swap the recorder (used by `StorageEngine::with_recorder`).
    pub fn set_recorder(&mut self, recorder: Arc<dyn Recorder>) {
        self.enabled = recorder.enabled();
        self.recorder = recorder;
    }

    #[inline]
    fn op_start(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    #[inline]
    fn op_end(&self, start: Option<Instant>, op: &'static str, bytes: u64) {
        if let Some(start) = start {
            let dur_ns = start.elapsed().as_nanos() as u64;
            self.recorder
                .record_backend_op(self.inner.kind_name(), op, dur_ns, bytes);
        }
    }

    #[inline]
    fn record_write(&self, start: Option<Instant>, op: &'static str, len: usize, ok: bool) {
        if start.is_some() {
            let bytes = if ok { len as u64 } else { 0 };
            charge(|io| {
                io.requests += 1;
                io.bytes_written = io.bytes_written.saturating_add(bytes);
            });
            self.op_end(start, op, bytes);
        }
    }

    #[inline]
    fn record_read(
        &self,
        start: Option<Instant>,
        op: &'static str,
        requested: u64,
        fetched: u64,
        ok: bool,
    ) {
        if start.is_some() {
            let fetched = if ok { fetched } else { 0 };
            charge(|io| {
                io.requests += 1;
                io.bytes_requested = io.bytes_requested.saturating_add(requested);
                io.bytes_fetched = io.bytes_fetched.saturating_add(fetched);
            });
            self.op_end(start, op, fetched);
        }
    }
}

impl<B: StorageBackend> StorageBackend for RecordingBackend<B> {
    fn kind_name(&self) -> &'static str {
        self.inner.kind_name()
    }

    fn put(&self, name: &str, data: &[u8]) -> Result<()> {
        let start = self.op_start();
        let r = self.inner.put(name, data);
        self.record_write(start, "put", data.len(), r.is_ok());
        r
    }

    fn put_atomic(&self, name: &str, data: &[u8]) -> Result<()> {
        let start = self.op_start();
        let r = self.inner.put_atomic(name, data);
        self.record_write(start, "put_atomic", data.len(), r.is_ok());
        r
    }

    fn put_exclusive(&self, name: &str, data: &[u8]) -> Result<()> {
        let start = self.op_start();
        let r = self.inner.put_exclusive(name, data);
        self.record_write(start, "put_exclusive", data.len(), r.is_ok());
        r
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        let start = self.op_start();
        let r = self.inner.rename(from, to);
        self.op_end(start, "rename", 0);
        r
    }

    fn get(&self, name: &str) -> Result<Vec<u8>> {
        let start = self.op_start();
        let r = self.inner.get(name);
        let got = r.as_ref().map(|d| d.len() as u64).unwrap_or(0);
        self.record_read(start, "get", got, got, r.is_ok());
        r
    }

    fn get_prefix(&self, name: &str, len: usize) -> Result<Vec<u8>> {
        let start = self.op_start();
        let r = self.inner.get_prefix(name, len);
        let got = r.as_ref().map(|d| d.len() as u64).unwrap_or(0);
        self.record_read(start, "get_prefix", len as u64, got, r.is_ok());
        r
    }

    fn get_range(&self, name: &str, offset: u64, len: usize) -> Result<Vec<u8>> {
        let start = self.op_start();
        let r = self.inner.get_range(name, offset, len);
        let got = r.as_ref().map(|d| d.len() as u64).unwrap_or(0);
        self.record_read(start, "get_range", len as u64, got, r.is_ok());
        r
    }

    fn list(&self) -> Result<Vec<String>> {
        let start = self.op_start();
        let r = self.inner.list();
        self.op_end(start, "list", 0);
        r
    }

    fn size(&self, name: &str) -> Result<u64> {
        self.inner.size(name)
    }

    fn delete(&self, name: &str) -> Result<()> {
        let start = self.op_start();
        let r = self.inner.delete(name);
        self.op_end(start, "delete", 0);
        r
    }

    fn exists(&self, name: &str) -> bool {
        self.inner.exists(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use artsparse_metrics::{NoopRecorder, Span, SpanKind, TelemetryRecorder};

    #[test]
    fn disabled_recorder_records_nothing_and_delegates() {
        let b = RecordingBackend::new(MemBackend::new(), Arc::new(NoopRecorder));
        b.put("a", &[1, 2, 3]).unwrap();
        assert_eq!(b.get("a").unwrap(), vec![1, 2, 3]);
        assert_eq!(b.kind_name(), "mem");
        assert!(b.exists("a"));
    }

    #[test]
    fn enabled_recorder_times_ops_and_charges_open_span() {
        let t = Arc::new(TelemetryRecorder::new());
        let r: Arc<dyn Recorder> = t.clone();
        let b = RecordingBackend::new(MemBackend::new(), r.clone());
        {
            let _s = Span::enter(&r, SpanKind::Write);
            b.put("a", &[0u8; 100]).unwrap();
        }
        {
            let _s = Span::enter(&r, SpanKind::ReadFetch);
            assert_eq!(b.get_range("a", 10, 20).unwrap().len(), 20);
            assert_eq!(b.get("a").unwrap().len(), 100);
        }
        let rep = t.report();
        let w = rep.span(SpanKind::Write).unwrap();
        assert_eq!(w.io.bytes_written, 100);
        assert_eq!(w.io.requests, 1);
        let f = rep.span(SpanKind::ReadFetch).unwrap();
        assert_eq!(f.io.bytes_fetched, 120);
        assert_eq!(f.io.bytes_requested, 120);
        assert_eq!(f.io.requests, 2);
        assert_eq!(rep.backend_op("mem", "put").unwrap().bytes, 100);
        assert_eq!(rep.backend_op("mem", "get_range").unwrap().bytes, 20);
        assert_eq!(rep.backend_op("mem", "get").unwrap().bytes, 100);
    }

    #[test]
    fn failed_reads_charge_request_but_no_bytes() {
        let t = Arc::new(TelemetryRecorder::new());
        let r: Arc<dyn Recorder> = t.clone();
        let b = RecordingBackend::new(MemBackend::new(), r.clone());
        {
            let _s = Span::enter(&r, SpanKind::ReadFetch);
            assert!(b.get("missing").is_err());
        }
        let rep = t.report();
        let f = rep.span(SpanKind::ReadFetch).unwrap();
        assert_eq!(f.io.requests, 1);
        assert_eq!(f.io.bytes_fetched, 0);
    }
}
