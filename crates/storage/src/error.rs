//! Errors of the fragment storage engine.

use artsparse_core::FormatError;
use artsparse_tensor::TensorError;
use std::fmt;

/// Which checksummed region of a fragment a verification failure names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FragmentSection {
    /// The fixed header (magic through the checksum fields).
    Header,
    /// The stored (possibly compressed) index payload.
    Index,
    /// The stored (possibly compressed) value payload.
    Value,
}

impl FragmentSection {
    /// Stable lowercase name (used in messages and scrub reports).
    pub fn name(self) -> &'static str {
        match self {
            FragmentSection::Header => "header",
            FragmentSection::Index => "index",
            FragmentSection::Value => "value",
        }
    }
}

impl fmt::Display for FragmentSection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Errors produced by backends, fragments, and the engine.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// An organization build/read/decode failure.
    Format(FormatError),
    /// A coordinate/shape failure.
    Tensor(TensorError),
    /// Structural inconsistency in a fragment file.
    CorruptFragment {
        /// Which fragment.
        name: String,
        /// What was wrong.
        reason: String,
    },
    /// A fragment section's bytes no longer match the CRC32C stamped in
    /// its header — bit rot, a torn sector, or a device returning garbage.
    ChecksumMismatch {
        /// Which fragment.
        name: String,
        /// Which section failed verification.
        section: FragmentSection,
        /// The checksum the header promised.
        expected: u32,
        /// The checksum the fetched bytes actually have.
        found: u32,
    },
    /// A transient fault persisted through every configured retry. The
    /// final attempt's error is preserved as the source so callers (and
    /// quarantine records) keep the root cause.
    RetriesExhausted {
        /// Total attempts made (including the first).
        attempts: u32,
        /// The error the last attempt failed with.
        source: Box<StorageError>,
    },
    /// Admission control rejected an ingest batch: accepting it would
    /// push a buffered resource past its configured hard cap (see
    /// [`IngestConfig`](crate::config::IngestConfig)). Nothing was acked
    /// — the caller may retry after backing off, and admission reopens
    /// once the resource drains below its low watermark.
    Backpressure {
        /// Which resource is saturated (`"buffer"` or `"wal"`).
        resource: &'static str,
        /// Current occupancy of that resource, in bytes.
        occupancy: u64,
        /// The configured cap, in bytes.
        limit: u64,
    },
    /// The engine's health state machine has entered `ReadOnly` after
    /// repeated write failures: new writes are refused, reads and every
    /// previously acked batch are preserved, and recovery probes keep
    /// testing the device. Nothing was acked.
    ReadOnly {
        /// Consecutive write failures that forced the transition.
        consecutive_failures: u32,
    },
    /// The engine was asked to mix incompatible tensors.
    Mismatch {
        /// Description of the mismatch.
        reason: String,
    },
    /// A typed read or write used an element type whose size differs
    /// from the record size this engine stores — type confusion (e.g.
    /// `f32` against an `f64` store) that a `debug_assert` would let
    /// slip through release builds.
    ElementSizeMismatch {
        /// Record size the engine stores, in bytes.
        expected: usize,
        /// Size of the element type the caller used, in bytes.
        found: usize,
    },
}

impl StorageError {
    /// Convenience constructor for [`StorageError::CorruptFragment`].
    pub fn corrupt(name: impl Into<String>, reason: impl Into<String>) -> Self {
        StorageError::CorruptFragment {
            name: name.into(),
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`StorageError::ChecksumMismatch`].
    pub fn checksum_mismatch(
        name: impl Into<String>,
        section: FragmentSection,
        expected: u32,
        found: u32,
    ) -> Self {
        StorageError::ChecksumMismatch {
            name: name.into(),
            section,
            expected,
            found,
        }
    }

    /// Whether this is an I/O error for a blob that does not exist — the
    /// signature of a fragment deleted (or consolidated away) between a
    /// read's planning and fetch steps.
    pub fn is_not_found(&self) -> bool {
        matches!(self, StorageError::Io(e) if e.kind() == std::io::ErrorKind::NotFound)
    }

    /// Whether this is an I/O error for a blob that already exists — the
    /// rejection a create-exclusive [`put_exclusive`] issues when another
    /// writer claimed the name first.
    ///
    /// [`put_exclusive`]: crate::backend::StorageBackend::put_exclusive
    pub fn is_already_exists(&self) -> bool {
        matches!(self, StorageError::Io(e) if e.kind() == std::io::ErrorKind::AlreadyExists)
    }

    /// Whether retrying the failed operation could plausibly succeed.
    ///
    /// Transient: interrupted/timed-out/reset I/O (a flaky device or
    /// connection) and checksum mismatches *on fetch* — a torn or raced
    /// read re-fetches cleanly, and genuine media corruption simply fails
    /// the same way again, so retrying costs nothing but bounded time.
    ///
    /// Permanent: everything else — missing blobs, structural corruption,
    /// shape mismatches, and [`StorageError::RetriesExhausted`] itself
    /// (the retry budget is spent; wrapping it again would loop).
    pub fn is_transient(&self) -> bool {
        match self {
            StorageError::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::Interrupted
                    | std::io::ErrorKind::TimedOut
                    | std::io::ErrorKind::WouldBlock
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
                    | std::io::ErrorKind::BrokenPipe
            ),
            StorageError::ChecksumMismatch { .. } => true,
            _ => false,
        }
    }

    /// Whether this is an overload rejection —
    /// [`StorageError::Backpressure`] or [`StorageError::ReadOnly`] —
    /// i.e. the engine refused the write *by design* and nothing was
    /// acked. Callers distinguishing shed load from genuine failures
    /// (and the torture harness) key off this.
    pub fn is_rejection(&self) -> bool {
        matches!(
            self,
            StorageError::Backpressure { .. } | StorageError::ReadOnly { .. }
        )
    }

    /// Whether this error is (or wraps, through retry exhaustion) a
    /// checksum mismatch — the signature of data corruption as opposed to
    /// availability problems.
    pub fn is_checksum_mismatch(&self) -> bool {
        match self {
            StorageError::ChecksumMismatch { .. } => true,
            StorageError::RetriesExhausted { source, .. } => source.is_checksum_mismatch(),
            _ => false,
        }
    }

    /// The full cause chain rendered as one string (outermost first) —
    /// what quarantine records keep so the root cause survives wrapping.
    pub fn chain_string(&self) -> String {
        use std::error::Error;
        let mut out = self.to_string();
        let mut cause = self.source();
        while let Some(e) = cause {
            out.push_str(": ");
            out.push_str(&e.to_string());
            cause = e.source();
        }
        out
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::Format(e) => write!(f, "format error: {e}"),
            StorageError::Tensor(e) => write!(f, "tensor error: {e}"),
            StorageError::CorruptFragment { name, reason } => {
                write!(f, "corrupt fragment {name}: {reason}")
            }
            StorageError::ChecksumMismatch {
                name,
                section,
                expected,
                found,
            } => write!(
                f,
                "checksum mismatch in {section} section of fragment {name}: \
                 header says {expected:#010x}, bytes hash to {found:#010x}"
            ),
            StorageError::RetriesExhausted { attempts, .. } => {
                write!(f, "operation still failing after {attempts} attempts")
            }
            StorageError::Backpressure {
                resource,
                occupancy,
                limit,
            } => write!(
                f,
                "backpressure: ingest {resource} holds {occupancy} bytes \
                 against a {limit}-byte cap; retry after the store drains"
            ),
            StorageError::ReadOnly {
                consecutive_failures,
            } => write!(
                f,
                "engine is read-only after {consecutive_failures} consecutive \
                 write failures; reads and acked batches are preserved"
            ),
            StorageError::Mismatch { reason } => write!(f, "mismatch: {reason}"),
            StorageError::ElementSizeMismatch { expected, found } => write!(
                f,
                "element size mismatch: the store holds {expected}-byte \
                 records but the element type takes {found}"
            ),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::Format(e) => Some(e),
            StorageError::Tensor(e) => Some(e),
            StorageError::RetriesExhausted { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<FormatError> for StorageError {
    fn from(e: FormatError) -> Self {
        StorageError::Format(e)
    }
}

impl From<TensorError> for StorageError {
    fn from(e: TensorError) -> Self {
        StorageError::Tensor(e)
    }
}

/// Convenience alias for storage results.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: StorageError = std::io::Error::other("boom").into();
        assert!(e.to_string().contains("boom"));
        let e: StorageError = TensorError::EmptyShape.into();
        assert!(matches!(e, StorageError::Tensor(_)));
        let e = StorageError::corrupt("frag-000001", "truncated");
        assert!(e.to_string().contains("frag-000001"));
    }

    #[test]
    fn element_size_mismatch_names_both_sizes() {
        let e = StorageError::ElementSizeMismatch {
            expected: 8,
            found: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains('8') && msg.contains('4'), "{msg}");
        assert!(!e.is_transient(), "type confusion never retries clean");
    }

    #[test]
    fn io_kind_helpers() {
        let nf: StorageError = std::io::Error::new(std::io::ErrorKind::NotFound, "no blob").into();
        assert!(nf.is_not_found() && !nf.is_already_exists());
        let ae: StorageError =
            std::io::Error::new(std::io::ErrorKind::AlreadyExists, "taken").into();
        assert!(ae.is_already_exists() && !ae.is_not_found());
        let other = StorageError::corrupt("f", "x");
        assert!(!other.is_not_found() && !other.is_already_exists());
    }

    #[test]
    fn checksum_mismatch_names_fragment_and_section() {
        let e = StorageError::checksum_mismatch("frag-1", FragmentSection::Index, 0xABCD, 0x1234);
        let msg = e.to_string();
        assert!(msg.contains("frag-1") && msg.contains("index"), "{msg}");
        assert!(
            msg.contains("0x0000abcd") && msg.contains("0x00001234"),
            "{msg}"
        );
        assert!(e.is_checksum_mismatch());
    }

    #[test]
    fn transient_classification() {
        for kind in [
            std::io::ErrorKind::Interrupted,
            std::io::ErrorKind::TimedOut,
            std::io::ErrorKind::ConnectionReset,
        ] {
            let e: StorageError = std::io::Error::new(kind, "flaky").into();
            assert!(e.is_transient(), "{kind:?}");
        }
        let cs = StorageError::checksum_mismatch("f", FragmentSection::Value, 1, 2);
        assert!(cs.is_transient(), "torn reads re-fetch");
        for permanent in [
            StorageError::corrupt("f", "x"),
            StorageError::Mismatch {
                reason: "shape".into(),
            },
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into(),
        ] {
            assert!(!permanent.is_transient(), "{permanent}");
        }
    }

    #[test]
    fn overload_rejections_are_typed_and_permanent() {
        let bp = StorageError::Backpressure {
            resource: "buffer",
            occupancy: 2048,
            limit: 1024,
        };
        assert!(bp.is_rejection());
        assert!(!bp.is_transient(), "the caller backs off, not the engine");
        let msg = bp.to_string();
        assert!(msg.contains("buffer") && msg.contains("2048") && msg.contains("1024"));

        let ro = StorageError::ReadOnly {
            consecutive_failures: 5,
        };
        assert!(ro.is_rejection() && !ro.is_transient());
        assert!(ro.to_string().contains("read-only"));
        assert!(ro.to_string().contains('5'));

        assert!(!StorageError::corrupt("f", "x").is_rejection());
    }

    #[test]
    fn retries_exhausted_preserves_the_source_chain() {
        use std::error::Error;
        let root: StorageError =
            std::io::Error::new(std::io::ErrorKind::TimedOut, "device timeout").into();
        let wrapped = StorageError::RetriesExhausted {
            attempts: 3,
            source: Box::new(root),
        };
        assert!(!wrapped.is_transient(), "the budget is spent");
        let src = wrapped.source().expect("source preserved");
        assert!(src.to_string().contains("device timeout"));
        assert!(wrapped.chain_string().contains("device timeout"));
        // A wrapped checksum failure still classifies as corruption.
        let wrapped = StorageError::RetriesExhausted {
            attempts: 2,
            source: Box::new(StorageError::checksum_mismatch(
                "f",
                FragmentSection::Header,
                1,
                2,
            )),
        };
        assert!(wrapped.is_checksum_mismatch());
        assert!(wrapped.chain_string().contains("header"));
    }
}
