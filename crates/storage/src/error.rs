//! Errors of the fragment storage engine.

use artsparse_core::FormatError;
use artsparse_tensor::TensorError;
use std::fmt;

/// Errors produced by backends, fragments, and the engine.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// An organization build/read/decode failure.
    Format(FormatError),
    /// A coordinate/shape failure.
    Tensor(TensorError),
    /// Structural inconsistency in a fragment file.
    CorruptFragment {
        /// Which fragment.
        name: String,
        /// What was wrong.
        reason: String,
    },
    /// The engine was asked to mix incompatible tensors.
    Mismatch {
        /// Description of the mismatch.
        reason: String,
    },
}

impl StorageError {
    /// Convenience constructor for [`StorageError::CorruptFragment`].
    pub fn corrupt(name: impl Into<String>, reason: impl Into<String>) -> Self {
        StorageError::CorruptFragment {
            name: name.into(),
            reason: reason.into(),
        }
    }

    /// Whether this is an I/O error for a blob that does not exist — the
    /// signature of a fragment deleted (or consolidated away) between a
    /// read's planning and fetch steps.
    pub fn is_not_found(&self) -> bool {
        matches!(self, StorageError::Io(e) if e.kind() == std::io::ErrorKind::NotFound)
    }

    /// Whether this is an I/O error for a blob that already exists — the
    /// rejection a create-exclusive [`put_exclusive`] issues when another
    /// writer claimed the name first.
    ///
    /// [`put_exclusive`]: crate::backend::StorageBackend::put_exclusive
    pub fn is_already_exists(&self) -> bool {
        matches!(self, StorageError::Io(e) if e.kind() == std::io::ErrorKind::AlreadyExists)
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::Format(e) => write!(f, "format error: {e}"),
            StorageError::Tensor(e) => write!(f, "tensor error: {e}"),
            StorageError::CorruptFragment { name, reason } => {
                write!(f, "corrupt fragment {name}: {reason}")
            }
            StorageError::Mismatch { reason } => write!(f, "mismatch: {reason}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::Format(e) => Some(e),
            StorageError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<FormatError> for StorageError {
    fn from(e: FormatError) -> Self {
        StorageError::Format(e)
    }
}

impl From<TensorError> for StorageError {
    fn from(e: TensorError) -> Self {
        StorageError::Tensor(e)
    }
}

/// Convenience alias for storage results.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: StorageError = std::io::Error::other("boom").into();
        assert!(e.to_string().contains("boom"));
        let e: StorageError = TensorError::EmptyShape.into();
        assert!(matches!(e, StorageError::Tensor(_)));
        let e = StorageError::corrupt("frag-000001", "truncated");
        assert!(e.to_string().contains("frag-000001"));
    }

    #[test]
    fn io_kind_helpers() {
        let nf: StorageError = std::io::Error::new(std::io::ErrorKind::NotFound, "no blob").into();
        assert!(nf.is_not_found() && !nf.is_already_exists());
        let ae: StorageError =
            std::io::Error::new(std::io::ErrorKind::AlreadyExists, "taken").into();
        assert!(ae.is_already_exists() && !ae.is_not_found());
        let other = StorageError::corrupt("f", "x");
        assert!(!other.is_not_found() && !other.is_already_exists());
    }
}
