//! Storage device backends.
//!
//! The paper benchmarks against a Lustre parallel file system; this
//! reproduction offers three interchangeable devices behind one trait:
//!
//! * [`FsBackend`] — a directory on the local file system (real I/O);
//! * [`MemBackend`] — an in-memory object store (algorithm-only timing);
//! * [`SimulatedDisk`] — an in-memory store that *charges wall time* per
//!   byte moved, with configurable bandwidth and per-operation latency.
//!   This is the Lustre substitution (DESIGN.md): the paper's key I/O
//!   effect — COO's ~d× larger fragment erasing its O(1)-build advantage
//!   (Table III) — depends only on bytes × device throughput, which the
//!   simulator reproduces deterministically on any machine.

use crate::error::Result;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A named-blob storage device.
pub trait StorageBackend: Send + Sync {
    /// A short static label for this device kind (`fs`, `mem`, `sim`,
    /// `striped`), used to key per-backend telemetry. Wrappers forward to
    /// the device they wrap.
    fn kind_name(&self) -> &'static str {
        "backend"
    }

    /// Create or overwrite a blob.
    fn put(&self, name: &str, data: &[u8]) -> Result<()>;

    /// Create or overwrite a blob so that a crash mid-write never leaves
    /// a torn blob: after this returns (or fails), readers see either the
    /// complete new contents or nothing/the old contents — never a
    /// prefix.
    ///
    /// The default delegates to [`put`](StorageBackend::put); devices with
    /// a real atomicity primitive (rename on a file system, a map insert
    /// under one lock) override it.
    fn put_atomic(&self, name: &str, data: &[u8]) -> Result<()> {
        self.put(name, data)
    }

    /// Create a blob only if the name is unclaimed, failing with an
    /// `AlreadyExists` I/O error otherwise. This is the mutual-exclusion
    /// primitive behind per-engine epoch claims: two engines racing on
    /// one store cannot both win the same name.
    ///
    /// The default is check-then-put (racy on devices without native
    /// support); [`FsBackend`] and [`MemBackend`] override it with truly
    /// exclusive creation.
    fn put_exclusive(&self, name: &str, data: &[u8]) -> Result<()> {
        if self.exists(name) {
            return Err(already_exists(name).into());
        }
        self.put(name, data)
    }

    /// Atomically move a blob to a new name, replacing any blob already
    /// at the destination. This is the commit step of the engine's
    /// two-phase fragment publish: a staged blob becomes visible under
    /// its final name in one device operation.
    ///
    /// The default copies then deletes (not atomic); devices with a real
    /// rename override it.
    fn rename(&self, from: &str, to: &str) -> Result<()> {
        let data = self.get(from)?;
        self.put(to, &data)?;
        self.delete(from)
    }

    /// Read a whole blob.
    fn get(&self, name: &str) -> Result<Vec<u8>>;

    /// Read at most the first `len` bytes of a blob (for header peeks).
    fn get_prefix(&self, name: &str, len: usize) -> Result<Vec<u8>> {
        let mut all = self.get(name)?;
        all.truncate(len);
        Ok(all)
    }

    /// Read up to `len` bytes starting at `offset`, clamped at the end of
    /// the blob (so a short return means the blob ends inside the range).
    ///
    /// The default reads the whole blob and slices; devices override it to
    /// transfer only the requested window — the read pipeline's section
    /// fetches depend on that to avoid moving unneeded bytes.
    fn get_range(&self, name: &str, offset: u64, len: usize) -> Result<Vec<u8>> {
        let all = self.get(name)?;
        let start = (offset as usize).min(all.len());
        let end = start.saturating_add(len).min(all.len());
        Ok(all[start..end].to_vec())
    }

    /// Names of all blobs, sorted.
    fn list(&self) -> Result<Vec<String>>;

    /// Size of a blob in bytes.
    fn size(&self, name: &str) -> Result<u64>;

    /// Remove a blob.
    fn delete(&self, name: &str) -> Result<()>;

    /// Whether a blob exists.
    fn exists(&self, name: &str) -> bool {
        self.size(name).is_ok()
    }
}

impl<T: StorageBackend + ?Sized> StorageBackend for std::sync::Arc<T> {
    fn kind_name(&self) -> &'static str {
        (**self).kind_name()
    }
    fn put(&self, name: &str, data: &[u8]) -> Result<()> {
        (**self).put(name, data)
    }
    fn put_atomic(&self, name: &str, data: &[u8]) -> Result<()> {
        (**self).put_atomic(name, data)
    }
    fn put_exclusive(&self, name: &str, data: &[u8]) -> Result<()> {
        (**self).put_exclusive(name, data)
    }
    fn rename(&self, from: &str, to: &str) -> Result<()> {
        (**self).rename(from, to)
    }
    fn get(&self, name: &str) -> Result<Vec<u8>> {
        (**self).get(name)
    }
    fn get_prefix(&self, name: &str, len: usize) -> Result<Vec<u8>> {
        (**self).get_prefix(name, len)
    }
    fn get_range(&self, name: &str, offset: u64, len: usize) -> Result<Vec<u8>> {
        (**self).get_range(name, offset, len)
    }
    fn list(&self) -> Result<Vec<String>> {
        (**self).list()
    }
    fn size(&self, name: &str) -> Result<u64> {
        (**self).size(name)
    }
    fn delete(&self, name: &str) -> Result<()> {
        (**self).delete(name)
    }
    fn exists(&self, name: &str) -> bool {
        (**self).exists(name)
    }
}

impl<T: StorageBackend + ?Sized> StorageBackend for Box<T> {
    fn kind_name(&self) -> &'static str {
        (**self).kind_name()
    }
    fn put(&self, name: &str, data: &[u8]) -> Result<()> {
        (**self).put(name, data)
    }
    fn put_atomic(&self, name: &str, data: &[u8]) -> Result<()> {
        (**self).put_atomic(name, data)
    }
    fn put_exclusive(&self, name: &str, data: &[u8]) -> Result<()> {
        (**self).put_exclusive(name, data)
    }
    fn rename(&self, from: &str, to: &str) -> Result<()> {
        (**self).rename(from, to)
    }
    fn get(&self, name: &str) -> Result<Vec<u8>> {
        (**self).get(name)
    }
    fn get_prefix(&self, name: &str, len: usize) -> Result<Vec<u8>> {
        (**self).get_prefix(name, len)
    }
    fn get_range(&self, name: &str, offset: u64, len: usize) -> Result<Vec<u8>> {
        (**self).get_range(name, offset, len)
    }
    fn list(&self) -> Result<Vec<String>> {
        (**self).list()
    }
    fn size(&self, name: &str) -> Result<u64> {
        (**self).size(name)
    }
    fn delete(&self, name: &str) -> Result<()> {
        (**self).delete(name)
    }
    fn exists(&self, name: &str) -> bool {
        (**self).exists(name)
    }
}

// ---------------------------------------------------------------------------

/// Blobs as files in a directory.
#[derive(Debug)]
pub struct FsBackend {
    root: PathBuf,
}

impl FsBackend {
    /// Open (creating if needed) a directory-backed store.
    pub fn new(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(FsBackend { root })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

impl StorageBackend for FsBackend {
    fn kind_name(&self) -> &'static str {
        "fs"
    }

    fn put(&self, name: &str, data: &[u8]) -> Result<()> {
        let mut f = std::fs::File::create(self.path(name))?;
        f.write_all(data)?;
        // The paper measures time-to-durable on Lustre; flush the userspace
        // buffer (but skip fsync — the comparison needs relative, not
        // absolute durability costs).
        f.flush()?;
        Ok(())
    }

    fn put_atomic(&self, name: &str, data: &[u8]) -> Result<()> {
        // Write a sibling temp file, then rename over the destination.
        // rename(2) is atomic within a directory, so readers see the old
        // blob or the new one, never a prefix. Like `put`, this skips
        // fsync (DESIGN.md's durability caveat): the *ordering* guarantee
        // holds, but an OS crash may still lose recently renamed data.
        // The `.tmp` suffix keeps a crash-orphaned temp inside the
        // engine's staging namespace, so recovery at open sweeps it.
        let staged = format!("{name}.put{}.tmp", std::process::id());
        let mut f = std::fs::File::create(self.path(&staged))?;
        f.write_all(data)?;
        f.flush()?;
        drop(f);
        std::fs::rename(self.path(&staged), self.path(name))?;
        Ok(())
    }

    fn put_exclusive(&self, name: &str, data: &[u8]) -> Result<()> {
        let mut f = std::fs::File::options()
            .write(true)
            .create_new(true)
            .open(self.path(name))?;
        f.write_all(data)?;
        f.flush()?;
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        Ok(std::fs::rename(self.path(from), self.path(to))?)
    }

    fn get(&self, name: &str) -> Result<Vec<u8>> {
        Ok(std::fs::read(self.path(name))?)
    }

    fn get_prefix(&self, name: &str, len: usize) -> Result<Vec<u8>> {
        let f = std::fs::File::open(self.path(name))?;
        let mut buf = vec![0u8; len];
        let mut taken = f.take(len as u64);
        let mut read = 0;
        loop {
            let k = taken.read(&mut buf[read..])?;
            if k == 0 {
                break;
            }
            read += k;
        }
        buf.truncate(read);
        Ok(buf)
    }

    fn get_range(&self, name: &str, offset: u64, len: usize) -> Result<Vec<u8>> {
        let mut f = std::fs::File::open(self.path(name))?;
        f.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        let mut taken = f.take(len as u64);
        let mut read = 0;
        loop {
            let k = taken.read(&mut buf[read..])?;
            if k == 0 {
                break;
            }
            read += k;
        }
        buf.truncate(read);
        Ok(buf)
    }

    fn list(&self) -> Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Some(name) = entry.file_name().to_str() {
                    names.push(name.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    fn size(&self, name: &str) -> Result<u64> {
        Ok(std::fs::metadata(self.path(name))?.len())
    }

    fn delete(&self, name: &str) -> Result<()> {
        std::fs::remove_file(self.path(name))?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------

/// Blobs in a mutex-guarded map.
#[derive(Debug, Default)]
pub struct MemBackend {
    blobs: Mutex<BTreeMap<String, Vec<u8>>>,
}

impl MemBackend {
    /// An empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }
}

fn not_found(name: &str) -> crate::error::StorageError {
    std::io::Error::new(std::io::ErrorKind::NotFound, format!("no blob {name}")).into()
}

fn already_exists(name: &str) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::AlreadyExists,
        format!("blob {name} already exists"),
    )
}

impl StorageBackend for MemBackend {
    fn kind_name(&self) -> &'static str {
        "mem"
    }

    fn put(&self, name: &str, data: &[u8]) -> Result<()> {
        self.blobs.lock().insert(name.to_string(), data.to_vec());
        Ok(())
    }

    // `put` inserts the full payload under one lock, so it is already
    // atomic — the default `put_atomic` delegation is correct here.

    fn put_exclusive(&self, name: &str, data: &[u8]) -> Result<()> {
        let mut blobs = self.blobs.lock();
        if blobs.contains_key(name) {
            return Err(already_exists(name).into());
        }
        blobs.insert(name.to_string(), data.to_vec());
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        let mut blobs = self.blobs.lock();
        let data = blobs.remove(from).ok_or_else(|| not_found(from))?;
        blobs.insert(to.to_string(), data);
        Ok(())
    }

    fn get(&self, name: &str) -> Result<Vec<u8>> {
        self.blobs
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| not_found(name))
    }

    fn get_range(&self, name: &str, offset: u64, len: usize) -> Result<Vec<u8>> {
        let blobs = self.blobs.lock();
        let blob = blobs.get(name).ok_or_else(|| not_found(name))?;
        let start = (offset as usize).min(blob.len());
        let end = start.saturating_add(len).min(blob.len());
        Ok(blob[start..end].to_vec())
    }

    fn list(&self) -> Result<Vec<String>> {
        Ok(self.blobs.lock().keys().cloned().collect())
    }

    fn size(&self, name: &str) -> Result<u64> {
        self.blobs
            .lock()
            .get(name)
            .map(|b| b.len() as u64)
            .ok_or_else(|| not_found(name))
    }

    fn delete(&self, name: &str) -> Result<()> {
        self.blobs
            .lock()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| not_found(name))
    }
}

// ---------------------------------------------------------------------------

/// An in-memory device that charges deterministic wall time per byte.
#[derive(Debug)]
pub struct SimulatedDisk {
    inner: MemBackend,
    /// Sustained throughput in bytes per second.
    bandwidth: f64,
    /// Fixed cost per operation (seek/RPC latency).
    latency: Duration,
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
}

impl SimulatedDisk {
    /// A device with the given bandwidth (bytes/s) and per-op latency.
    pub fn new(bandwidth_bytes_per_sec: f64, latency: Duration) -> Self {
        assert!(bandwidth_bytes_per_sec > 0.0);
        SimulatedDisk {
            inner: MemBackend::new(),
            bandwidth: bandwidth_bytes_per_sec,
            latency,
            bytes_written: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
        }
    }

    /// A profile loosely resembling one client's view of a parallel file
    /// system: 2 GiB/s streaming, 250 µs per operation.
    pub fn lustre_like() -> Self {
        SimulatedDisk::new(2.0 * (1u64 << 30) as f64, Duration::from_micros(250))
    }

    /// Total bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Total bytes read so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    fn charge(&self, bytes: usize) {
        let transfer = Duration::from_secs_f64(bytes as f64 / self.bandwidth);
        std::thread::sleep(self.latency + transfer);
    }
}

impl StorageBackend for SimulatedDisk {
    fn kind_name(&self) -> &'static str {
        "sim"
    }

    fn put(&self, name: &str, data: &[u8]) -> Result<()> {
        self.charge(data.len());
        self.bytes_written
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.inner.put(name, data)
    }

    fn put_atomic(&self, name: &str, data: &[u8]) -> Result<()> {
        self.charge(data.len());
        self.bytes_written
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.inner.put_atomic(name, data)
    }

    fn put_exclusive(&self, name: &str, data: &[u8]) -> Result<()> {
        self.inner.put_exclusive(name, data)?;
        self.charge(data.len());
        self.bytes_written
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        // A rename moves metadata, not payload bytes: charge one
        // operation's latency but no transfer.
        self.charge(0);
        self.inner.rename(from, to)
    }

    fn get(&self, name: &str) -> Result<Vec<u8>> {
        let data = self.inner.get(name)?;
        self.charge(data.len());
        self.bytes_read
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        Ok(data)
    }

    fn get_prefix(&self, name: &str, len: usize) -> Result<Vec<u8>> {
        let mut data = self.inner.get(name)?;
        data.truncate(len);
        self.charge(data.len());
        self.bytes_read
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        Ok(data)
    }

    fn get_range(&self, name: &str, offset: u64, len: usize) -> Result<Vec<u8>> {
        // Only the transferred window is charged and accounted — this is
        // what makes section fetches visibly cheaper than whole-fragment
        // reads in the io/fig5 experiments.
        let data = self.inner.get_range(name, offset, len)?;
        self.charge(data.len());
        self.bytes_read
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        Ok(data)
    }

    fn list(&self) -> Result<Vec<String>> {
        self.inner.list()
    }

    fn size(&self, name: &str) -> Result<u64> {
        self.inner.size(name)
    }

    fn delete(&self, name: &str) -> Result<()> {
        self.inner.delete(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(backend: &dyn StorageBackend) {
        assert!(backend.list().unwrap().is_empty());
        backend.put("b", &[1, 2, 3]).unwrap();
        backend.put("a", &[9]).unwrap();
        assert_eq!(backend.list().unwrap(), vec!["a", "b"]);
        assert_eq!(backend.get("b").unwrap(), vec![1, 2, 3]);
        assert_eq!(backend.size("b").unwrap(), 3);
        assert_eq!(backend.get_prefix("b", 2).unwrap(), vec![1, 2]);
        assert_eq!(backend.get_prefix("b", 99).unwrap(), vec![1, 2, 3]);
        assert_eq!(backend.get_range("b", 1, 2).unwrap(), vec![2, 3]);
        assert_eq!(backend.get_range("b", 0, 3).unwrap(), vec![1, 2, 3]);
        assert_eq!(backend.get_range("b", 2, 99).unwrap(), vec![3]);
        assert!(backend.get_range("b", 99, 4).unwrap().is_empty());
        assert!(backend.get_range("missing", 0, 1).is_err());
        assert!(backend.exists("a"));
        backend.put("b", &[7]).unwrap(); // overwrite
        assert_eq!(backend.get("b").unwrap(), vec![7]);
        backend.delete("a").unwrap();
        assert!(!backend.exists("a"));
        assert!(backend.get("a").is_err());
        assert!(backend.delete("a").is_err());

        // Commit-protocol primitives.
        backend.put_atomic("c", &[4, 5]).unwrap();
        assert_eq!(backend.get("c").unwrap(), vec![4, 5]);
        backend.put_atomic("c", &[6]).unwrap(); // atomic overwrite
        assert_eq!(backend.get("c").unwrap(), vec![6]);
        backend.put_exclusive("d", &[8]).unwrap();
        let err = backend.put_exclusive("d", &[9]).unwrap_err();
        assert!(err.is_already_exists(), "{err}");
        assert_eq!(backend.get("d").unwrap(), vec![8]);
        backend.rename("d", "e").unwrap();
        assert!(!backend.exists("d"));
        assert_eq!(backend.get("e").unwrap(), vec![8]);
        backend.rename("e", "c").unwrap(); // rename over an existing blob
        assert_eq!(backend.get("c").unwrap(), vec![8]);
        assert!(backend.rename("missing", "x").unwrap_err().is_not_found());
        backend.delete("b").unwrap();
        backend.delete("c").unwrap();
        // No temp residue from the atomic puts.
        assert!(backend.list().unwrap().is_empty());
    }

    #[test]
    fn mem_backend_contract() {
        exercise(&MemBackend::new());
    }

    #[test]
    fn fs_backend_contract() {
        let dir = tempfile::tempdir().unwrap();
        exercise(&FsBackend::new(dir.path()).unwrap());
    }

    #[test]
    fn simulated_disk_contract_and_accounting() {
        let disk = SimulatedDisk::new(1e12, Duration::ZERO);
        exercise(&disk);
        assert!(disk.bytes_written() >= 5);
        assert!(disk.bytes_read() >= 6);
    }

    #[test]
    fn simulated_disk_range_reads_charge_only_the_window() {
        let disk = SimulatedDisk::new(1e12, Duration::ZERO);
        disk.put("x", &vec![7u8; 1000]).unwrap();
        let before = disk.bytes_read();
        assert_eq!(disk.get_range("x", 100, 50).unwrap().len(), 50);
        assert_eq!(disk.bytes_read() - before, 50);
        // Clamped at the end: only the bytes that exist are charged.
        let before = disk.bytes_read();
        assert_eq!(disk.get_range("x", 990, 50).unwrap().len(), 10);
        assert_eq!(disk.bytes_read() - before, 10);
    }

    #[test]
    fn simulated_disk_charges_time_per_byte() {
        // 1 MiB at 100 MiB/s ⇒ ≈10 ms.
        let disk = SimulatedDisk::new(100.0 * (1 << 20) as f64, Duration::ZERO);
        let data = vec![0u8; 1 << 20];
        let start = std::time::Instant::now();
        disk.put("x", &data).unwrap();
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(8), "{elapsed:?}");
    }

    #[test]
    fn fs_backend_persists_across_instances() {
        let dir = tempfile::tempdir().unwrap();
        FsBackend::new(dir.path())
            .unwrap()
            .put("x", &[5, 5])
            .unwrap();
        let again = FsBackend::new(dir.path()).unwrap();
        assert_eq!(again.get("x").unwrap(), vec![5, 5]);
    }
}
