//! Write-ahead log for the streaming-ingest buffer.
//!
//! Every acked ingest batch is first persisted as one WAL blob — a
//! self-describing, CRC-framed record written through the backend's
//! `put_atomic` — and only then appended to the in-memory write buffer.
//! A group commit later folds the buffered points into an ordinary
//! fragment and retires the WAL blobs it covers; a crash before that
//! replays the surviving blobs at the next open.
//!
//! The framing is deliberately paranoid: a decoder accepts a record only
//! if the magic, version, declared lengths, and the trailing CRC32C all
//! check out. A torn prefix (a `put` that died mid-write on a device
//! without atomic puts) therefore never replays — it fails the length or
//! checksum test and is swept instead.
//!
//! Blob names follow the fragment convention, `wal-{seq:08}-{epoch:08}.wal`,
//! with `seq` drawn from the same per-engine id counter fragments use:
//! lexicographic order equals append order within one engine epoch, and
//! the name fixes the batch's slot in the store's total fragment
//! precedence order — recovery replays each batch as a fragment under
//! that very identity, never at the top of the order.

use crate::error::{Result, StorageError};
use crate::integrity::crc32c;

/// Magic prefixing every WAL record ("ASWL": Art-of-Sparsity WAL).
pub const WAL_MAGIC: [u8; 4] = *b"ASWL";

/// WAL record format version.
pub const WAL_VERSION: u32 = 1;

/// Prefix of every WAL blob name.
pub const WAL_PREFIX: &str = "wal-";

/// Suffix of every WAL blob name.
pub const WAL_SUFFIX: &str = ".wal";

/// Fixed header length: magic + version + ndim + elem_size + count.
const HEADER_LEN: usize = 4 + 4 + 4 + 4 + 8;

/// One decoded WAL record: the coordinates and raw value records of a
/// single acked ingest batch, in append order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Tensor rank the batch was written against.
    pub ndim: usize,
    /// Bytes per value record.
    pub elem_size: usize,
    /// Flattened coordinates, `ndim` entries per point.
    pub coords: Vec<u64>,
    /// Raw value bytes, `elem_size` per point.
    pub values: Vec<u8>,
}

impl WalRecord {
    /// Number of points in the batch.
    pub fn len(&self) -> usize {
        self.coords.len().checked_div(self.ndim).unwrap_or(0)
    }

    /// Whether the batch holds no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The canonical name of the WAL blob with the given sequence number,
/// acked under the given engine epoch.
pub fn wal_name(seq: u64, epoch: u64) -> String {
    format!("{WAL_PREFIX}{seq:08}-{epoch:08}{WAL_SUFFIX}")
}

/// Parse a WAL blob name back into `(seq, epoch)`; `None` for anything
/// that is not a well-formed WAL name.
pub fn parse_wal_name(name: &str) -> Option<(u64, u64)> {
    let body = name.strip_prefix(WAL_PREFIX)?.strip_suffix(WAL_SUFFIX)?;
    let (seq, epoch) = body.split_once('-')?;
    if seq.len() < 8 || epoch.len() < 8 {
        return None;
    }
    if !seq.bytes().all(|b| b.is_ascii_digit()) || !epoch.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    Some((seq.parse().ok()?, epoch.parse().ok()?))
}

/// Whether a blob name belongs to the WAL namespace (well-formed or not —
/// discovery uses this to keep WAL blobs out of the fragment catalog and
/// recovery uses it to find replay candidates).
pub fn is_wal_name(name: &str) -> bool {
    name.starts_with(WAL_PREFIX) && name.ends_with(WAL_SUFFIX)
}

/// Encode one ingest batch as a WAL record.
///
/// `coords` must hold `ndim` entries per point and `values` `elem_size`
/// bytes per point — the caller (the engine's ingest path) validates
/// shapes before this runs, so mismatches here are internal bugs and
/// reported as corruption.
pub fn encode_record(
    ndim: usize,
    elem_size: usize,
    coords: &[u64],
    values: &[u8],
) -> Result<Vec<u8>> {
    if ndim == 0 || elem_size == 0 {
        return Err(StorageError::Mismatch {
            reason: "WAL record needs a nonzero rank and element size".into(),
        });
    }
    if !coords.len().is_multiple_of(ndim) {
        return Err(StorageError::Mismatch {
            reason: format!(
                "WAL coords length {} is not a multiple of ndim {ndim}",
                coords.len()
            ),
        });
    }
    let n = coords.len() / ndim;
    if values.len() != n * elem_size {
        return Err(StorageError::Mismatch {
            reason: format!(
                "WAL values length {} does not match {n} points of {elem_size} bytes",
                values.len()
            ),
        });
    }
    let mut out = Vec::with_capacity(HEADER_LEN + coords.len() * 8 + values.len() + 4);
    out.extend_from_slice(&WAL_MAGIC);
    out.extend_from_slice(&WAL_VERSION.to_le_bytes());
    out.extend_from_slice(&(ndim as u32).to_le_bytes());
    out.extend_from_slice(&(elem_size as u32).to_le_bytes());
    out.extend_from_slice(&(n as u64).to_le_bytes());
    for c in coords {
        out.extend_from_slice(&c.to_le_bytes());
    }
    out.extend_from_slice(values);
    let crc = crc32c(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    Ok(out)
}

/// Decode one WAL blob, rejecting anything torn, truncated, or corrupt.
///
/// `name` only labels the error. The record is accepted only when the
/// magic, version, declared lengths, and trailing CRC32C all verify —
/// every failure mode of a partially-persisted blob lands in
/// [`StorageError::CorruptFragment`], which replay treats as "never
/// acked" and sweeps.
pub fn decode_record(name: &str, bytes: &[u8]) -> Result<WalRecord> {
    let torn = |reason: String| StorageError::corrupt(name, reason);
    if bytes.len() < HEADER_LEN + 4 {
        return Err(torn(format!(
            "WAL record too short: {} bytes, header needs {}",
            bytes.len(),
            HEADER_LEN + 4
        )));
    }
    if bytes[..4] != WAL_MAGIC {
        return Err(torn("bad WAL magic".into()));
    }
    let body = &bytes[..bytes.len() - 4];
    let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    let actual = crc32c(body);
    if stored != actual {
        return Err(torn(format!(
            "WAL checksum mismatch: trailer says {stored:#010x}, bytes hash to {actual:#010x}"
        )));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != WAL_VERSION {
        return Err(torn(format!("unsupported WAL version {version}")));
    }
    let ndim = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
    let elem_size = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;
    let n = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes")) as usize;
    if ndim == 0 || elem_size == 0 {
        return Err(torn(
            "WAL record declares a zero rank or element size".into(),
        ));
    }
    let coord_bytes = n
        .checked_mul(ndim)
        .and_then(|c| c.checked_mul(8))
        .ok_or_else(|| torn("WAL point count overflows".into()))?;
    let value_bytes = n
        .checked_mul(elem_size)
        .ok_or_else(|| torn("WAL payload size overflows".into()))?;
    let expect = HEADER_LEN + coord_bytes + value_bytes + 4;
    if bytes.len() != expect {
        return Err(torn(format!(
            "WAL record length {} does not match declared {expect}",
            bytes.len()
        )));
    }
    let mut coords = Vec::with_capacity(n * ndim);
    let mut off = HEADER_LEN;
    for _ in 0..n * ndim {
        coords.push(u64::from_le_bytes(
            bytes[off..off + 8].try_into().expect("8 bytes"),
        ));
        off += 8;
    }
    let values = bytes[off..off + value_bytes].to_vec();
    Ok(WalRecord {
        ndim,
        elem_size,
        coords,
        values,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        encode_record(3, 8, &[1, 2, 3, 9, 8, 7], &[0xAB; 16]).unwrap()
    }

    #[test]
    fn names_roundtrip_and_sort_in_append_order() {
        let a = wal_name(1, 7);
        let b = wal_name(2, 7);
        assert_eq!(a, "wal-00000001-00000007.wal");
        assert!(a < b, "lexicographic order is append order");
        assert_eq!(parse_wal_name(&a), Some((1, 7)));
        assert!(is_wal_name(&a));
        for bad in [
            "frag-00000001-00000007.asf",
            "wal-1-7.wal",
            "wal-0000000x-00000007.wal",
            "wal-00000001.wal",
            "wal-00000001-00000007.tmp",
        ] {
            assert_eq!(parse_wal_name(bad), None, "{bad}");
        }
    }

    #[test]
    fn record_roundtrips() {
        let coords = vec![5, 6, 7, 8];
        let values = vec![1u8, 2, 3, 4, 5, 6, 7, 8];
        let blob = encode_record(2, 4, &coords, &values).unwrap();
        let rec = decode_record("w", &blob).unwrap();
        assert_eq!(rec.ndim, 2);
        assert_eq!(rec.elem_size, 4);
        assert_eq!(rec.len(), 2);
        assert!(!rec.is_empty());
        assert_eq!(rec.coords, coords);
        assert_eq!(rec.values, values);
    }

    #[test]
    fn every_torn_prefix_is_rejected() {
        let blob = sample();
        for cut in 0..blob.len() {
            let err = decode_record("w", &blob[..cut]).unwrap_err();
            assert!(
                matches!(err, StorageError::CorruptFragment { .. }),
                "cut at {cut}: {err}"
            );
        }
        // The full blob still decodes — the loop above didn't pass vacuously.
        assert_eq!(decode_record("w", &blob).unwrap().len(), 2);
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let blob = sample();
        for byte in 0..blob.len() {
            let mut bad = blob.clone();
            bad[byte] ^= 0x01;
            assert!(decode_record("w", &bad).is_err(), "flip at byte {byte}");
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut blob = sample();
        blob.push(0);
        assert!(decode_record("w", &blob).is_err());
    }

    #[test]
    fn encode_validates_shapes() {
        assert!(encode_record(0, 8, &[], &[]).is_err());
        assert!(encode_record(2, 0, &[], &[]).is_err());
        assert!(encode_record(2, 8, &[1, 2, 3], &[]).is_err());
        assert!(encode_record(2, 8, &[1, 2], &[0; 4]).is_err());
    }
}
