//! Tuning knobs for the engine's read pipeline, commit protocol, and
//! fault tolerance.

use artsparse_core::advisor::AccessProfile;
use artsparse_core::FormatKind;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// How WRITE publishes a fragment to the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommitMode {
    /// Two-phase publish (the default): stage the fragment under a
    /// `.tmp` name invisible to discovery, then rename-commit it. A
    /// crash anywhere in the window leaves only an orphaned temp blob
    /// that recovery sweeps at the next open — never a torn fragment.
    #[default]
    Staged,
    /// Publish directly under the final name with one `put_atomic`.
    /// Skips the staging rename — the legacy write path, kept as a
    /// benchmark baseline and for devices where rename is expensive.
    /// Crash safety then rests entirely on the device's `put_atomic`.
    Direct,
}

/// Bounded exponential backoff for transient read faults.
///
/// The engine wraps every backend fetch in this policy: an attempt that
/// fails with a [transient] error (flaky I/O, or a checksum mismatch —
/// a torn read re-fetches cleanly) sleeps and retries until the attempt
/// budget runs out, at which point the last error is surfaced (wrapped
/// in `RetriesExhausted` for I/O faults, so the cause chain survives).
///
/// Jitter is deterministic — derived from the fragment name and attempt
/// number, not a clock — so fault-injection tests replay exactly.
///
/// [transient]: crate::error::StorageError::is_transient
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per operation, the first one included. `1` means
    /// no retries; `0` is treated as `1`.
    pub max_attempts: u32,
    /// Sleep before the first retry; doubles each retry after that.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff sleep.
    pub max_backoff: Duration,
    /// Jitter as a percentage (`0..=100`): each sleep is shortened by a
    /// deterministic 0–`jitter_pct`% so concurrent retries decorrelate.
    pub jitter_pct: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
            jitter_pct: 50,
        }
    }
}

/// SplitMix64 — tiny deterministic mixer for jitter (no clocks, no RNG
/// state to carry).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, surface the error).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..Default::default()
        }
    }

    /// Effective attempt budget (at least one).
    pub fn attempts(&self) -> u32 {
        self.max_attempts.max(1)
    }

    /// How long to sleep before retry number `retry` (0-based: the sleep
    /// between the first failure and the second attempt is `backoff(0,
    /// seed)`). Exponential in `retry`, capped at [`max_backoff`], then
    /// shortened by a deterministic jitter derived from `seed`.
    ///
    /// [`max_backoff`]: RetryPolicy::max_backoff
    pub fn backoff(&self, retry: u32, seed: u64) -> Duration {
        let base = self.base_backoff.as_nanos() as u64;
        let cap = self.max_backoff.as_nanos() as u64;
        let exp = sat_shl(base, retry).min(cap.max(base));
        let jitter = self.jitter_pct.min(100) as u64;
        if exp == 0 || jitter == 0 {
            return Duration::from_nanos(exp);
        }
        let cut = splitmix64(seed ^ ((retry as u64) << 32)) % (jitter + 1);
        Duration::from_nanos(exp - exp * cut / 100)
    }
}

/// `x << rhs`, saturating instead of overflowing.
fn sat_shl(x: u64, rhs: u32) -> u64 {
    if x == 0 {
        0
    } else if rhs >= x.leading_zeros() {
        u64::MAX
    } else {
        x << rhs
    }
}

/// Named access-pattern presets for adaptive re-organization.
///
/// These are the advisor's Table-IV weight profiles reduced to an
/// enumerable knob: the engine configuration derives `Eq`, so it carries
/// this name rather than raw floating-point weights. Each variant maps to
/// the corresponding [`AccessProfile`] constructor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ReorgProfile {
    /// Equal weight on build, read, and space cost (the default).
    #[default]
    Balanced,
    /// Ingest-dominated: build cost dominates the score.
    WriteHeavy,
    /// Query-dominated: read cost dominates the score.
    ReadHeavy,
}

impl ReorgProfile {
    /// Parse a profile name as accepted by the bench harness
    /// (`balanced`, `write-heavy`, `read-heavy`).
    pub fn parse(s: &str) -> Option<ReorgProfile> {
        match s.to_ascii_lowercase().as_str() {
            "balanced" => Some(ReorgProfile::Balanced),
            "write-heavy" | "write_heavy" => Some(ReorgProfile::WriteHeavy),
            "read-heavy" | "read_heavy" => Some(ReorgProfile::ReadHeavy),
            _ => None,
        }
    }

    /// The canonical name (the form [`parse`](ReorgProfile::parse)
    /// accepts).
    pub fn name(self) -> &'static str {
        match self {
            ReorgProfile::Balanced => "balanced",
            ReorgProfile::WriteHeavy => "write-heavy",
            ReorgProfile::ReadHeavy => "read-heavy",
        }
    }

    /// The advisor weight profile this preset names.
    pub fn access_profile(self) -> AccessProfile {
        match self {
            ReorgProfile::Balanced => AccessProfile::balanced(),
            ReorgProfile::WriteHeavy => AccessProfile::write_heavy(),
            ReorgProfile::ReadHeavy => AccessProfile::read_heavy(),
        }
    }
}

/// Adaptive re-organization policy for consolidation.
///
/// When set on [`EngineConfig::adaptive_reorg`], every consolidation
/// characterizes the merged region's sparsity during its existing merge
/// scan, runs the advisor's cost model over the measured statistics, and
/// re-encodes the output fragment in the winning organization — instead
/// of freezing the store's configured write format forever.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AdaptiveReorg {
    /// Which access pattern the advisor should optimize for.
    pub profile: ReorgProfile,
    /// Escape hatch: skip the advisor entirely and always re-encode
    /// consolidation output in this organization. For operators who know
    /// better than the cost model (and for deterministic tests).
    pub pin: Option<FormatKind>,
    /// Organizations the advisor may choose from. Empty (the default)
    /// means the paper's five ([`FormatKind::PAPER_FIVE`]).
    pub candidates: Vec<FormatKind>,
}

impl AdaptiveReorg {
    /// Policy with the given profile, no pin, default candidates.
    pub fn with_profile(profile: ReorgProfile) -> Self {
        AdaptiveReorg {
            profile,
            ..Default::default()
        }
    }

    /// Policy pinned to one organization (advisor bypassed).
    pub fn pinned(kind: FormatKind) -> Self {
        AdaptiveReorg {
            pin: Some(kind),
            ..Default::default()
        }
    }
}

/// Thresholds for the streaming-ingest write buffer and its group
/// commits, plus the admission-control caps that bound them.
///
/// Ingested points accumulate in the in-memory write buffer (durably
/// mirrored in the WAL) until one of these thresholds trips, at which
/// point the buffer is flushed — group-committed — into one ordinary
/// fragment and the covering WAL records are retired. The `max_*` caps
/// are hard admission limits: a batch that would push buffered bytes or
/// WAL backlog past its cap is rejected with a typed
/// [`Backpressure`](crate::error::StorageError::Backpressure) error
/// *before* anything is acked, and admission stays closed until
/// occupancy drains below the low watermark
/// ([`backpressure_resume_pct`](IngestConfig::backpressure_resume_pct))
/// so a saturated store sheds load instead of flapping at the cap. All
/// fields are integers so [`EngineConfig`] keeps deriving `Eq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestConfig {
    /// Flush when this many raw buffered points accumulate. Counted
    /// pre-dedup: repeated writes of one address each count, so the
    /// threshold bounds buffered *work* (WAL bytes, replay cost), not
    /// distinct addresses.
    pub flush_points: usize,
    /// Flush when the buffered value payload reaches this many bytes.
    pub flush_bytes: usize,
    /// Age (milliseconds) past which the background scheduler flushes a
    /// non-empty buffer even below the size thresholds, bounding how
    /// long an acked point stays WAL-only. Only the scheduler acts on
    /// this — an engine without one flushes purely by size.
    pub flush_interval_ms: u64,
    /// Write a durable WAL record (via `put_atomic`) before acking each
    /// ingest batch. On by default; turning it off trades crash
    /// durability of buffered points for ingest throughput.
    pub wal: bool,
    /// Hard cap on buffered value bytes (the high watermark). A batch
    /// that would exceed it is rejected with `Backpressure` before its
    /// WAL record is written. `0` disables the cap.
    pub max_buffered_bytes: usize,
    /// Hard cap on live WAL backlog bytes — acked blobs not yet retired,
    /// including blobs queued for deletion retry. `0` disables the cap.
    pub max_wal_backlog_bytes: u64,
    /// Low watermark, as a percentage of the tripped cap (`0..=100`).
    /// Once admission closes, it reopens only when the overloaded
    /// resource drains to at or below this fraction of its cap —
    /// hysteresis that prevents accept/reject flapping right at the cap.
    pub backpressure_resume_pct: u32,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            flush_points: 4096,
            flush_bytes: 1 << 20,
            flush_interval_ms: 1000,
            wal: true,
            max_buffered_bytes: 256 << 20,
            max_wal_backlog_bytes: 1 << 30,
            backpressure_resume_pct: 75,
        }
    }
}

/// The live observability plane: metrics registry, trace-correlated
/// event journal, and the background exporter that publishes both.
///
/// Set on [`EngineConfig::observability`] to make the engine maintain a
/// live [`MetricsRegistry`](artsparse_metrics::MetricsRegistry) (gauges
/// the span system cannot express: write-buffer occupancy, WAL backlog,
/// fragment size tiers, cache occupancy, scheduler health, read
/// amplification) and a bounded
/// [`Journal`](artsparse_metrics::Journal) of severity-tagged events.
/// `None` (the default) means **no** registry or journal call happens
/// anywhere in the engine. All fields are integers so [`EngineConfig`]
/// keeps deriving `Eq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObservabilityConfig {
    /// Events the journal retains (and the exporter can drain) before
    /// evicting the oldest.
    pub journal_events: usize,
    /// Journal a `slow_span` event for any span at least this long
    /// (milliseconds; 0 disables slow-span events).
    pub slow_span_ms: u64,
    /// How often the [`MetricsExporter`](crate::MetricsExporter) thread
    /// publishes a registry snapshot + journal increment (milliseconds,
    /// minimum 1).
    pub export_interval_ms: u64,
}

impl Default for ObservabilityConfig {
    fn default() -> Self {
        ObservabilityConfig {
            journal_events: 1024,
            slow_span_ms: 100,
            export_interval_ms: 500,
        }
    }
}

/// Policy of the background consolidation scheduler
/// ([`IngestScheduler`](crate::scheduler::IngestScheduler)).
///
/// The scheduler ticks, flushes stale buffers (see
/// [`IngestConfig::flush_interval_ms`]), and triggers a full
/// consolidation pass under a size-tiered policy: fragments are bucketed
/// by the log₂ of their size, and when any tier holds at least
/// [`tier_fragments`](SchedulerConfig::tier_fragments) fragments the
/// store is deemed fragmented enough to merge — small fresh flushes
/// accumulate into a tier and are folded together, while one big
/// consolidated fragment sits alone in its tier and never re-triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Poll interval between scheduler passes, in milliseconds.
    pub tick_ms: u64,
    /// Trigger consolidation when any log₂-size tier holds at least this
    /// many fragments (minimum 2).
    pub tier_fragments: usize,
    /// Rate limit: minimum milliseconds between two consolidation
    /// passes, regardless of how fragmented the store looks.
    pub min_consolidate_interval_ms: u64,
    /// Upper bound, in milliseconds, on how long
    /// [`IngestScheduler::shutdown`](crate::scheduler::IngestScheduler::shutdown)
    /// waits for the worker thread. A thread stuck inside a backend call
    /// (hung device, injected write latency) is detached instead of
    /// blocking drop forever, and the timeout is surfaced as a
    /// `scheduler_error`. `0` waits indefinitely.
    pub shutdown_timeout_ms: u64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            tick_ms: 50,
            tier_fragments: 4,
            min_consolidate_interval_ms: 250,
            shutdown_timeout_ms: 5_000,
        }
    }
}

impl SchedulerConfig {
    /// Effective tier threshold (at least 2 — a 1-fragment "tier" would
    /// consolidate forever).
    pub fn tier_threshold(&self) -> usize {
        self.tier_fragments.max(2)
    }
}

/// Thresholds of the engine's write-path health state machine
/// (`Healthy → Degraded → ReadOnly`, see
/// [`HealthState`](crate::engine::HealthState)).
///
/// Consecutive write failures — a WAL append, stage, rename-commit, or
/// consolidation commit that fails even after its retry budget — walk
/// the engine down the ladder; one successful write (or recovery probe)
/// resets it to `Healthy`. In `ReadOnly` the engine refuses new writes
/// with a typed error but keeps serving reads and preserves every acked
/// batch; a periodic probe write tests the device so recovery is
/// automatic once the fault clears. All fields are integers so
/// [`EngineConfig`] keeps deriving `Eq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthConfig {
    /// Consecutive write failures before `Healthy` drops to `Degraded`.
    pub degrade_after: u32,
    /// Consecutive write failures before the engine enters `ReadOnly`
    /// (must be ≥ [`degrade_after`](HealthConfig::degrade_after) to be
    /// reachable).
    pub read_only_after: u32,
    /// Minimum milliseconds between two recovery probes while the engine
    /// is `ReadOnly`. The background scheduler drives probes on its
    /// ticks; without a scheduler, [`probe_health`] can be called
    /// directly.
    ///
    /// [`probe_health`]: crate::engine::StorageEngine::probe_health
    pub probe_interval_ms: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            degrade_after: 2,
            read_only_after: 5,
            probe_interval_ms: 500,
        }
    }
}

/// Configuration of the catalog → plan → fetch → decode → merge read
/// pipeline and of the fragment commit protocol. The default reproduces
/// Algorithm 3's semantics exactly while fetching only the bytes a query
/// needs and publishing crash-safely; the knobs trade memory, concurrency,
/// commit overhead, and fault tolerance for latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Budget (in decoded payload bytes) for the decoded-fragment LRU
    /// cache. Zero disables caching (the default): every read fetches
    /// from the device, which keeps transferred-byte accounting exact
    /// for the I/O experiments. Enable it for repeat-read workloads.
    pub cache_capacity_bytes: usize,
    /// Worker threads for per-fragment fetch → decode → read execution.
    /// Zero (the default) uses the host's available parallelism; one
    /// forces the sequential reference path.
    pub read_parallelism: usize,
    /// Fetch fragment sections (index first, then only the value records
    /// the query matched) instead of whole blobs. On by default; turn it
    /// off to reproduce the legacy whole-fragment fetch, e.g. as a
    /// baseline in benchmarks.
    pub range_fetch: bool,
    /// How WRITE publishes fragments. Consolidation always uses the
    /// staged, tombstone-protected protocol regardless of this setting —
    /// the knob only covers the plain write hot path.
    pub commit_mode: CommitMode,
    /// Collect runtime telemetry (span traces, per-operation I/O
    /// accounting, latency histograms). Off by default: the disabled path
    /// is a no-op recorder that adds no events and no measurable cost.
    /// When on, `StorageEngine::telemetry_report()` snapshots the
    /// aggregated report for export.
    pub telemetry: bool,
    /// Worker threads for compute-parallel format work: the chunked
    /// lexicographic sorts inside sorting builds and the sharded batched
    /// point-query scans. Zero (the default) uses the host's available
    /// parallelism; one forces the sequential reference path. Independent
    /// of [`read_parallelism`], which governs per-*fragment* pipeline
    /// concurrency.
    ///
    /// [`read_parallelism`]: EngineConfig::read_parallelism
    pub threads: usize,
    /// Minimum element count (points to sort, queries to execute) before
    /// format work fans out across [`threads`]. Below this the sequential
    /// path always runs — parallelism never pays for tiny inputs. The
    /// default is [`artsparse_tensor::par::DEFAULT_CUTOFF`].
    ///
    /// [`threads`]: EngineConfig::threads
    pub parallel_cutoff: usize,
    /// Retry policy for backend fetches (see [`RetryPolicy`]).
    pub retry: RetryPolicy,
    /// Retry policy for backend mutations — WAL appends, staged puts,
    /// rename-commits, and retire/consolidation deletes. Same transient
    /// classification and deterministic jitter as [`retry`], applied on
    /// the write side; an exhausted budget surfaces `RetriesExhausted`
    /// and counts as one write failure toward [`health`].
    ///
    /// [`retry`]: EngineConfig::retry
    /// [`health`]: EngineConfig::health
    pub write_retry: RetryPolicy,
    /// Write-path health thresholds (see [`HealthConfig`]).
    pub health: HealthConfig,
    /// Fail-closed reads (the default): a fragment that exhausts retries
    /// or fails checksum verification aborts the whole read with the
    /// typed error. With `false`, such a fragment is quarantined in the
    /// catalog instead — skipped by this and all future plans, never
    /// deleted — and the read completes over the survivors, reporting
    /// `complete == false` plus the quarantined names in its outcome.
    pub strict_reads: bool,
    /// Live adaptive re-organization (see [`AdaptiveReorg`]). `None` (the
    /// default) keeps the legacy behavior: consolidation re-encodes in the
    /// store's configured write format.
    pub adaptive_reorg: Option<AdaptiveReorg>,
    /// Streaming-ingest thresholds (see [`IngestConfig`]): when the write
    /// buffer group-commits into a fragment and whether acked batches are
    /// WAL-protected first.
    pub ingest: IngestConfig,
    /// Live observability plane (see [`ObservabilityConfig`]). `None`
    /// (the default) disables it entirely: no metrics registry, no event
    /// journal, zero calls on any engine path.
    pub observability: Option<ObservabilityConfig>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cache_capacity_bytes: 0,
            read_parallelism: 0,
            range_fetch: true,
            commit_mode: CommitMode::Staged,
            telemetry: false,
            threads: 0,
            parallel_cutoff: artsparse_tensor::par::DEFAULT_CUTOFF,
            retry: RetryPolicy::default(),
            write_retry: RetryPolicy::default(),
            health: HealthConfig::default(),
            strict_reads: true,
            adaptive_reorg: None,
            ingest: IngestConfig::default(),
            observability: None,
        }
    }
}

impl EngineConfig {
    /// The number of worker threads the read executor will actually use.
    pub fn effective_parallelism(&self) -> usize {
        if self.read_parallelism > 0 {
            self.read_parallelism
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// Builder-style cache budget.
    pub fn with_cache_capacity(mut self, bytes: usize) -> Self {
        self.cache_capacity_bytes = bytes;
        self
    }

    /// Builder-style parallelism override.
    pub fn with_read_parallelism(mut self, threads: usize) -> Self {
        self.read_parallelism = threads;
        self
    }

    /// Builder-style range-fetch toggle.
    pub fn with_range_fetch(mut self, enabled: bool) -> Self {
        self.range_fetch = enabled;
        self
    }

    /// Builder-style commit-mode override.
    pub fn with_commit_mode(mut self, mode: CommitMode) -> Self {
        self.commit_mode = mode;
        self
    }

    /// Builder-style telemetry toggle.
    pub fn with_telemetry(mut self, enabled: bool) -> Self {
        self.telemetry = enabled;
        self
    }

    /// Builder-style compute-thread override (`0` = auto, `1` =
    /// sequential).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builder-style parallel-cutoff override.
    pub fn with_parallel_cutoff(mut self, cutoff: usize) -> Self {
        self.parallel_cutoff = cutoff;
        self
    }

    /// The [`Parallelism`] the engine installs around format builds and
    /// batched reads, derived from [`threads`] and [`parallel_cutoff`].
    ///
    /// [`Parallelism`]: artsparse_tensor::par::Parallelism
    /// [`threads`]: EngineConfig::threads
    /// [`parallel_cutoff`]: EngineConfig::parallel_cutoff
    pub fn parallelism(&self) -> artsparse_tensor::par::Parallelism {
        artsparse_tensor::par::Parallelism::with_threads(self.threads)
            .with_cutoff(self.parallel_cutoff)
    }

    /// Builder-style retry-policy override.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Builder-style write-retry-policy override.
    pub fn with_write_retry(mut self, policy: RetryPolicy) -> Self {
        self.write_retry = policy;
        self
    }

    /// Builder-style health-threshold override.
    pub fn with_health(mut self, health: HealthConfig) -> Self {
        self.health = health;
        self
    }

    /// Builder-style strict-reads toggle.
    pub fn with_strict_reads(mut self, strict: bool) -> Self {
        self.strict_reads = strict;
        self
    }

    /// Builder-style adaptive re-organization policy.
    pub fn with_adaptive_reorg(mut self, policy: AdaptiveReorg) -> Self {
        self.adaptive_reorg = Some(policy);
        self
    }

    /// Builder-style streaming-ingest thresholds.
    pub fn with_ingest(mut self, ingest: IngestConfig) -> Self {
        self.ingest = ingest;
        self
    }

    /// Builder-style observability plane.
    pub fn with_observability(mut self, observability: ObservabilityConfig) -> Self {
        self.observability = Some(observability);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_builders() {
        let c = EngineConfig::default();
        assert_eq!(c.cache_capacity_bytes, 0);
        assert_eq!(c.read_parallelism, 0);
        assert!(c.range_fetch);
        assert_eq!(c.commit_mode, CommitMode::Staged);
        assert!(!c.telemetry);
        assert_eq!(c.threads, 0);
        assert_eq!(c.parallel_cutoff, artsparse_tensor::par::DEFAULT_CUTOFF);
        assert_eq!(c.retry, RetryPolicy::default());
        assert_eq!(c.retry.max_attempts, 3);
        assert_eq!(c.write_retry, RetryPolicy::default());
        assert_eq!(c.health, HealthConfig::default());
        assert!(c.health.degrade_after < c.health.read_only_after);
        assert!(c.strict_reads);
        assert!(c.adaptive_reorg.is_none());
        assert_eq!(c.ingest, IngestConfig::default());
        assert!(c.ingest.wal);
        assert_eq!(c.ingest.flush_points, 4096);
        assert!(c.effective_parallelism() >= 1);

        let c = EngineConfig::default()
            .with_cache_capacity(1 << 20)
            .with_read_parallelism(2)
            .with_range_fetch(false)
            .with_commit_mode(CommitMode::Direct)
            .with_telemetry(true)
            .with_threads(3)
            .with_parallel_cutoff(128)
            .with_retry(RetryPolicy::none())
            .with_write_retry(RetryPolicy::none())
            .with_health(HealthConfig {
                degrade_after: 1,
                read_only_after: 2,
                probe_interval_ms: 10,
            })
            .with_strict_reads(false);
        assert_eq!(c.cache_capacity_bytes, 1 << 20);
        assert_eq!(c.effective_parallelism(), 2);
        assert!(!c.range_fetch);
        assert_eq!(c.commit_mode, CommitMode::Direct);
        assert!(c.telemetry);
        assert_eq!(c.retry.attempts(), 1);
        assert_eq!(c.write_retry.attempts(), 1);
        assert_eq!(c.health.read_only_after, 2);
        assert!(!c.strict_reads);
        let p = c.parallelism();
        assert_eq!(p.threads, 3);
        assert_eq!(p.cutoff, 128);
    }

    #[test]
    fn backoff_is_bounded_exponential_and_deterministic() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            jitter_pct: 0,
        };
        assert_eq!(p.backoff(0, 7), Duration::from_millis(1));
        assert_eq!(p.backoff(1, 7), Duration::from_millis(2));
        assert_eq!(p.backoff(2, 7), Duration::from_millis(4));
        // Capped thereafter, even at shift-overflow retry counts.
        assert_eq!(p.backoff(3, 7), Duration::from_millis(4));
        assert_eq!(p.backoff(200, 7), Duration::from_millis(4));

        let j = RetryPolicy {
            jitter_pct: 50,
            ..p
        };
        for retry in 0..6 {
            let a = j.backoff(retry, 42);
            let b = j.backoff(retry, 42);
            assert_eq!(a, b, "jitter must be deterministic");
            let full = p.backoff(retry, 42);
            assert!(a <= full && a * 2 >= full, "jitter within [50%, 100%]");
        }
        // Different seeds should (almost always) jitter differently.
        let spread: std::collections::HashSet<_> = (0..32u64).map(|s| j.backoff(1, s)).collect();
        assert!(spread.len() > 1);
    }

    #[test]
    fn reorg_profile_parses_and_maps() {
        for p in [
            ReorgProfile::Balanced,
            ReorgProfile::WriteHeavy,
            ReorgProfile::ReadHeavy,
        ] {
            assert_eq!(ReorgProfile::parse(p.name()), Some(p));
        }
        assert_eq!(
            ReorgProfile::parse("WRITE_HEAVY"),
            Some(ReorgProfile::WriteHeavy)
        );
        assert_eq!(ReorgProfile::parse("fastest"), None);
        assert!(ReorgProfile::ReadHeavy.access_profile().read_weight > 1.0);

        let c = EngineConfig::default()
            .with_adaptive_reorg(AdaptiveReorg::with_profile(ReorgProfile::ReadHeavy));
        let ad = c.adaptive_reorg.unwrap();
        assert_eq!(ad.profile, ReorgProfile::ReadHeavy);
        assert!(ad.pin.is_none() && ad.candidates.is_empty());
        assert_eq!(
            AdaptiveReorg::pinned(FormatKind::Csf).pin,
            Some(FormatKind::Csf)
        );
    }

    #[test]
    fn ingest_and_scheduler_defaults() {
        let i = IngestConfig {
            flush_points: 8,
            flush_bytes: 64,
            flush_interval_ms: 5,
            wal: false,
            ..Default::default()
        };
        let c = EngineConfig::default().with_ingest(i);
        assert_eq!(c.ingest, i);
        assert!(!c.ingest.wal);
        let d = IngestConfig::default();
        assert!(d.max_buffered_bytes > d.flush_bytes, "caps sit above flush");
        assert!(d.max_wal_backlog_bytes > 0);
        assert!(d.backpressure_resume_pct <= 100);

        let s = SchedulerConfig::default();
        assert!(s.tick_ms > 0);
        assert!(s.tier_threshold() >= 2);
        let degenerate = SchedulerConfig {
            tier_fragments: 0,
            ..s
        };
        assert_eq!(degenerate.tier_threshold(), 2);
    }

    #[test]
    fn observability_defaults_off_and_builds_on() {
        let c = EngineConfig::default();
        assert!(c.observability.is_none());
        let oc = ObservabilityConfig::default();
        assert!(oc.journal_events > 0);
        assert!(oc.export_interval_ms > 0);
        let c = c.with_observability(ObservabilityConfig {
            slow_span_ms: 0,
            ..oc
        });
        let got = c.observability.unwrap();
        assert_eq!(got.slow_span_ms, 0);
        assert_eq!(got.journal_events, oc.journal_events);
    }

    #[test]
    fn none_policy_never_sleeps_more_than_once() {
        let p = RetryPolicy::none();
        assert_eq!(p.attempts(), 1);
        // Degenerate budgets are clamped, not honored.
        let zero = RetryPolicy {
            max_attempts: 0,
            ..Default::default()
        };
        assert_eq!(zero.attempts(), 1);
    }
}
