//! Tuning knobs for the engine's read pipeline and commit protocol.

/// How WRITE publishes a fragment to the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommitMode {
    /// Two-phase publish (the default): stage the fragment under a
    /// `.tmp` name invisible to discovery, then rename-commit it. A
    /// crash anywhere in the window leaves only an orphaned temp blob
    /// that recovery sweeps at the next open — never a torn fragment.
    #[default]
    Staged,
    /// Publish directly under the final name with one `put_atomic`.
    /// Skips the staging rename — the legacy write path, kept as a
    /// benchmark baseline and for devices where rename is expensive.
    /// Crash safety then rests entirely on the device's `put_atomic`.
    Direct,
}

/// Configuration of the catalog → plan → fetch → decode → merge read
/// pipeline and of the fragment commit protocol. The default reproduces
/// Algorithm 3's semantics exactly while fetching only the bytes a query
/// needs and publishing crash-safely; the knobs trade memory, concurrency,
/// and commit overhead for latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Budget (in decoded payload bytes) for the decoded-fragment LRU
    /// cache. Zero disables caching (the default): every read fetches
    /// from the device, which keeps transferred-byte accounting exact
    /// for the I/O experiments. Enable it for repeat-read workloads.
    pub cache_capacity_bytes: usize,
    /// Worker threads for per-fragment fetch → decode → read execution.
    /// Zero (the default) uses the host's available parallelism; one
    /// forces the sequential reference path.
    pub read_parallelism: usize,
    /// Fetch fragment sections (index first, then only the value records
    /// the query matched) instead of whole blobs. On by default; turn it
    /// off to reproduce the legacy whole-fragment fetch, e.g. as a
    /// baseline in benchmarks.
    pub range_fetch: bool,
    /// How WRITE publishes fragments. Consolidation always uses the
    /// staged, tombstone-protected protocol regardless of this setting —
    /// the knob only covers the plain write hot path.
    pub commit_mode: CommitMode,
    /// Collect runtime telemetry (span traces, per-operation I/O
    /// accounting, latency histograms). Off by default: the disabled path
    /// is a no-op recorder that adds no events and no measurable cost.
    /// When on, `StorageEngine::telemetry_report()` snapshots the
    /// aggregated report for export.
    pub telemetry: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cache_capacity_bytes: 0,
            read_parallelism: 0,
            range_fetch: true,
            commit_mode: CommitMode::Staged,
            telemetry: false,
        }
    }
}

impl EngineConfig {
    /// The number of worker threads the read executor will actually use.
    pub fn effective_parallelism(&self) -> usize {
        if self.read_parallelism > 0 {
            self.read_parallelism
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// Builder-style cache budget.
    pub fn with_cache_capacity(mut self, bytes: usize) -> Self {
        self.cache_capacity_bytes = bytes;
        self
    }

    /// Builder-style parallelism override.
    pub fn with_read_parallelism(mut self, threads: usize) -> Self {
        self.read_parallelism = threads;
        self
    }

    /// Builder-style range-fetch toggle.
    pub fn with_range_fetch(mut self, enabled: bool) -> Self {
        self.range_fetch = enabled;
        self
    }

    /// Builder-style commit-mode override.
    pub fn with_commit_mode(mut self, mode: CommitMode) -> Self {
        self.commit_mode = mode;
        self
    }

    /// Builder-style telemetry toggle.
    pub fn with_telemetry(mut self, enabled: bool) -> Self {
        self.telemetry = enabled;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_builders() {
        let c = EngineConfig::default();
        assert_eq!(c.cache_capacity_bytes, 0);
        assert_eq!(c.read_parallelism, 0);
        assert!(c.range_fetch);
        assert_eq!(c.commit_mode, CommitMode::Staged);
        assert!(!c.telemetry);
        assert!(c.effective_parallelism() >= 1);

        let c = EngineConfig::default()
            .with_cache_capacity(1 << 20)
            .with_read_parallelism(2)
            .with_range_fetch(false)
            .with_commit_mode(CommitMode::Direct)
            .with_telemetry(true);
        assert_eq!(c.cache_capacity_bytes, 1 << 20);
        assert_eq!(c.effective_parallelism(), 2);
        assert!(!c.range_fetch);
        assert_eq!(c.commit_mode, CommitMode::Direct);
        assert!(c.telemetry);
    }
}
