//! In-memory write buffer for streaming ingest.
//!
//! Acked ingest batches land here (after their WAL record is durable)
//! and stay readable — merged over fragment hits with last-write-wins
//! precedence — until a group commit flushes them into one ordinary
//! fragment. The buffer keeps batches in append order under a mutex and
//! exposes reads through an atomically swappable [`BufferSnapshot`]: an
//! `Arc`'d address-ordered view rebuilt lazily after appends, so readers
//! never hold the append lock while they merge (the double-buffer idiom —
//! writers mutate the live side, readers clone an immutable snapshot).
//!
//! Draining is batch-aligned: a flush captures a snapshot, encodes it as
//! a fragment, and then retires exactly the batches the snapshot covered
//! (returning their WAL names for deletion) — batches acked during the
//! flush stay buffered for the next group commit.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One acked ingest batch held in the buffer.
#[derive(Debug)]
struct Batch {
    /// Linear addresses, one per point (precomputed by the engine, which
    /// knows the tensor shape).
    addrs: Vec<u64>,
    /// Flattened coordinates, `ndim` per point.
    coords: Vec<u64>,
    /// Raw value records, `elem_size` bytes per point.
    values: Vec<u8>,
    /// The WAL blob covering this batch, if ingest was WAL-protected.
    wal: Option<String>,
}

/// Address-ordered, deduplicated view of the buffered points at one
/// instant. Within the map, the *latest* append wins — the buffer's
/// last-write-wins contract — and `raw_points` remembers how many raw
/// (pre-dedup) points the view covers so a flush can drain exactly them.
#[derive(Debug, Default)]
pub struct BufferSnapshot {
    /// `linear address → (coordinate, value record)`, later appends
    /// having replaced earlier ones.
    pub points: BTreeMap<u64, (Vec<u64>, Vec<u8>)>,
    /// Raw appended points (duplicates included) this snapshot covers.
    pub raw_points: usize,
}

impl BufferSnapshot {
    /// Number of distinct buffered points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the snapshot holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Cheap occupancy summary used by flush-threshold checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferStats {
    /// Raw appended points currently buffered (duplicates included).
    pub points: usize,
    /// Buffered value payload in bytes.
    pub value_bytes: usize,
    /// Acked batches currently buffered.
    pub batches: usize,
}

#[derive(Default)]
struct Inner {
    batches: Vec<Batch>,
    points: usize,
    value_bytes: usize,
    /// Value bytes admitted (reserved) but not yet appended — in flight
    /// between admission control and the WAL ack. Counted against the
    /// buffer's byte cap so concurrent ingests cannot collectively
    /// overshoot it.
    reserved_bytes: usize,
    first_append: Option<Instant>,
    /// Cached snapshot; `None` after any append or drain.
    snapshot: Option<Arc<BufferSnapshot>>,
}

/// The streaming-ingest write buffer: appended batches on one side, an
/// atomically swappable read [`BufferSnapshot`] on the other.
#[derive(Default)]
pub struct WriteBuffer {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for WriteBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("WriteBuffer")
            .field("points", &stats.points)
            .field("value_bytes", &stats.value_bytes)
            .field("batches", &stats.batches)
            .finish()
    }
}

impl WriteBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        WriteBuffer::default()
    }

    /// Append one acked batch. `addrs`, `coords`, and `values` must agree
    /// on the point count (the engine validates shapes before acking);
    /// `wal` names the WAL blob that made the batch durable, if any. Any
    /// reservation taken for these bytes ([`try_reserve`]) is consumed.
    ///
    /// [`try_reserve`]: WriteBuffer::try_reserve
    pub fn append(&self, addrs: Vec<u64>, coords: Vec<u64>, values: Vec<u8>, wal: Option<String>) {
        if addrs.is_empty() {
            return;
        }
        let mut inner = self.inner.lock();
        inner.points += addrs.len();
        inner.value_bytes += values.len();
        inner.reserved_bytes = inner.reserved_bytes.saturating_sub(values.len());
        inner.first_append.get_or_insert_with(Instant::now);
        inner.snapshot = None;
        inner.batches.push(Batch {
            addrs,
            coords,
            values,
            wal,
        });
    }

    /// Atomically admit `bytes` of incoming value payload against `cap`:
    /// succeeds (and reserves the bytes) only when appended plus already
    /// reserved bytes would stay within the cap. The reservation is
    /// consumed by the matching [`append`] or returned by
    /// [`cancel_reservation`] when the ack fails; a cap of `0` means
    /// unlimited. Check-and-reserve happens under one lock, so concurrent
    /// ingests can never collectively overshoot the cap.
    ///
    /// [`append`]: WriteBuffer::append
    /// [`cancel_reservation`]: WriteBuffer::cancel_reservation
    pub fn try_reserve(&self, bytes: usize, cap: usize) -> bool {
        let mut inner = self.inner.lock();
        if cap > 0
            && inner
                .value_bytes
                .saturating_add(inner.reserved_bytes)
                .saturating_add(bytes)
                > cap
        {
            return false;
        }
        inner.reserved_bytes += bytes;
        true
    }

    /// Return a reservation whose batch will never be appended (the WAL
    /// ack failed after admission).
    pub fn cancel_reservation(&self, bytes: usize) {
        let mut inner = self.inner.lock();
        inner.reserved_bytes = inner.reserved_bytes.saturating_sub(bytes);
    }

    /// Current occupancy.
    pub fn stats(&self) -> BufferStats {
        let inner = self.inner.lock();
        BufferStats {
            points: inner.points,
            value_bytes: inner.value_bytes,
            batches: inner.batches.len(),
        }
    }

    /// How long the oldest buffered point has been waiting, or `None`
    /// when the buffer is empty. The scheduler's staleness flush keys off
    /// this.
    pub fn age(&self) -> Option<Duration> {
        self.inner.lock().first_append.map(|t| t.elapsed())
    }

    /// Buffered batches still covered by a live WAL blob — the buffer's
    /// share of the WAL-backlog gauge (the engine adds blobs queued for
    /// deletion retry).
    pub fn wal_backlog(&self) -> usize {
        self.inner
            .lock()
            .batches
            .iter()
            .filter(|b| b.wal.is_some())
            .count()
    }

    /// The current read snapshot. Rebuilt (and cached) only when appends
    /// or drains invalidated the previous one; otherwise this is one
    /// `Arc` clone under a short lock hold.
    pub fn snapshot(&self) -> Arc<BufferSnapshot> {
        let mut inner = self.inner.lock();
        if let Some(snap) = &inner.snapshot {
            return Arc::clone(snap);
        }
        let mut points = BTreeMap::new();
        let mut raw = 0usize;
        for batch in &inner.batches {
            let ndim = if batch.addrs.is_empty() {
                0
            } else {
                batch.coords.len() / batch.addrs.len()
            };
            let elem = if batch.addrs.is_empty() {
                0
            } else {
                batch.values.len() / batch.addrs.len()
            };
            for (i, &addr) in batch.addrs.iter().enumerate() {
                let coord = batch.coords[i * ndim..(i + 1) * ndim].to_vec();
                let record = batch.values[i * elem..(i + 1) * elem].to_vec();
                points.insert(addr, (coord, record));
                raw += 1;
            }
        }
        let snap = Arc::new(BufferSnapshot {
            points,
            raw_points: raw,
        });
        inner.snapshot = Some(Arc::clone(&snap));
        snap
    }

    /// Retire the batches a flushed snapshot covered: drop the first
    /// `raw_points` appended points and return the WAL names that were
    /// protecting them (for deletion). Appends are atomic, a snapshot is
    /// taken under the same lock, and flushes are serialized — so
    /// `raw_points` always lands on a batch boundary; a mismatch is an
    /// internal bug and panics rather than silently dropping acked data.
    pub fn drain(&self, raw_points: usize) -> Vec<String> {
        if raw_points == 0 {
            return Vec::new();
        }
        let mut inner = self.inner.lock();
        let mut remaining = raw_points;
        let mut covered = 0usize;
        for batch in &inner.batches {
            if remaining == 0 {
                break;
            }
            assert!(
                batch.addrs.len() <= remaining,
                "drain of {raw_points} points is not batch-aligned"
            );
            remaining -= batch.addrs.len();
            covered += 1;
        }
        assert_eq!(remaining, 0, "drain of {raw_points} points exceeds buffer");
        let mut wals = Vec::new();
        let drained: Vec<Batch> = inner.batches.drain(..covered).collect();
        for batch in drained {
            inner.points -= batch.addrs.len();
            inner.value_bytes -= batch.values.len();
            if let Some(w) = batch.wal {
                wals.push(w);
            }
        }
        if inner.batches.is_empty() {
            inner.first_append = None;
        } else {
            // The remaining batches arrived during the flush; their wait
            // clock starts now rather than inheriting the flushed head's.
            inner.first_append = Some(Instant::now());
        }
        inner.snapshot = None;
        wals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_buffer_is_cheap() {
        let buf = WriteBuffer::new();
        assert_eq!(
            buf.stats(),
            BufferStats {
                points: 0,
                value_bytes: 0,
                batches: 0
            }
        );
        assert!(buf.age().is_none());
        let snap = buf.snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.raw_points, 0);
        assert!(buf.drain(0).is_empty());
    }

    #[test]
    fn snapshot_orders_by_address_and_later_append_wins() {
        let buf = WriteBuffer::new();
        buf.append(
            vec![9, 3],
            vec![0, 9, 0, 3],
            vec![1, 1, 1, 1, 2, 2, 2, 2],
            Some("wal-a".into()),
        );
        buf.append(vec![3], vec![0, 3], vec![7, 7, 7, 7], Some("wal-b".into()));
        let snap = buf.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap.raw_points, 3);
        let addrs: Vec<u64> = snap.points.keys().copied().collect();
        assert_eq!(addrs, vec![3, 9]);
        // Address 3 was written twice; the later batch's record wins.
        assert_eq!(snap.points[&3].1, vec![7, 7, 7, 7]);
        assert_eq!(snap.points[&3].0, vec![0, 3]);
    }

    #[test]
    fn snapshot_is_cached_until_invalidated() {
        let buf = WriteBuffer::new();
        buf.append(vec![1], vec![1], vec![5; 8], None);
        let a = buf.snapshot();
        let b = buf.snapshot();
        assert!(Arc::ptr_eq(&a, &b), "unchanged buffer reuses the snapshot");
        buf.append(vec![2], vec![2], vec![6; 8], None);
        let c = buf.snapshot();
        assert!(!Arc::ptr_eq(&a, &c), "append swaps in a fresh snapshot");
        assert_eq!(c.len(), 2);
        // The old snapshot is immutable — readers holding it are unaffected.
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn drain_is_batch_aligned_and_returns_wal_names() {
        let buf = WriteBuffer::new();
        buf.append(vec![1, 2], vec![1, 2], vec![0; 16], Some("wal-1".into()));
        buf.append(vec![3], vec![3], vec![0; 8], None);
        buf.append(vec![4], vec![4], vec![0; 8], Some("wal-3".into()));
        assert_eq!(buf.wal_backlog(), 2, "two batches are WAL-protected");
        let snap_raw = 3; // as if a flush snapshotted the first two batches
        let wals = buf.drain(snap_raw);
        assert_eq!(wals, vec!["wal-1".to_string()]);
        assert_eq!(buf.wal_backlog(), 1);
        let stats = buf.stats();
        assert_eq!(stats.points, 1);
        assert_eq!(stats.batches, 1);
        assert!(buf.age().is_some(), "a surviving batch keeps the clock");
        let wals = buf.drain(1);
        assert_eq!(wals, vec!["wal-3".to_string()]);
        assert!(buf.age().is_none());
        assert_eq!(buf.stats().points, 0);
    }

    #[test]
    fn reservations_count_against_the_cap_until_consumed_or_cancelled() {
        let buf = WriteBuffer::new();
        // A zero cap is unlimited.
        assert!(buf.try_reserve(usize::MAX, 0));
        buf.cancel_reservation(usize::MAX);
        // Reservations admit atomically against the cap.
        assert!(buf.try_reserve(6, 10));
        assert!(!buf.try_reserve(5, 10), "6 reserved + 5 > 10");
        assert!(buf.try_reserve(4, 10));
        // Appending consumes the matching reservation, so appended bytes
        // are not double-counted.
        buf.append(vec![1], vec![1], vec![0; 6], None);
        assert_eq!(buf.stats().value_bytes, 6);
        assert!(!buf.try_reserve(1, 10), "6 appended + 4 reserved = cap");
        buf.cancel_reservation(4);
        assert!(buf.try_reserve(4, 10));
        buf.cancel_reservation(4);
        // Draining frees appended bytes for new admissions.
        buf.drain(1);
        assert!(buf.try_reserve(10, 10));
    }

    #[test]
    #[should_panic(expected = "not batch-aligned")]
    fn misaligned_drain_panics() {
        let buf = WriteBuffer::new();
        buf.append(vec![1, 2], vec![1, 2], vec![0; 16], None);
        buf.drain(1);
    }
}
