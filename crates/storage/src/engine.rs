//! The fragment storage engine — Algorithm 3's WRITE and READ.
//!
//! WRITE packages a coordinate buffer with the configured organization,
//! reorganizes the value payload by the build's `map`, concatenates
//! `index ∥ values` into a fragment, and writes it to the backend —
//! accumulating the Build / Reorg. / Write / Others phase breakdown of
//! Table III as it goes.
//!
//! READ discovers all fragments whose bounding box overlaps the query's,
//! runs the organization-specific read against each, gathers
//! `⟨coord, value⟩` hits, and merges them sorted by linear address
//! (Algorithm 3 line 12).

use crate::backend::StorageBackend;
use crate::codec::Codec;
use crate::error::{Result, StorageError};
use crate::fragment::{decode_fragment, decode_meta, encode_fragment, FragmentMeta};
use artsparse_core::FormatKind;
use artsparse_metrics::{OpCounter, PhaseTimer, WriteBreakdown, WritePhase};
use artsparse_tensor::value::Element;
use artsparse_tensor::{CoordBuffer, Region, Shape};
use std::sync::atomic::{AtomicU64, Ordering};

/// Prefix + suffix of fragment blob names.
const FRAG_PREFIX: &str = "frag-";
const FRAG_SUFFIX: &str = ".asf";

/// A sparse tensor stored as fragments on a backend.
pub struct StorageEngine<B: StorageBackend> {
    backend: B,
    kind: FormatKind,
    shape: Shape,
    elem_size: u32,
    next_id: AtomicU64,
    counter: OpCounter,
    index_codec: Codec,
    value_codec: Codec,
}

/// Outcome of one WRITE call.
#[derive(Debug, Clone)]
pub struct WriteReport {
    /// Name of the fragment written.
    pub fragment: String,
    /// Phase breakdown (one Table III column).
    pub breakdown: WriteBreakdown,
    /// Bytes of encoded index.
    pub index_bytes: usize,
    /// Bytes of value payload.
    pub value_bytes: usize,
    /// Total fragment size (what Fig. 4 reports).
    pub total_bytes: usize,
    /// Points written.
    pub n_points: usize,
}

/// One matched point from a READ.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadHit {
    /// Index into the query buffer.
    pub query_index: usize,
    /// Row-major linear address (the merge key of Algorithm 3 line 12).
    pub addr: u64,
    /// The coordinate.
    pub coord: Vec<u64>,
    /// The raw value record.
    pub value: Vec<u8>,
    /// Which fragment supplied it.
    pub fragment: String,
}

/// Outcome of one READ call.
#[derive(Debug, Clone, Default)]
pub struct ReadResult {
    /// Hits sorted by linear address (ties: fragment write order).
    pub hits: Vec<ReadHit>,
    /// Fragments whose metadata was examined.
    pub fragments_scanned: usize,
    /// Fragments whose bounding box overlapped the query.
    pub fragments_matched: usize,
}

impl ReadResult {
    /// Align hits with the query buffer: one `Option<V>` per query, the
    /// most recently written fragment winning on coordinate collisions.
    pub fn to_values<V: Element>(&self, n_queries: usize) -> Vec<Option<V>> {
        let mut out: Vec<Option<V>> = vec![None; n_queries];
        // Hits are sorted by (addr, fragment order); iterating in order and
        // overwriting leaves the latest fragment's value in place.
        for hit in &self.hits {
            if hit.value.len() == V::SIZE {
                out[hit.query_index] = Some(V::read_le(&hit.value));
            }
        }
        out
    }
}

impl<B: StorageBackend> StorageEngine<B> {
    /// Open an engine over a backend. Existing fragments are kept; new
    /// fragments continue the id sequence.
    pub fn open(backend: B, kind: FormatKind, shape: Shape, elem_size: u32) -> Result<Self> {
        let mut max_id = 0u64;
        for name in backend.list()? {
            if let Some(id) = parse_fragment_name(&name) {
                max_id = max_id.max(id);
            }
        }
        Ok(StorageEngine {
            backend,
            kind,
            shape,
            elem_size,
            next_id: AtomicU64::new(max_id + 1),
            counter: OpCounter::new(),
            index_codec: Codec::None,
            value_codec: Codec::None,
        })
    }

    /// Apply compression codecs to new fragments (§II: organizations are
    /// orthogonal to compression — pick the organization first, compress
    /// second). Reads handle any codec regardless of this setting, since
    /// fragments self-describe.
    pub fn with_compression(mut self, index_codec: Codec, value_codec: Codec) -> Self {
        self.index_codec = index_codec;
        self.value_codec = value_codec;
        self
    }

    /// The organization used for new fragments.
    pub fn kind(&self) -> FormatKind {
        self.kind
    }

    /// The global tensor shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The backend (e.g. to inspect simulated-disk statistics).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Consume the engine, recovering the backend (e.g. to reopen it under
    /// a different organization — fragments self-describe, so mixed-format
    /// stores read fine).
    pub fn into_backend(self) -> B {
        self.backend
    }

    /// Operation counter shared by all builds/reads on this engine.
    pub fn counter(&self) -> &OpCounter {
        &self.counter
    }

    /// Names of all fragments, in write order.
    pub fn fragments(&self) -> Result<Vec<String>> {
        let mut names: Vec<String> = self
            .backend
            .list()?
            .into_iter()
            .filter(|n| parse_fragment_name(n).is_some())
            .collect();
        names.sort();
        Ok(names)
    }

    /// Total bytes stored across all fragments (Fig. 4's metric).
    pub fn total_stored_bytes(&self) -> Result<u64> {
        let mut total = 0;
        for name in self.fragments()? {
            total += self.backend.size(&name)?;
        }
        Ok(total)
    }

    /// Algorithm 3 WRITE: package `coords`/`values` into a new fragment.
    ///
    /// `values` is an opaque payload of `elem_size`-byte records, one per
    /// point, in the same order as `coords`.
    pub fn write(&self, coords: &CoordBuffer, values: &[u8]) -> Result<WriteReport> {
        let mut timer = PhaseTimer::new();

        // -- Others: validation and metadata ---------------------------
        timer.enter(WritePhase::Others);
        coords.check_against(&self.shape)?;
        if values.len() != coords.len() * self.elem_size as usize {
            return Err(StorageError::Mismatch {
                reason: format!(
                    "{} value bytes for {} points of {} bytes each",
                    values.len(),
                    coords.len(),
                    self.elem_size
                ),
            });
        }
        let bbox = coords.bounding_box();
        let org = self.kind.create();

        // -- Build: construct the organization -------------------------
        let built = timer.time(WritePhase::Build, || {
            org.build(coords, &self.shape, &self.counter)
        })?;

        // -- Reorg: permute values by the map ---------------------------
        let values_reorg = timer.time(WritePhase::Reorg, || {
            built.reorganize_values(values, self.elem_size as usize)
        });

        // -- Others: concatenate (and optionally compress) b_frag -------
        timer.enter(WritePhase::Others);
        let frag = encode_fragment(
            self.kind,
            &self.shape,
            coords.len() as u64,
            self.elem_size,
            bbox.as_ref(),
            &built.index,
            &values_reorg,
            self.index_codec,
            self.value_codec,
        );
        let name = format_fragment_name(self.next_id.fetch_add(1, Ordering::SeqCst));

        // -- Write: persist the fragment (line 7) -----------------------
        timer.time(WritePhase::Write, || self.backend.put(&name, &frag))?;

        Ok(WriteReport {
            fragment: name,
            breakdown: timer.finish(),
            index_bytes: built.index.len(),
            value_bytes: values_reorg.len(),
            total_bytes: frag.len(),
            n_points: coords.len(),
        })
    }

    /// Typed WRITE convenience.
    pub fn write_points<V: Element>(
        &self,
        coords: &CoordBuffer,
        values: &[V],
    ) -> Result<WriteReport> {
        debug_assert_eq!(V::SIZE, self.elem_size as usize);
        self.write(coords, &artsparse_tensor::value::pack(values))
    }

    /// Algorithm 3 READ: query every point of `queries` across all
    /// overlapping fragments, merging hits by linear address.
    pub fn read(&self, queries: &CoordBuffer) -> Result<ReadResult> {
        let mut result = ReadResult::default();
        if queries.is_empty() {
            return Ok(result);
        }
        let qbbox = queries
            .bounding_box()
            .expect("non-empty queries have a bbox");

        for name in self.fragments()? {
            result.fragments_scanned += 1;
            // Line 4: discovery — peek only the header.
            let header = self
                .backend
                .get_prefix(&name, FragmentMeta::header_len(self.shape.ndim()))?;
            let meta = decode_meta(&name, &header)?;
            if meta.shape.ndim() != queries.ndim() {
                return Err(StorageError::corrupt(
                    &name,
                    "fragment dimensionality differs from query",
                ));
            }
            let overlaps = meta
                .bbox
                .as_ref()
                .is_some_and(|b| b.intersects(&qbbox));
            if !overlaps {
                continue;
            }
            result.fragments_matched += 1;

            // Lines 7–10: fetch, unpack, organization-specific read.
            let bytes = self.backend.get(&name)?;
            let (meta, index, values) = decode_fragment(&name, &bytes)?;
            let org = meta.kind.create();
            let slots = org.read(&index, queries, &self.counter)?;
            let elem = meta.elem_size as usize;
            for (qi, slot) in slots.into_iter().enumerate() {
                let Some(slot) = slot else { continue };
                let start = slot as usize * elem;
                let Some(record) = values.get(start..start + elem) else {
                    return Err(StorageError::corrupt(
                        &name,
                        format!("value slot {slot} beyond payload"),
                    ));
                };
                let coord = queries.point(qi).to_vec();
                let addr = self.shape.linearize(&coord)?;
                result.hits.push(ReadHit {
                    query_index: qi,
                    addr,
                    coord,
                    value: record.to_vec(),
                    fragment: name.clone(),
                });
            }
        }

        // Line 12: sort by linear address (stable: fragment order on ties).
        result.hits.sort_by_key(|a| a.addr);
        Ok(result)
    }

    /// Typed READ aligned with the query buffer.
    pub fn read_values<V: Element>(&self, queries: &CoordBuffer) -> Result<Vec<Option<V>>> {
        debug_assert_eq!(V::SIZE, self.elem_size as usize);
        Ok(self.read(queries)?.to_values(queries.len()))
    }

    /// Read every stored point in `region` (the §III evaluation read: the
    /// query enumerates all cells of the region).
    pub fn read_region(&self, region: &Region) -> Result<ReadResult> {
        self.read(&region.to_coords())
    }
}

/// Aggregate statistics over a fragment store (from header peeks only —
/// no payload is fetched).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StoreStats {
    /// Number of fragments.
    pub fragments: usize,
    /// Total stored points (before cross-fragment dedup).
    pub total_points: u64,
    /// Total bytes on the device.
    pub total_bytes: u64,
    /// Fragments per organization name.
    pub by_format: std::collections::BTreeMap<String, usize>,
    /// Fragments with a compression codec on either payload.
    pub compressed_fragments: usize,
    /// Sum of stored (possibly compressed) index bytes.
    pub index_bytes: u64,
    /// Sum of uncompressed index bytes.
    pub index_raw_bytes: u64,
}

impl<B: StorageBackend> StorageEngine<B> {
    /// Summarize the store by peeking every fragment's header.
    pub fn stats(&self) -> Result<StoreStats> {
        let mut stats = StoreStats::default();
        for name in self.fragments()? {
            let header = self
                .backend
                .get_prefix(&name, FragmentMeta::header_len(self.shape.ndim()))?;
            let meta = decode_meta(&name, &header)?;
            stats.fragments += 1;
            stats.total_points += meta.n;
            stats.total_bytes += self.backend.size(&name)?;
            *stats
                .by_format
                .entry(meta.kind.name().to_string())
                .or_default() += 1;
            if meta.index_codec != Codec::None || meta.value_codec != Codec::None {
                stats.compressed_fragments += 1;
            }
            stats.index_bytes += meta.index_len;
            stats.index_raw_bytes += meta.index_raw_len;
        }
        Ok(stats)
    }
}

/// Outcome of a consolidation pass.
#[derive(Debug, Clone)]
pub struct ConsolidateReport {
    /// Fragments merged (and deleted).
    pub merged_fragments: usize,
    /// Points in the consolidated fragment (after dedup).
    pub n_points: usize,
    /// Store size before.
    pub before_bytes: u64,
    /// Store size after.
    pub after_bytes: u64,
    /// Name of the new fragment (`None` if nothing needed merging).
    pub fragment: Option<String>,
}

impl<B: StorageBackend> StorageEngine<B> {
    /// Merge every fragment into one (TileDB-style consolidation).
    ///
    /// Each fragment's index is enumerated back into coordinates, values
    /// are deduplicated with the same last-writer-wins rule as
    /// [`StorageEngine::read`], and one new fragment is written under the
    /// engine's current organization and codecs; the old fragments are
    /// deleted. Reads over many small fragments pay per-fragment
    /// discovery and decode costs — consolidation removes them.
    pub fn consolidate(&self) -> Result<ConsolidateReport> {
        let names = self.fragments()?;
        let before_bytes = self.total_stored_bytes()?;
        if names.len() <= 1 {
            return Ok(ConsolidateReport {
                merged_fragments: names.len(),
                n_points: 0,
                before_bytes,
                after_bytes: before_bytes,
                fragment: None,
            });
        }

        // Gather addr → (coord, record) with the engine's exact read
        // precedence: within a fragment the *lowest* slot wins (every
        // format's read scans/searches to the first matching record);
        // across fragments the most recently written one wins. BTreeMap
        // gives the canonical linear-address order for the new fragment.
        let mut merged: std::collections::BTreeMap<u64, (Vec<u64>, Vec<u8>)> =
            std::collections::BTreeMap::new();
        for name in &names {
            let bytes = self.backend.get(name)?;
            let (meta, index, values) = decode_fragment(name, &bytes)?;
            if meta.shape != self.shape {
                return Err(StorageError::Mismatch {
                    reason: format!(
                        "fragment {name} has shape {}, engine has {}",
                        meta.shape, self.shape
                    ),
                });
            }
            if meta.elem_size != self.elem_size {
                return Err(StorageError::Mismatch {
                    reason: format!(
                        "fragment {name} stores {}-byte records, engine {}",
                        meta.elem_size, self.elem_size
                    ),
                });
            }
            let org = meta.kind.create();
            let coords = org.enumerate(&index, &self.counter)?;
            let elem = meta.elem_size as usize;
            let mut this_fragment: std::collections::BTreeMap<u64, (Vec<u64>, Vec<u8>)> =
                std::collections::BTreeMap::new();
            for (slot, p) in coords.iter().enumerate() {
                let addr = self.shape.linearize(p)?;
                let record = values
                    .get(slot * elem..(slot + 1) * elem)
                    .ok_or_else(|| {
                        StorageError::corrupt(name, "enumerated more slots than records")
                    })?
                    .to_vec();
                // First (lowest) slot wins within the fragment.
                this_fragment.entry(addr).or_insert((p.to_vec(), record));
            }
            // Later fragments override earlier ones.
            merged.extend(this_fragment);
        }

        let mut coords = CoordBuffer::with_capacity(self.shape.ndim(), merged.len());
        let mut payload = Vec::with_capacity(merged.len() * self.elem_size as usize);
        for (coord, record) in merged.values() {
            coords.push(coord)?;
            payload.extend_from_slice(record);
        }
        let report = self.write(&coords, &payload)?;
        for name in &names {
            self.backend.delete(name)?;
        }
        Ok(ConsolidateReport {
            merged_fragments: names.len(),
            n_points: coords.len(),
            before_bytes,
            after_bytes: self.total_stored_bytes()?,
            fragment: Some(report.fragment),
        })
    }

    /// Enumerate every stored point across all fragments (post-dedup), in
    /// linear-address order, with its value record.
    pub fn export(&self) -> Result<(CoordBuffer, Vec<u8>)> {
        let mut merged: std::collections::BTreeMap<u64, (Vec<u64>, Vec<u8>)> =
            std::collections::BTreeMap::new();
        for name in self.fragments()? {
            let bytes = self.backend.get(&name)?;
            let (meta, index, values) = decode_fragment(&name, &bytes)?;
            let org = meta.kind.create();
            let coords = org.enumerate(&index, &self.counter)?;
            let elem = meta.elem_size as usize;
            let mut this_fragment: std::collections::BTreeMap<u64, (Vec<u64>, Vec<u8>)> =
                std::collections::BTreeMap::new();
            for (slot, p) in coords.iter().enumerate() {
                let addr = self.shape.linearize(p)?;
                let record = values
                    .get(slot * elem..(slot + 1) * elem)
                    .ok_or_else(|| {
                        StorageError::corrupt(&name, "enumerated more slots than records")
                    })?
                    .to_vec();
                // Same precedence as read: lowest slot within a fragment…
                this_fragment.entry(addr).or_insert((p.to_vec(), record));
            }
            // …latest fragment across fragments.
            merged.extend(this_fragment);
        }
        let mut coords = CoordBuffer::with_capacity(self.shape.ndim(), merged.len());
        let mut payload = Vec::new();
        for (coord, record) in merged.values() {
            coords.push(coord)?;
            payload.extend_from_slice(record);
        }
        Ok((coords, payload))
    }
}

fn format_fragment_name(id: u64) -> String {
    format!("{FRAG_PREFIX}{id:08}{FRAG_SUFFIX}")
}

fn parse_fragment_name(name: &str) -> Option<u64> {
    name.strip_prefix(FRAG_PREFIX)?
        .strip_suffix(FRAG_SUFFIX)?
        .parse()
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    fn engine(kind: FormatKind) -> StorageEngine<MemBackend> {
        StorageEngine::open(
            MemBackend::new(),
            kind,
            Shape::new(vec![16, 16]).unwrap(),
            8,
        )
        .unwrap()
    }

    fn coords(pts: &[[u64; 2]]) -> CoordBuffer {
        CoordBuffer::from_points(2, pts).unwrap()
    }

    #[test]
    fn write_then_read_roundtrip_every_format() {
        for kind in FormatKind::ALL {
            let e = engine(kind);
            let c = coords(&[[1, 2], [5, 5], [15, 0]]);
            let report = e.write_points::<f64>(&c, &[1.0, 2.0, 3.0]).unwrap();
            assert_eq!(report.n_points, 3);
            assert!(report.total_bytes > 0);
            let q = coords(&[[5, 5], [0, 0], [1, 2]]);
            let vals = e.read_values::<f64>(&q).unwrap();
            assert_eq!(vals, vec![Some(2.0), None, Some(1.0)], "{kind}");
        }
    }

    #[test]
    fn multi_fragment_merge_sorted_by_linear_address() {
        let e = engine(FormatKind::Linear);
        e.write_points::<f64>(&coords(&[[3, 3], [0, 1]]), &[33.0, 1.0])
            .unwrap();
        e.write_points::<f64>(&coords(&[[1, 0], [9, 9]]), &[16.0, 99.0])
            .unwrap();
        let q = coords(&[[9, 9], [0, 1], [1, 0], [3, 3]]);
        let r = e.read(&q).unwrap();
        assert_eq!(r.fragments_matched, 2);
        let addrs: Vec<u64> = r.hits.iter().map(|h| h.addr).collect();
        assert_eq!(addrs, vec![1, 16, 51, 153]);
    }

    #[test]
    fn later_fragment_wins_on_collision() {
        let e = engine(FormatKind::Csf);
        e.write_points::<f64>(&coords(&[[4, 4]]), &[1.0]).unwrap();
        e.write_points::<f64>(&coords(&[[4, 4]]), &[2.0]).unwrap();
        let vals = e.read_values::<f64>(&coords(&[[4, 4]])).unwrap();
        assert_eq!(vals, vec![Some(2.0)]);
    }

    #[test]
    fn bbox_pruning_skips_disjoint_fragments() {
        let e = engine(FormatKind::GcsrPP);
        e.write_points::<f64>(&coords(&[[0, 0], [1, 1]]), &[1.0, 2.0])
            .unwrap();
        e.write_points::<f64>(&coords(&[[14, 14], [15, 15]]), &[3.0, 4.0])
            .unwrap();
        let r = e.read(&coords(&[[0, 1], [1, 1]])).unwrap();
        assert_eq!(r.fragments_scanned, 2);
        assert_eq!(r.fragments_matched, 1);
    }

    #[test]
    fn region_read_matches_paper_semantics() {
        let e = engine(FormatKind::GcscPP);
        e.write_points::<f64>(&coords(&[[2, 2], [3, 9], [8, 8]]), &[1.0, 2.0, 3.0])
            .unwrap();
        let region = Region::from_corners(&[2, 2], &[4, 9]).unwrap();
        let r = e.read_region(&region).unwrap();
        let found: Vec<Vec<u64>> = r.hits.iter().map(|h| h.coord.clone()).collect();
        assert_eq!(found, vec![vec![2, 2], vec![3, 9]]);
    }

    #[test]
    fn write_breakdown_phases_are_populated() {
        let e = engine(FormatKind::GcsrPP);
        let pts: Vec<[u64; 2]> = (0..16).flat_map(|r| (0..16).map(move |c| [r, c])).collect();
        let vals: Vec<f64> = (0..256).map(|i| i as f64).collect();
        let report = e
            .write_points::<f64>(&CoordBuffer::from_points(2, &pts).unwrap(), &vals)
            .unwrap();
        let b = report.breakdown;
        assert!(b.build > 0.0);
        assert!(b.sum() >= b.build + b.write);
        assert!(report.index_bytes > 0 && report.value_bytes == 2048);
    }

    #[test]
    fn rejects_mismatched_values() {
        let e = engine(FormatKind::Coo);
        let c = coords(&[[1, 1]]);
        assert!(matches!(
            e.write(&c, &[0u8; 4]),
            Err(StorageError::Mismatch { .. })
        ));
    }

    #[test]
    fn rejects_out_of_shape_coords() {
        let e = engine(FormatKind::Coo);
        let c = coords(&[[99, 1]]);
        assert!(e.write(&c, &[0u8; 8]).is_err());
    }

    #[test]
    fn empty_write_and_empty_read() {
        let e = engine(FormatKind::Linear);
        let report = e.write_points::<f64>(&CoordBuffer::new(2), &[]).unwrap();
        assert_eq!(report.n_points, 0);
        // Empty fragment has no bbox, so reads never match it.
        let r = e.read(&coords(&[[1, 1]])).unwrap();
        assert_eq!(r.fragments_matched, 0);
        // Empty query short-circuits.
        let r = e.read(&CoordBuffer::new(2)).unwrap();
        assert!(r.hits.is_empty());
    }

    #[test]
    fn id_sequence_continues_after_reopen() {
        let backend = MemBackend::new();
        let shape = Shape::new(vec![8, 8]).unwrap();
        let e1 = StorageEngine::open(backend, FormatKind::Coo, shape.clone(), 8).unwrap();
        let r1 = e1
            .write_points::<f64>(&coords(&[[1, 1]]), &[1.0])
            .unwrap();
        let backend = e1.backend; // move out (MemBackend owns the blobs)
        let e2 = StorageEngine::open(backend, FormatKind::Coo, shape, 8).unwrap();
        let r2 = e2
            .write_points::<f64>(&coords(&[[2, 2]]), &[2.0])
            .unwrap();
        assert!(r2.fragment > r1.fragment);
        assert_eq!(e2.fragments().unwrap().len(), 2);
        assert!(e2.total_stored_bytes().unwrap() > 0);
    }

    #[test]
    fn corrupt_fragment_surfaces_as_error() {
        let e = engine(FormatKind::Linear);
        e.write_points::<f64>(&coords(&[[1, 1]]), &[1.0]).unwrap();
        let name = e.fragments().unwrap()[0].clone();
        let mut bytes = e.backend().get(&name).unwrap();
        bytes.truncate(bytes.len() - 3);
        e.backend().put(&name, &bytes).unwrap();
        assert!(e.read(&coords(&[[1, 1]])).is_err());
    }

    #[test]
    fn stats_summarize_the_store() {
        let backend = MemBackend::new();
        let shape = Shape::new(vec![16, 16]).unwrap();
        let e1 = StorageEngine::open(backend, FormatKind::Coo, shape.clone(), 8).unwrap();
        e1.write_points::<f64>(&coords(&[[1, 1], [2, 2]]), &[1.0, 2.0])
            .unwrap();
        let e2 = StorageEngine::open(e1.into_backend(), FormatKind::Csf, shape, 8)
            .unwrap()
            .with_compression(Codec::DeltaVarint, Codec::None);
        e2.write_points::<f64>(&coords(&[[3, 3]]), &[3.0]).unwrap();
        let s = e2.stats().unwrap();
        assert_eq!(s.fragments, 2);
        assert_eq!(s.total_points, 3);
        assert_eq!(s.by_format["COO"], 1);
        assert_eq!(s.by_format["CSF"], 1);
        assert_eq!(s.compressed_fragments, 1);
        assert!(s.total_bytes > 0);
        assert!(s.index_bytes <= s.index_raw_bytes + s.index_bytes);
        assert_eq!(s.total_bytes, e2.total_stored_bytes().unwrap());
    }

    #[test]
    fn fragment_names_roundtrip() {
        let n = format_fragment_name(42);
        assert_eq!(parse_fragment_name(&n), Some(42));
        assert_eq!(parse_fragment_name("other.bin"), None);
        assert_eq!(parse_fragment_name("frag-xx.asf"), None);
    }

    #[test]
    fn mixed_format_fragments_read_together() {
        // Fragments self-describe: an engine can read fragments written
        // under a different organization.
        let backend = MemBackend::new();
        let shape = Shape::new(vec![16, 16]).unwrap();
        let e_coo = StorageEngine::open(backend, FormatKind::Coo, shape.clone(), 8).unwrap();
        e_coo
            .write_points::<f64>(&coords(&[[1, 1]]), &[1.0])
            .unwrap();
        let e_csf = StorageEngine::open(e_coo.backend, FormatKind::Csf, shape, 8).unwrap();
        e_csf
            .write_points::<f64>(&coords(&[[2, 2]]), &[2.0])
            .unwrap();
        let vals = e_csf
            .read_values::<f64>(&coords(&[[1, 1], [2, 2]]))
            .unwrap();
        assert_eq!(vals, vec![Some(1.0), Some(2.0)]);
    }
}
