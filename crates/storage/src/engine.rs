//! The fragment storage engine — Algorithm 3's WRITE and READ.
//!
//! WRITE packages a coordinate buffer with the configured organization,
//! reorganizes the value payload by the build's `map`, concatenates
//! `index ∥ values` into a fragment, and writes it to the backend —
//! accumulating the Build / Reorg. / Write / Others phase breakdown of
//! Table III as it goes.
//!
//! READ runs a layered pipeline:
//!
//! 1. **catalog** — fragment metadata lives in the in-engine
//!    [`FragmentCatalog`], built once at open and maintained by
//!    write/consolidate/delete, so discovery costs no device traffic;
//! 2. **plan** — bounding-box pruning against the query box is a pure
//!    in-memory step ([`FragmentCatalog::plan`]);
//! 3. **fetch** — each planned fragment's index section is range-fetched
//!    first; only the value records its matched slots need follow
//!    (whole sections when compressed, coalesced record runs otherwise);
//! 4. **decode** — sections are decompressed and handed to the
//!    organization-specific read; decoded fragments can be kept resident
//!    in a bytes-bounded LRU ([`FragmentCache`]) for repeat reads;
//! 5. **merge** — per-fragment hits are gathered (in parallel across
//!    fragments) and merged sorted by linear address (Algorithm 3
//!    line 12), ties broken by fragment write order.
//!
//! Consolidate and export run over the same catalog/fetch/decode layers
//! through one shared fragment-scan path, so precedence rules cannot
//! drift between the three.

use crate::backend::StorageBackend;
use crate::cache::{DecodedFragment, FragmentCache};
use crate::catalog::{CatalogEntry, FragmentCatalog};
use crate::codec::Codec;
use crate::config::EngineConfig;
use crate::error::{FragmentSection, Result, StorageError};
use crate::fragment::{
    decode_fragment, decode_index_section, decode_meta, decode_value_section, encode_fragment,
    verify_section_checksum, FragmentMeta,
};
use crate::observe::RecordingBackend;
use artsparse_core::advisor::recommend_from_stats;
use artsparse_core::stats::SparsityStatsBuilder;
use artsparse_core::{convert, FormatKind};
use artsparse_metrics::{
    charge, current_trace_id, now_ns, IoStats, NoopRecorder, ObservabilityPlane, ObservedRecorder,
    OpCounter, PhaseTimer, Recorder, Severity, Span, SpanKind, SpanRecord, TelemetryRecorder,
    TelemetryReport, WriteBreakdown, WritePhase,
};
use artsparse_tensor::par;
use artsparse_tensor::value::Element;
use artsparse_tensor::{CoordBuffer, Region, Shape};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Prefix + suffix of fragment blob names.
const FRAG_PREFIX: &str = "frag-";
const FRAG_SUFFIX: &str = ".asf";

/// Suffix of staged (not yet committed) blobs. Staged names never parse
/// as fragment names, so `list`-based discovery, catalog reloads, and
/// recovery all treat them as invisible until the rename-commit.
const STAGING_SUFFIX: &str = ".tmp";

/// Prefix + suffix of consolidation tombstones: a durable record of the
/// delete set, written before the consolidated fragment commits so a
/// crash mid-consolidation is replayed (sources deleted) or discarded
/// (commit never happened) at the next open/refresh.
const TOMB_PREFIX: &str = "tomb-";
const TOMB_SUFFIX: &str = ".tsn";

/// Prefix + suffix of epoch claim markers. Each engine claims a unique
/// epoch at open with a create-exclusive put, and stamps it into every
/// fragment name it writes — two engines over one directory can race but
/// can never silently overwrite each other's fragments.
const EPOCH_PREFIX: &str = "epoch-";
const EPOCH_SUFFIX: &str = ".lck";

/// How many times a read re-plans when a planned fragment vanished
/// mid-flight (deleted or consolidated away by a concurrent writer)
/// before settling for skipping the vanished fragments.
const MAX_READ_REPLANS: usize = 3;

/// Identity of a fragment, encoded in (and recovered from) its name.
///
/// Names are fixed-width decimal, so lexicographic blob-name order — the
/// catalog's iteration order and therefore the engine's cross-fragment
/// precedence — equals `(seq, epoch, cgen)` order:
///
/// * `seq` is the per-store write sequence;
/// * `epoch` is the per-engine claim, disambiguating two engines that
///   allocate the same `seq` concurrently;
/// * `cgen` is the consolidation generation: a consolidated fragment
///   keeps the *highest sequence number of its sources* (it contains no
///   newer data than that), with `cgen` breaking the tie just above
///   them. A fragment written while consolidation was running gets a
///   higher `seq` and so keeps precedence over the consolidated output —
///   the TileDB-style rule that makes consolidation safe to race.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct FragmentId {
    seq: u64,
    epoch: u64,
    cgen: u32,
}

/// When range-fetching uncompressed value records, adjacent runs whose
/// gap is at most this many bytes are fetched as one request — each
/// request pays the device's per-operation latency, so small gaps are
/// cheaper to transfer than to split around.
const RUN_COALESCE_GAP_BYTES: u64 = 256;

/// Ceiling on ranged value requests per fragment. Past this, matched
/// slots are so scattered that one whole-section fetch is cheaper than
/// paying per-request latency for every little run.
const MAX_VALUE_RUNS: usize = 16;

/// Background-scheduler health the engine tracks on behalf of
/// [`IngestScheduler`](crate::scheduler::IngestScheduler): pass and
/// error counts, when the last pass ran, and the text + wall-clock time
/// of the most recent failure — so swallowed scheduler errors surface
/// through [`StorageEngine::stats`] and the live registry instead of
/// vanishing into a bare counter.
#[derive(Default)]
struct SchedulerHealth {
    runs: AtomicU64,
    errors: AtomicU64,
    /// Telemetry-clock nanoseconds of the most recent pass (0: never).
    last_run_ns: AtomicU64,
    /// Most recent failure: error chain text + unix milliseconds.
    last_error: parking_lot::Mutex<Option<(String, u64)>>,
}

/// Write-path health of the engine, driven by consecutive write
/// failures (see [`HealthConfig`](crate::config::HealthConfig)).
///
/// The ladder is `Healthy → Degraded → ReadOnly`; any successful write
/// (including a recovery probe) climbs straight back to `Healthy`. In
/// `ReadOnly` the engine refuses new writes with a typed
/// [`ReadOnly`](crate::error::StorageError::ReadOnly) error while reads
/// and every previously acked batch keep working; recovery probes test
/// the device so the engine heals automatically once the fault clears.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum HealthState {
    /// Writes are succeeding (or none have been attempted).
    #[default]
    Healthy,
    /// Recent writes failed past their retry budget; writes are still
    /// admitted but the engine is one step from read-only.
    Degraded,
    /// Too many consecutive write failures: new writes are refused,
    /// reads and acked batches are preserved, probes drive recovery.
    ReadOnly,
}

impl HealthState {
    /// Stable lowercase name (used in journal events and dashboards).
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::ReadOnly => "read-only",
        }
    }

    /// Numeric encoding of the state for the `artsparse_health_state`
    /// gauge (0 healthy, 1 degraded, 2 read-only).
    pub fn gauge_value(self) -> u8 {
        match self {
            HealthState::Healthy => 0,
            HealthState::Degraded => 1,
            HealthState::ReadOnly => 2,
        }
    }

    fn from_u32(v: u32) -> HealthState {
        match v {
            0 => HealthState::Healthy,
            1 => HealthState::Degraded,
            _ => HealthState::ReadOnly,
        }
    }
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Live write-path health counters: the state machine's current rung,
/// the consecutive-failure count driving it, admission hysteresis flags,
/// and how many writes were shed.
#[derive(Default)]
struct WriteHealth {
    /// Encoded [`HealthState`] (0 healthy, 1 degraded, 2 read-only).
    state: std::sync::atomic::AtomicU32,
    /// Write failures since the last successful write.
    consecutive_failures: std::sync::atomic::AtomicU32,
    /// Writes refused with `Backpressure` or `ReadOnly`.
    rejections: AtomicU64,
    /// Admission hysteresis: once the buffer cap trips, stays set until
    /// occupancy drains below the low watermark.
    shed_buffer: std::sync::atomic::AtomicBool,
    /// Same, for the WAL backlog cap.
    shed_wal: std::sync::atomic::AtomicBool,
    /// Telemetry-clock nanoseconds of the last recovery probe (0:
    /// never) — rate limits probing to `probe_interval_ms`.
    last_probe_ns: AtomicU64,
}

/// Byte accounting of live WAL blobs this engine acked: per-name sizes
/// plus their running total, mutated under one lock so admission checks
/// and charges are atomic. Blobs discovered at open are replayed (and
/// deleted) before ingest starts, so they never appear here.
#[derive(Default)]
struct WalBacklog {
    sizes: HashMap<String, u64>,
    total: u64,
}

/// What the recovery pass found and fixed, plus the epoch markers alive
/// on the store — the commit-protocol health counters
/// [`StorageEngine::stats`] reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Epoch claim markers on the store (including this engine's own
    /// claim at open).
    pub epoch_markers: u64,
    /// Consolidation tombstones whose fragment had committed: their
    /// recorded deletions were replayed.
    pub tombstones_replayed: u64,
    /// Tombstones whose fragment never committed: discarded.
    pub tombstones_discarded: u64,
    /// Orphaned staging (`.tmp`) blobs swept.
    pub orphans_swept: u64,
}

/// A sparse tensor stored as fragments on a backend.
pub struct StorageEngine<B: StorageBackend> {
    backend: RecordingBackend<B>,
    kind: FormatKind,
    shape: Shape,
    elem_size: u32,
    next_id: AtomicU64,
    /// Epoch claimed at open, stamped into every fragment this engine
    /// writes so concurrent engines over one store never collide.
    epoch: u64,
    /// Staging blobs this engine is mid-commit on. [`StorageEngine::refresh`]
    /// runs the recovery sweep, which must not reap a commit that is
    /// still in flight in this very process.
    inflight: parking_lot::Mutex<std::collections::HashSet<String>>,
    /// Serializes consolidation passes on this engine: two concurrent
    /// passes would derive the same consolidated name from the same
    /// snapshot and rename-commit over each other.
    consolidate_lock: parking_lot::Mutex<()>,
    counter: OpCounter,
    index_codec: Codec,
    value_codec: Codec,
    config: EngineConfig,
    catalog: FragmentCatalog,
    cache: FragmentCache,
    /// Span/IO sink. [`NoopRecorder`] unless `config.telemetry` was set
    /// or [`StorageEngine::with_recorder`] installed a custom sink.
    recorder: Arc<dyn Recorder>,
    /// The aggregating recorder behind [`StorageEngine::telemetry_report`]
    /// when `config.telemetry` is on.
    telemetry: Option<Arc<TelemetryRecorder>>,
    /// What the most recent recovery pass (open or refresh) found.
    recovery: parking_lot::Mutex<RecoveryReport>,
    /// The streaming-ingest write buffer: acked batches awaiting a group
    /// commit, readable through an atomically swappable snapshot.
    buffer: crate::buffer::WriteBuffer,
    /// Serializes group commits: two concurrent flushes would encode
    /// overlapping snapshots into two fragments and double-drain the
    /// buffer.
    flush_lock: parking_lot::Mutex<()>,
    /// WAL blobs whose batches are committed but whose delete failed.
    /// Retried on later flushes; a blob that never gets deleted is safe
    /// (replay is order-preserving, see [`StorageEngine::replay_wal`]),
    /// it just wastes device bytes until retirement succeeds.
    wal_retire_queue: parking_lot::Mutex<Vec<String>>,
    /// The live observability plane (registry + journal), present only
    /// when `config.observability` was set — `None` means no registry or
    /// journal call happens on any engine path.
    plane: Option<Arc<ObservabilityPlane>>,
    /// Health of the background ingest scheduler, reported into
    /// [`StorageEngine::stats`] and the live registry.
    sched_health: SchedulerHealth,
    /// Write-path health state machine + admission-control counters.
    health: WriteHealth,
    /// Byte accounting of live WAL blobs, for the
    /// [`max_wal_backlog_bytes`](crate::config::IngestConfig) cap.
    wal_backlog: parking_lot::Mutex<WalBacklog>,
}

/// Sentinel fragment name a [`ReadHit`] carries when the hit was served
/// from the streaming-ingest write buffer rather than a committed
/// fragment. Never collides with a real name (real names start with
/// `frag-`).
pub const BUFFER_FRAGMENT: &str = "<buffer>";

/// Outcome of one WRITE call.
#[derive(Debug, Clone)]
pub struct WriteReport {
    /// Name of the fragment written.
    pub fragment: String,
    /// Phase breakdown (one Table III column).
    pub breakdown: WriteBreakdown,
    /// Bytes of encoded index.
    pub index_bytes: usize,
    /// Bytes of value payload.
    pub value_bytes: usize,
    /// Total fragment size (what Fig. 4 reports).
    pub total_bytes: usize,
    /// Points written.
    pub n_points: usize,
}

/// One matched point from a READ.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadHit {
    /// Index into the query buffer.
    pub query_index: usize,
    /// Row-major linear address (the merge key of Algorithm 3 line 12).
    pub addr: u64,
    /// The coordinate.
    pub coord: Vec<u64>,
    /// The raw value record.
    pub value: Vec<u8>,
    /// Which fragment supplied it.
    pub fragment: String,
}

/// Whether a READ saw the whole store or had to route around damage.
///
/// With `strict_reads` (the default) a read either fails or returns a
/// complete outcome, so callers that never disable strictness can ignore
/// this. With `strict_reads = false`, `complete == false` means one or
/// more overlapping fragments were quarantined (this read or earlier)
/// and their points are missing from the result — the caller chooses
/// between using the partial answer and escalating.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadOutcome {
    /// Whether every fragment the plan wanted was actually readable.
    pub complete: bool,
    /// Quarantined fragments whose bounding box overlapped the query
    /// (sorted, deduplicated) — the data the result may be missing.
    pub quarantined: Vec<String>,
}

impl Default for ReadOutcome {
    fn default() -> Self {
        ReadOutcome {
            complete: true,
            quarantined: Vec::new(),
        }
    }
}

/// Per-fragment outcome inside one read attempt.
#[derive(Debug)]
enum FragmentOutcome {
    /// The fragment was read; here are its matching points.
    Hits(Vec<ReadHit>),
    /// A concurrent delete/consolidation removed it — re-plan.
    Vanished,
    /// The fragment is damaged and was quarantined (degraded mode).
    Quarantined(String),
}

/// Whether a read failure proves the fragment itself is damaged (and so
/// quarantinable under degraded reads) rather than the engine being
/// misconfigured or the device being wholly unreachable. Checksum
/// mismatches and structural corruption are positive evidence of damage;
/// retry exhaustion means the fragment kept failing past the budget.
fn quarantines(e: &StorageError) -> bool {
    matches!(
        e,
        StorageError::ChecksumMismatch { .. }
            | StorageError::CorruptFragment { .. }
            | StorageError::RetriesExhausted { .. }
    )
}

/// Outcome of one READ call.
#[derive(Debug, Clone, Default)]
pub struct ReadResult {
    /// Hits sorted by linear address (ties: fragment write order).
    pub hits: Vec<ReadHit>,
    /// Fragments whose metadata was examined.
    pub fragments_scanned: usize,
    /// Fragments whose bounding box overlapped the query.
    pub fragments_matched: usize,
    /// Completeness of the result under degraded reads.
    pub outcome: ReadOutcome,
}

impl ReadResult {
    /// Align hits with the query buffer: one `Option<V>` per query, the
    /// most recently written fragment winning on coordinate collisions.
    ///
    /// A hit whose record length differs from `V::SIZE` is store
    /// corruption (or a type confusion — reading `f64` from a store of
    /// `u32` records) and surfaces as [`StorageError::CorruptFragment`]
    /// rather than being silently dropped.
    pub fn to_values<V: Element>(&self, n_queries: usize) -> Result<Vec<Option<V>>> {
        let mut out: Vec<Option<V>> = vec![None; n_queries];
        // Hits are sorted by (addr, fragment order); iterating in order and
        // overwriting leaves the latest fragment's value in place.
        for hit in &self.hits {
            if hit.value.len() != V::SIZE {
                return Err(StorageError::corrupt(
                    &hit.fragment,
                    format!(
                        "value record is {} bytes but the element type takes {}",
                        hit.value.len(),
                        V::SIZE
                    ),
                ));
            }
            let slot = out.get_mut(hit.query_index).ok_or_else(|| {
                StorageError::corrupt(
                    &hit.fragment,
                    format!(
                        "hit for query {} but only {n_queries} queries were made",
                        hit.query_index
                    ),
                )
            })?;
            *slot = Some(V::read_le(&hit.value));
        }
        Ok(out)
    }
}

impl<B: StorageBackend> StorageEngine<B> {
    /// Open an engine over a backend with the default pipeline
    /// configuration. Existing fragments are cataloged (one header peek
    /// each); new fragments continue the id sequence.
    pub fn open(backend: B, kind: FormatKind, shape: Shape, elem_size: u32) -> Result<Self> {
        Self::open_with(backend, kind, shape, elem_size, EngineConfig::default())
    }

    /// Open an engine with an explicit pipeline configuration.
    ///
    /// Opening first recovers the store — consolidation tombstones are
    /// replayed or discarded, orphaned staging blobs are swept — then
    /// claims a fresh epoch, so the catalog is built over a clean store
    /// and this engine's fragment names cannot collide with any other
    /// engine's, past or concurrent.
    pub fn open_with(
        backend: B,
        kind: FormatKind,
        shape: Shape,
        elem_size: u32,
        config: EngineConfig,
    ) -> Result<Self> {
        let telemetry = config.telemetry.then(|| Arc::new(TelemetryRecorder::new()));
        let inner_recorder: Arc<dyn Recorder> = match &telemetry {
            Some(t) => t.clone(),
            None => Arc::new(NoopRecorder),
        };
        // The observability plane taps span traffic through a recorder
        // decorator, so the inner (aggregating or no-op) recorder keeps
        // working unchanged underneath it.
        let plane = config.observability.as_ref().map(|oc| {
            Arc::new(ObservabilityPlane::new(
                oc.journal_events,
                oc.slow_span_ms.saturating_mul(1_000_000),
            ))
        });
        let recorder: Arc<dyn Recorder> = match &plane {
            Some(p) => Arc::new(ObservedRecorder::new(inner_recorder, Arc::clone(p))),
            None => inner_recorder,
        };
        let backend = RecordingBackend::new(backend, recorder.clone());

        let span = Span::enter(&recorder, SpanKind::Recover);
        let mut recovery = recover_store(&backend, None)?;
        let epoch = claim_epoch(&backend)?;
        // Count this engine's own claim among the live markers.
        recovery.epoch_markers += 1;
        let catalog = FragmentCatalog::load(&backend, shape.ndim(), |name| {
            parse_fragment_name(name).is_some()
        })?;
        drop(span);

        let mut max_seq = 0u64;
        for name in catalog.names() {
            if let Some(id) = parse_fragment_name(&name) {
                max_seq = max_seq.max(id.seq);
            }
        }
        let cache = FragmentCache::new(config.cache_capacity_bytes);
        let engine = StorageEngine {
            backend,
            kind,
            shape,
            elem_size,
            next_id: AtomicU64::new(max_seq + 1),
            epoch,
            inflight: parking_lot::Mutex::new(std::collections::HashSet::new()),
            consolidate_lock: parking_lot::Mutex::new(()),
            counter: OpCounter::new(),
            index_codec: Codec::None,
            value_codec: Codec::None,
            config,
            catalog,
            cache,
            recorder,
            telemetry,
            recovery: parking_lot::Mutex::new(recovery),
            buffer: crate::buffer::WriteBuffer::new(),
            flush_lock: parking_lot::Mutex::new(()),
            wal_retire_queue: parking_lot::Mutex::new(Vec::new()),
            plane,
            sched_health: SchedulerHealth::default(),
            health: WriteHealth::default(),
            wal_backlog: parking_lot::Mutex::new(WalBacklog::default()),
        };
        // WAL blobs left behind by a crashed engine hold acked ingest
        // batches that never reached a fragment: replay them now (and
        // sweep torn ones) so the catalog alone equals everything that
        // was ever acked.
        engine.replay_wal()?;
        Ok(engine)
    }

    /// Replace the pipeline configuration (drops any cached fragments).
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.cache = FragmentCache::new(config.cache_capacity_bytes);
        self.config = config;
        self
    }

    /// Apply compression codecs to new fragments (§II: organizations are
    /// orthogonal to compression — pick the organization first, compress
    /// second). Reads handle any codec regardless of this setting, since
    /// fragments self-describe.
    pub fn with_compression(mut self, index_codec: Codec, value_codec: Codec) -> Self {
        self.index_codec = index_codec;
        self.value_codec = value_codec;
        self
    }

    /// The organization used for new fragments.
    pub fn kind(&self) -> FormatKind {
        self.kind
    }

    /// The global tensor shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The backend (e.g. to inspect simulated-disk statistics).
    pub fn backend(&self) -> &B {
        self.backend.inner()
    }

    /// The active pipeline configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The epoch this engine claimed at open (stamped into its fragment
    /// names).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The decoded-fragment cache (e.g. to inspect hit rates).
    pub fn cache(&self) -> &FragmentCache {
        &self.cache
    }

    /// Consume the engine, recovering the backend (e.g. to reopen it under
    /// a different organization — fragments self-describe, so mixed-format
    /// stores read fine).
    pub fn into_backend(self) -> B {
        self.backend.into_inner()
    }

    /// The active span/IO recorder (a [`NoopRecorder`] unless telemetry
    /// is on or a custom sink was installed).
    pub fn recorder(&self) -> &Arc<dyn Recorder> {
        &self.recorder
    }

    /// Install a custom span/IO sink (replacing any recorder installed by
    /// `config.telemetry`, so [`StorageEngine::telemetry_report`] returns
    /// `None` afterwards).
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.backend.set_recorder(recorder.clone());
        self.recorder = recorder;
        self.telemetry = None;
        self
    }

    /// Snapshot the aggregated telemetry (spans, histograms, I/O totals,
    /// per-backend op timings). `None` unless the engine was opened with
    /// `config.telemetry` on.
    pub fn telemetry_report(&self) -> Option<TelemetryReport> {
        self.telemetry.as_ref().map(|t| t.report())
    }

    /// What the most recent recovery pass (open or refresh) found on the
    /// store.
    pub fn recovery_report(&self) -> RecoveryReport {
        *self.recovery.lock()
    }

    /// The live observability plane, when `config.observability` was set
    /// at open. `None` means the plane is off and nothing is collected.
    pub fn observability(&self) -> Option<&Arc<ObservabilityPlane>> {
        self.plane.as_ref()
    }

    /// Sample every live gauge into the observability registry: write
    /// buffer occupancy, WAL backlog, fragment population and size tiers,
    /// cache occupancy, quarantine count, scheduler health, and the
    /// derived read-amplification ratio. A no-op when the plane is off.
    ///
    /// The [`MetricsExporter`](crate::exporter::MetricsExporter) calls
    /// this before each snapshot; callers polling the registry directly
    /// should too — counters update live from span traffic, but gauges
    /// are point-in-time readings only this method refreshes.
    pub fn observe(&self) {
        let Some(plane) = &self.plane else { return };
        let reg = plane.registry();

        let buf = self.buffer.stats();
        reg.gauge(
            "artsparse_write_buffer_bytes",
            "Value bytes currently buffered for group commit.",
        )
        .set(buf.value_bytes as f64);
        reg.gauge(
            "artsparse_write_buffer_points",
            "Points currently buffered for group commit.",
        )
        .set(buf.points as f64);
        reg.gauge(
            "artsparse_write_buffer_batches",
            "Acked ingest batches awaiting group commit.",
        )
        .set(buf.batches as f64);
        reg.gauge(
            "artsparse_wal_backlog_blobs",
            "Live WAL blobs: buffered batches not yet committed plus \
             retired blobs whose delete is being retried.",
        )
        .set((self.buffer.wal_backlog() + self.wal_retire_queue.lock().len()) as f64);
        reg.gauge(
            "artsparse_wal_retire_queue",
            "WAL blobs whose deletion failed and awaits retry.",
        )
        .set(self.wal_retire_queue.lock().len() as f64);

        let sizes = self.fragment_sizes();
        reg.gauge("artsparse_fragments", "Live fragments in the catalog.")
            .set(sizes.len() as f64);
        let mut tiers = artsparse_metrics::Histogram::new();
        for &size in &sizes {
            tiers.record(size);
        }
        reg.set_histogram(
            "artsparse_fragment_bytes",
            "Size distribution of live fragments (bytes, log2 buckets).",
            tiers,
        );
        reg.gauge(
            "artsparse_quarantined_fragments",
            "Fragments currently quarantined after integrity failures.",
        )
        .set(self.catalog.quarantined().len() as f64);

        reg.gauge(
            "artsparse_cache_bytes",
            "Decoded payload bytes resident in the fragment cache.",
        )
        .set(self.cache.held_bytes() as f64);
        reg.gauge(
            "artsparse_cache_capacity_bytes",
            "Configured fragment-cache capacity (0: disabled).",
        )
        .set(self.cache.capacity_bytes() as f64);
        reg.gauge(
            "artsparse_cache_fragments",
            "Decoded fragments resident in the cache.",
        )
        .set(self.cache.len() as f64);

        reg.counter(
            "artsparse_scheduler_runs_total",
            "Background scheduler passes executed.",
        )
        .record_total(self.sched_health.runs.load(Ordering::Relaxed));
        reg.counter(
            "artsparse_scheduler_errors_total",
            "Background scheduler passes that failed.",
        )
        .record_total(self.sched_health.errors.load(Ordering::Relaxed));
        let last_run = self.sched_health.last_run_ns.load(Ordering::Relaxed);
        reg.gauge(
            "artsparse_scheduler_last_run_age_seconds",
            "Seconds since the last scheduler pass (-1: never ran).",
        )
        .set(if last_run == 0 {
            -1.0
        } else {
            now_ns().saturating_sub(last_run) as f64 / 1e9
        });

        reg.gauge(
            "artsparse_health_state",
            "Write-path health state (0: healthy, 1: degraded, 2: read-only).",
        )
        .set(self.health().gauge_value() as f64);
        reg.gauge(
            "artsparse_consecutive_write_failures",
            "Consecutive write failures driving the health state machine.",
        )
        .set(self.health.consecutive_failures.load(Ordering::SeqCst) as f64);
        reg.gauge(
            "artsparse_wal_backlog_bytes",
            "Bytes of acked, unretired WAL blobs (bounded by max_wal_backlog_bytes).",
        )
        .set(self.wal_backlog.lock().total as f64);
        reg.counter(
            "artsparse_backpressure_rejections_total",
            "Writes refused with a typed Backpressure or ReadOnly rejection.",
        )
        .record_total(self.health.rejections.load(Ordering::Relaxed));

        if let Some(ratio) = plane.read_amplification() {
            reg.gauge(
                "artsparse_read_amplification",
                "Bytes fetched from the backend per value byte returned.",
            )
            .set(ratio);
        }
    }

    /// Record a completed scheduler pass (called by
    /// [`IngestScheduler`](crate::scheduler::IngestScheduler)).
    pub(crate) fn note_scheduler_run(&self) {
        self.sched_health.runs.fetch_add(1, Ordering::Relaxed);
        self.sched_health
            .last_run_ns
            .store(now_ns(), Ordering::Relaxed);
    }

    /// Record a failed scheduler pass: count it, retain the error text
    /// and wall-clock time for [`StorageEngine::stats`], and journal a
    /// `scheduler_error` event when the plane is on.
    pub(crate) fn note_scheduler_error(&self, error: &StorageError) {
        let message = error.chain_string();
        self.sched_health.errors.fetch_add(1, Ordering::Relaxed);
        let at_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        *self.sched_health.last_error.lock() = Some((message.clone(), at_ms));
        if let Some(plane) = &self.plane {
            plane.event(
                Severity::Error,
                "scheduler_error",
                message,
                current_trace_id(),
            );
        }
    }

    /// The most recent scheduler failure, as `(error chain, unix ms)`.
    pub fn scheduler_last_error(&self) -> Option<(String, u64)> {
        self.sched_health.last_error.lock().clone()
    }

    /// The write path's current [`HealthState`].
    pub fn health(&self) -> HealthState {
        HealthState::from_u32(self.health.state.load(Ordering::SeqCst))
    }

    /// Bytes of live WAL blobs this engine acked and has not yet retired
    /// (what the [`max_wal_backlog_bytes`] cap bounds).
    ///
    /// [`max_wal_backlog_bytes`]: crate::config::IngestConfig::max_wal_backlog_bytes
    pub fn wal_backlog_bytes(&self) -> u64 {
        self.wal_backlog.lock().total
    }

    /// Writes refused so far with a typed `Backpressure` or `ReadOnly`
    /// rejection (load the engine shed by design, not failures).
    pub fn write_rejections(&self) -> u64 {
        self.health.rejections.load(Ordering::Relaxed)
    }

    /// Record one successful backend write: the consecutive-failure
    /// count resets, and an engine that had walked down the health
    /// ladder climbs straight back to `Healthy` (journaling the
    /// recovery).
    fn note_write_success(&self) {
        self.health.consecutive_failures.store(0, Ordering::SeqCst);
        let prev = self.health.state.swap(0, Ordering::SeqCst);
        if prev != 0 {
            if let Some(plane) = &self.plane {
                plane.event(
                    Severity::Info,
                    "health_transition",
                    format!(
                        "write path recovered: {} -> healthy",
                        HealthState::from_u32(prev)
                    ),
                    current_trace_id(),
                );
            }
        }
    }

    /// Record one write that failed past its retry budget and walk the
    /// health ladder when the consecutive-failure count crosses a
    /// threshold (journaling every transition). Overload rejections are
    /// not failures and never come through here.
    fn note_write_failure(&self, error: &StorageError) {
        let failures = self
            .health
            .consecutive_failures
            .fetch_add(1, Ordering::SeqCst)
            .saturating_add(1);
        let hc = &self.config.health;
        let target = if failures >= hc.read_only_after.max(1) {
            HealthState::ReadOnly
        } else if failures >= hc.degrade_after.max(1) {
            HealthState::Degraded
        } else {
            HealthState::Healthy
        };
        let prev = self.health();
        if target > prev {
            self.health
                .state
                .store(target.gauge_value() as u32, Ordering::SeqCst);
            if let Some(plane) = &self.plane {
                let severity = match target {
                    HealthState::ReadOnly => Severity::Error,
                    _ => Severity::Warn,
                };
                plane.event(
                    severity,
                    "health_transition",
                    format!(
                        "write path {prev} -> {target} after {failures} consecutive \
                         write failure(s): {}",
                        error.chain_string()
                    ),
                    current_trace_id(),
                );
            }
        }
    }

    /// Test the device with one probe write when the engine is not
    /// `Healthy`, rate-limited to
    /// [`probe_interval_ms`](crate::config::HealthConfig::probe_interval_ms).
    /// A probe that lands resets the engine to `Healthy` (recovery is
    /// automatic); one that fails walks the ladder further down. The
    /// background scheduler calls this every tick; engines without a
    /// scheduler can call it directly. Returns the state after the
    /// probe.
    pub fn probe_health(&self) -> HealthState {
        let state = self.health();
        if state == HealthState::Healthy {
            return state;
        }
        let interval_ns = self
            .config
            .health
            .probe_interval_ms
            .saturating_mul(1_000_000);
        let now = now_ns();
        let last = self.health.last_probe_ns.load(Ordering::SeqCst);
        if last != 0 && now.saturating_sub(last) < interval_ns {
            return state;
        }
        self.health.last_probe_ns.store(now, Ordering::SeqCst);
        // The probe blob uses the staging suffix: invisible to fragment
        // discovery, and recovery sweeps it should this process die
        // between the put and the delete.
        let name = format!("probe-{:08}{STAGING_SUFFIX}", self.epoch);
        match self.backend.put_atomic(&name, b"artsparse write probe") {
            Ok(()) => {
                let _ = self.backend.delete(&name);
                self.note_write_success();
            }
            Err(e) => self.note_write_failure(&e),
        }
        self.health()
    }

    /// Reject callers outright while the engine is `ReadOnly`.
    fn check_writable(&self) -> Result<()> {
        if self.health() == HealthState::ReadOnly {
            self.health.rejections.fetch_add(1, Ordering::Relaxed);
            return Err(StorageError::ReadOnly {
                consecutive_failures: self.health.consecutive_failures.load(Ordering::SeqCst),
            });
        }
        Ok(())
    }

    /// The low watermark for a tripped cap: admission reopens only below
    /// this occupancy.
    fn low_watermark(&self, cap: u64) -> u64 {
        cap.saturating_mul(self.config.ingest.backpressure_resume_pct.min(100) as u64) / 100
    }

    /// Admit `incoming` value bytes against the buffer byte cap,
    /// reserving them in the buffer on success (consumed by the append,
    /// cancelled if the WAL ack fails). Applies shed hysteresis: once
    /// the cap trips, admission stays closed until occupancy drains to
    /// the low watermark.
    fn admit_buffer(&self, incoming: usize) -> Result<()> {
        let cap = self.config.ingest.max_buffered_bytes;
        if cap == 0 {
            self.buffer.try_reserve(incoming, 0);
            return Ok(());
        }
        let occupancy = self.buffer.stats().value_bytes as u64;
        if self.health.shed_buffer.load(Ordering::SeqCst) {
            if occupancy <= self.low_watermark(cap as u64) {
                self.health.shed_buffer.store(false, Ordering::SeqCst);
            } else {
                self.health.rejections.fetch_add(1, Ordering::Relaxed);
                return Err(StorageError::Backpressure {
                    resource: "buffer",
                    occupancy,
                    limit: cap as u64,
                });
            }
        }
        if !self.buffer.try_reserve(incoming, cap) {
            if !self.health.shed_buffer.swap(true, Ordering::SeqCst) {
                if let Some(plane) = &self.plane {
                    plane.event(
                        Severity::Warn,
                        "backpressure",
                        format!(
                            "ingest buffer holds {occupancy} of {cap} bytes: shedding \
                             until it drains below {}",
                            self.low_watermark(cap as u64)
                        ),
                        current_trace_id(),
                    );
                }
            }
            self.health.rejections.fetch_add(1, Ordering::Relaxed);
            return Err(StorageError::Backpressure {
                resource: "buffer",
                occupancy,
                limit: cap as u64,
            });
        }
        Ok(())
    }

    /// Admit (and atomically charge) one WAL blob of `len` bytes against
    /// the WAL backlog cap, under the same shed hysteresis as the buffer
    /// cap. The charge is reversed by [`uncharge_wal`] when the put
    /// fails, or on retirement.
    ///
    /// [`uncharge_wal`]: StorageEngine::uncharge_wal
    fn admit_wal(&self, name: &str, len: u64) -> Result<()> {
        let cap = self.config.ingest.max_wal_backlog_bytes;
        let mut backlog = self.wal_backlog.lock();
        if cap > 0 {
            if self.health.shed_wal.load(Ordering::SeqCst) {
                if backlog.total <= self.low_watermark(cap) {
                    self.health.shed_wal.store(false, Ordering::SeqCst);
                } else {
                    self.health.rejections.fetch_add(1, Ordering::Relaxed);
                    return Err(StorageError::Backpressure {
                        resource: "wal",
                        occupancy: backlog.total,
                        limit: cap,
                    });
                }
            }
            if backlog.total.saturating_add(len) > cap {
                if !self.health.shed_wal.swap(true, Ordering::SeqCst) {
                    if let Some(plane) = &self.plane {
                        plane.event(
                            Severity::Warn,
                            "backpressure",
                            format!(
                                "WAL backlog holds {} of {cap} bytes: shedding until \
                                 it drains below {}",
                                backlog.total,
                                self.low_watermark(cap)
                            ),
                            current_trace_id(),
                        );
                    }
                }
                self.health.rejections.fetch_add(1, Ordering::Relaxed);
                return Err(StorageError::Backpressure {
                    resource: "wal",
                    occupancy: backlog.total,
                    limit: cap,
                });
            }
        }
        backlog.sizes.insert(name.to_string(), len);
        backlog.total += len;
        Ok(())
    }

    /// Reverse a WAL backlog charge (the put failed, or the blob was
    /// retired). Unknown names — blobs replayed at open, which were
    /// never charged — are a no-op.
    fn uncharge_wal(&self, name: &str) {
        let mut backlog = self.wal_backlog.lock();
        if let Some(len) = backlog.sizes.remove(name) {
            backlog.total = backlog.total.saturating_sub(len);
        }
    }

    /// Operation counter shared by all builds/reads on this engine.
    pub fn counter(&self) -> &OpCounter {
        &self.counter
    }

    /// Names of all fragments, in write order (served from the catalog).
    pub fn fragments(&self) -> Result<Vec<String>> {
        Ok(self.catalog.names())
    }

    /// Total bytes stored across all fragments (Fig. 4's metric), served
    /// from the catalog without touching the device.
    pub fn total_stored_bytes(&self) -> Result<u64> {
        Ok(self.catalog.total_bytes())
    }

    /// Delete one fragment: catalog entry, any cached decode, and the
    /// device blob — in that order, so a read racing this delete that
    /// hits NotFound on the blob finds the catalog already updated and
    /// treats the fragment as vanished (skip/re-plan) instead of failing.
    pub fn delete_fragment(&self, name: &str) -> Result<()> {
        let entry = self.catalog.remove(name);
        self.cache.invalidate(name);
        match self.backend.delete(name) {
            // Tolerate a blob already gone if we did know the fragment —
            // the racing deleter finished first; the outcome stands.
            Err(e) if e.is_not_found() && entry.is_some() => Ok(()),
            other => other,
        }
    }

    /// Resynchronize the catalog with the device (after an external
    /// writer changed it) and drop the cache. Runs the same recovery as
    /// open first — an external writer may have crashed mid-commit —
    /// while sparing staging blobs of commits in flight in this engine.
    /// The id sequence advances past any newly discovered fragments.
    pub fn refresh(&self) -> Result<()> {
        let span = Span::enter(&self.recorder, SpanKind::Recover);
        let keep = self.inflight.lock().clone();
        // The listing already contains this engine's own epoch marker.
        let recovery = recover_store(&self.backend, Some(&keep))?;
        *self.recovery.lock() = recovery;
        self.catalog
            .reload(&self.backend, self.shape.ndim(), |name| {
                parse_fragment_name(name).is_some()
            })?;
        drop(span);
        self.cache.clear();
        for name in self.catalog.names() {
            if let Some(id) = parse_fragment_name(&name) {
                self.next_id.fetch_max(id.seq + 1, Ordering::SeqCst);
            }
        }
        Ok(())
    }

    /// Run `f` under the configured compute [`Parallelism`], then feed the
    /// observation back into telemetry: spawned worker counts are charged
    /// to the innermost open span and each worker shard becomes one
    /// synthesized `engine.par.shard` span. Sequential runs (threads = 1,
    /// or inputs below the cutoff) observe nothing and record nothing.
    ///
    /// [`Parallelism`]: artsparse_tensor::par::Parallelism
    fn observed_parallel<R>(&self, f: impl FnOnce() -> R) -> R {
        let op_start = now_ns();
        let (out, report) = par::observed(self.config.parallelism(), f);
        if report.tasks_spawned > 0 {
            charge(|io| io.par_tasks_spawned += report.tasks_spawned);
        }
        if self.recorder.enabled() {
            for shard in &report.shards {
                self.recorder.record_span(&SpanRecord {
                    kind: SpanKind::ParShard,
                    trace_id: current_trace_id(),
                    start_ns: op_start + shard.start_offset_ns,
                    dur_ns: shard.dur_ns,
                    depth: 0,
                    io: IoStats::default(),
                });
            }
        }
        out
    }

    /// Algorithm 3 WRITE: package `coords`/`values` into a new fragment.
    ///
    /// `values` is an opaque payload of `elem_size`-byte records, one per
    /// point, in the same order as `coords`.
    ///
    /// Publication is crash-safe under the configured
    /// [`CommitMode`](crate::config::CommitMode):
    /// with the default staged mode a fragment either commits whole (one
    /// rename) or leaves only an invisible staging blob that recovery
    /// sweeps — readers, catalog reloads, and concurrent engines never
    /// observe a torn fragment.
    pub fn write(&self, coords: &CoordBuffer, values: &[u8]) -> Result<WriteReport> {
        self.check_writable()?;
        // A plain write is strictly newer than everything buffered:
        // group-commit the buffer first so its fragment takes a lower
        // sequence number and this write keeps last-write-wins
        // precedence over any buffered duplicate.
        self.flush()?;
        self.write_with(self.kind, coords, values, None, None, false)
    }

    /// WRITE, optionally on behalf of a consolidation or WAL-replay pass:
    /// `kind` is the organization to encode (the engine's configured
    /// format for plain writes; adaptive consolidation passes the advised
    /// one), `identity` is a precomputed fragment identity (consolidation
    /// derives it from the sources, replay reuses the WAL's own; `None`
    /// allocates the next id), `sources` names the fragments the new one
    /// replaces (recorded in a tombstone before commit — consolidation
    /// only), and `presorted` promises the coordinates arrive in
    /// nondecreasing linear-address order — the order the consolidation
    /// merge scan emits — so sorting builds route through
    /// [`convert::build_from_address_sorted`] and elide their sort.
    fn write_with(
        &self,
        kind: FormatKind,
        coords: &CoordBuffer,
        values: &[u8],
        identity: Option<FragmentId>,
        sources: Option<&[String]>,
        presorted: bool,
    ) -> Result<WriteReport> {
        let _span = Span::enter(&self.recorder, SpanKind::Write);
        let mut timer = PhaseTimer::new();

        // -- Others: validation and metadata ---------------------------
        timer.enter(WritePhase::Others);
        coords.check_against(&self.shape)?;
        if values.len() != coords.len() * self.elem_size as usize {
            return Err(StorageError::Mismatch {
                reason: format!(
                    "{} value bytes for {} points of {} bytes each",
                    values.len(),
                    coords.len(),
                    self.elem_size
                ),
            });
        }
        let bbox = coords.bounding_box();

        let encode_span = Span::enter(&self.recorder, SpanKind::WriteEncode);

        // -- Build: construct the organization -------------------------
        let built = timer.time(WritePhase::Build, || {
            self.observed_parallel(|| {
                if presorted {
                    let (built, direct) = convert::build_from_address_sorted(
                        kind,
                        coords,
                        &self.shape,
                        &self.counter,
                    )?;
                    charge(|io| {
                        if direct {
                            io.conversions_direct += 1;
                        } else {
                            io.conversions_fallback += 1;
                        }
                    });
                    Ok(built)
                } else {
                    kind.create().build(coords, &self.shape, &self.counter)
                }
            })
        })?;

        // -- Reorg: permute values by the map ---------------------------
        let values_reorg = timer.time(WritePhase::Reorg, || {
            built.reorganize_values(values, self.elem_size as usize)
        });

        // -- Others: concatenate (and optionally compress) b_frag -------
        timer.enter(WritePhase::Others);
        let frag = encode_fragment(
            kind,
            &self.shape,
            coords.len() as u64,
            self.elem_size,
            bbox.as_ref(),
            &built.index,
            &values_reorg,
            self.index_codec,
            self.value_codec,
        );
        drop(encode_span);
        let id = identity.unwrap_or_else(|| FragmentId {
            seq: self.next_id.fetch_add(1, Ordering::SeqCst),
            epoch: self.epoch,
            cgen: 0,
        });
        let name = format_fragment_name(id);
        let tombstone = sources.map(|sources| {
            let mut body = String::new();
            for src in sources {
                body.push_str(src);
                body.push('\n');
            }
            body
        });

        // -- Write: persist the fragment (line 7) -----------------------
        timer.time(WritePhase::Write, || {
            self.commit_fragment(&name, &frag, tombstone.as_deref(), sources.is_some())
        })?;

        // Catalog maintenance: decode the header we just encoded (pure
        // memory) so discovery never needs to ask the device about it.
        let meta = decode_meta(&name, &frag)?;
        self.catalog.insert(CatalogEntry {
            name: name.clone(),
            meta,
            size: frag.len() as u64,
        });

        Ok(WriteReport {
            fragment: name,
            breakdown: timer.finish(),
            index_bytes: built.index.len(),
            value_bytes: values_reorg.len(),
            total_bytes: frag.len(),
            n_points: coords.len(),
        })
    }

    /// Publish an encoded fragment under `name`.
    ///
    /// Staged mode (and every consolidation, which passes `force_staged`)
    /// runs the two-phase protocol: stage the bytes under a `.tmp` name
    /// invisible to discovery, durably record the delete set (tombstone)
    /// if consolidating, then rename-commit. The commit point is the
    /// rename — until it lands, a crash leaves only blobs that recovery
    /// reaps; after it, a crash leaves a tombstone recovery replays.
    /// Direct mode publishes with one `put_atomic` and no staging.
    fn commit_fragment(
        &self,
        name: &str,
        frag: &[u8],
        tombstone: Option<&str>,
        force_staged: bool,
    ) -> Result<()> {
        if self.config.commit_mode == crate::config::CommitMode::Direct && !force_staged {
            let _commit = Span::enter(&self.recorder, SpanKind::WriteCommit);
            let outcome = self.with_write_retries(name, || self.backend.put_atomic(name, frag));
            match &outcome {
                Ok(()) => self.note_write_success(),
                Err(e) => self.note_write_failure(e),
            }
            return outcome;
        }
        let staged = staged_name(name);
        self.inflight.lock().insert(staged.clone());
        let commit = (|| -> Result<()> {
            {
                let _stage = Span::enter(&self.recorder, SpanKind::WriteStage);
                self.with_write_retries(&staged, || self.backend.put(&staged, frag))?;
            }
            if let Some(body) = tombstone {
                // The delete set must be durable *before* the commit:
                // a crash right after the rename must still delete the
                // sources, or the store doubles its points.
                let _tomb = Span::enter(&self.recorder, SpanKind::ConsolidateTombstone);
                let tomb = tombstone_name(name);
                self.with_write_retries(&tomb, || self.backend.put_atomic(&tomb, body.as_bytes()))?;
            }
            let _commit = Span::enter(
                &self.recorder,
                if force_staged {
                    SpanKind::ConsolidateCommit
                } else {
                    SpanKind::WriteCommit
                },
            );
            self.with_write_retries(name, || self.backend.rename(&staged, name))
        })();
        self.inflight.lock().remove(&staged);
        if commit.is_err() {
            // Best effort: the orphan is invisible either way, and the
            // recovery sweep will reap it if this delete also fails.
            let _ = self.backend.delete(&staged);
            if tombstone.is_some() {
                let _ = self.backend.delete(&tombstone_name(name));
            }
        }
        match &commit {
            Ok(()) => self.note_write_success(),
            Err(e) => self.note_write_failure(e),
        }
        commit
    }

    /// Typed WRITE convenience.
    pub fn write_points<V: Element>(
        &self,
        coords: &CoordBuffer,
        values: &[V],
    ) -> Result<WriteReport> {
        self.check_elem_size::<V>()?;
        self.write(coords, &artsparse_tensor::value::pack(values))
    }

    /// Reject a typed call whose element size disagrees with the record
    /// size this store holds — type confusion (`f32` against an `f64`
    /// store) fails with a typed error in every build, not just under
    /// debug assertions.
    fn check_elem_size<V: Element>(&self) -> Result<()> {
        if V::SIZE != self.elem_size as usize {
            return Err(StorageError::ElementSizeMismatch {
                expected: self.elem_size as usize,
                found: V::SIZE,
            });
        }
        Ok(())
    }

    /// Streaming ingest: append a batch of points to the in-memory write
    /// buffer, durably WAL-protected first (one `put_atomic` blob per
    /// acked batch, see [`crate::wal`]) so a crash after the ack never
    /// loses it. The batch is immediately readable — buffered points
    /// overlay fragment hits with last-write-wins precedence — and a
    /// group commit folds the buffer into one ordinary fragment when the
    /// configured thresholds trip
    /// ([`IngestConfig`](crate::config::IngestConfig)) or
    /// [`StorageEngine::flush`] is called explicitly.
    ///
    /// Returns the number of points acked. `values` is an opaque payload
    /// of `elem_size`-byte records, one per point, like
    /// [`StorageEngine::write`].
    pub fn ingest(&self, coords: &CoordBuffer, values: &[u8]) -> Result<usize> {
        let _span = Span::enter(&self.recorder, SpanKind::Ingest);
        coords.check_against(&self.shape)?;
        if values.len() != coords.len() * self.elem_size as usize {
            return Err(StorageError::Mismatch {
                reason: format!(
                    "{} value bytes for {} points of {} bytes each",
                    values.len(),
                    coords.len(),
                    self.elem_size
                ),
            });
        }
        if coords.is_empty() {
            return Ok(0);
        }
        self.check_writable()?;
        let n = coords.len();
        let mut addrs = Vec::with_capacity(n);
        let mut flat = Vec::with_capacity(n * self.shape.ndim());
        for p in coords.iter() {
            addrs.push(self.shape.linearize(p)?);
            flat.extend_from_slice(p);
        }
        // Admission control: reserve the batch's value bytes against the
        // buffer cap *before* the WAL put, so two racing overweight
        // batches cannot both slip under it. The reservation converts
        // into real occupancy at the append below, or is cancelled if
        // the WAL ack fails.
        self.admit_buffer(values.len())?;
        let wal = match self.wal_append(&flat, values) {
            Ok(wal) => wal,
            Err(e) => {
                self.buffer.cancel_reservation(values.len());
                return Err(e);
            }
        };
        self.buffer.append(addrs, flat, values.to_vec(), wal);
        let stats = self.buffer.stats();
        if stats.points >= self.config.ingest.flush_points
            || stats.value_bytes >= self.config.ingest.flush_bytes
        {
            self.flush()?;
        }
        Ok(n)
    }

    /// Durably ack one ingest batch: encode the WAL record, admit it
    /// against the backlog cap, and land it with write retries. Returns
    /// the blob name (`None` when the WAL is disabled).
    fn wal_append(&self, flat: &[u64], values: &[u8]) -> Result<Option<String>> {
        if !self.config.ingest.wal {
            return Ok(None);
        }
        let _wal_span = Span::enter(&self.recorder, SpanKind::IngestWal);
        let blob =
            crate::wal::encode_record(self.shape.ndim(), self.elem_size as usize, flat, values)?;
        // The WAL draws from the same id sequence as fragments, so
        // the name fixes the batch's place in the store's total
        // (seq, epoch, cgen) precedence order at ack time. Replay
        // commits the batch as a fragment under that very identity,
        // which is what keeps replay safe no matter who performs it
        // or when (see [`StorageEngine::replay_wal`]).
        let name = crate::wal::wal_name(self.next_id.fetch_add(1, Ordering::SeqCst), self.epoch);
        self.admit_wal(&name, blob.len() as u64)?;
        // The ack point: the batch is durable once this atomic put
        // lands (re-attempted through the write retry policy for
        // transient device faults). A put that dies mid-write persists
        // nothing (or a torn prefix the CRC framing rejects at replay),
        // and the error propagates before anything reaches the buffer.
        match self.with_write_retries(&name, || self.backend.put_atomic(&name, &blob)) {
            Ok(()) => {
                self.note_write_success();
                charge(|io| io.wal_bytes += blob.len() as u64);
                Ok(Some(name))
            }
            Err(e) => {
                self.uncharge_wal(&name);
                self.note_write_failure(&e);
                Err(e)
            }
        }
    }

    /// Typed streaming-ingest convenience.
    pub fn ingest_points<V: Element>(&self, coords: &CoordBuffer, values: &[V]) -> Result<usize> {
        self.check_elem_size::<V>()?;
        self.ingest(coords, &artsparse_tensor::value::pack(values))
    }

    /// Group commit: flush the write buffer into one ordinary fragment
    /// and retire the WAL blobs it covered. Batches acked while the flush
    /// runs stay buffered for the next one. An empty buffer returns
    /// `Ok(None)` without touching the device.
    pub fn flush(&self) -> Result<Option<WriteReport>> {
        let _guard = self.flush_lock.lock();
        // Retry WAL deletions a previous flush failed (device hiccup)
        // before anything else — even when the buffer is empty, so a
        // quiet engine still sheds its orphans.
        self.retire_wals(Vec::new());
        let snapshot = self.buffer.snapshot();
        if snapshot.is_empty() {
            return Ok(None);
        }
        let _span = Span::enter(&self.recorder, SpanKind::IngestFlush);
        let mut coords = CoordBuffer::with_capacity(self.shape.ndim(), snapshot.len());
        let mut payload = Vec::with_capacity(snapshot.len() * self.elem_size as usize);
        // The snapshot is deduplicated (the latest append per address
        // survives) and iterates in address order — exactly what the
        // within-fragment precedence rule needs (reads take the first
        // matching slot) and what the sort-eliding builders accept.
        for (coord, record) in snapshot.points.values() {
            coords.push(coord)?;
            payload.extend_from_slice(record);
        }
        let report = self.write_with(self.kind, &coords, &payload, None, None, true)?;
        // The fragment is committed: retire the covered batches and their
        // WAL blobs. Retirement is cleanup, not correctness — a blob that
        // survives (crash, or a delete failure queued for retry) replays
        // under its original identity, ranked below the fragment just
        // committed, so it can never resurrect old values.
        self.retire_wals(self.buffer.drain(snapshot.raw_points));
        charge(|io| io.group_commits += 1);
        Ok(Some(report))
    }

    /// Delete retired WAL blobs plus any whose deletion failed earlier.
    /// A failure re-queues the name for the next flush instead of
    /// failing the caller: the covering fragment is already committed,
    /// and an orphaned blob is harmless under order-preserving replay —
    /// it costs device bytes until a retry lands, never stale reads.
    fn retire_wals(&self, names: Vec<String>) {
        let mut queue = self.wal_retire_queue.lock();
        if names.is_empty() && queue.is_empty() {
            return;
        }
        let pending: Vec<String> = queue.drain(..).chain(names).collect();
        for name in pending {
            match self.backend.delete(&name) {
                Err(e) if !e.is_not_found() => queue.push(name),
                // Gone (or never there): the blob no longer counts
                // against the WAL backlog cap.
                _ => self.uncharge_wal(&name),
            }
        }
    }

    /// Retry retiring WAL blobs whose deletion failed earlier, without
    /// flushing anything. The background scheduler calls this every tick
    /// and once more on shutdown, so orphans from a failed flush-time
    /// delete drain even when no further flush ever runs (previously
    /// they waited for the *next* flush, indefinitely on a quiet
    /// engine).
    pub fn retire_pending_wals(&self) {
        self.retire_wals(Vec::new());
    }

    /// Orderly shutdown for engines without a scheduler: group-commit
    /// whatever is buffered and retry any queued WAL retirements. Safe
    /// to call more than once; the engine stays usable afterwards.
    pub fn shutdown(&self) -> Result<()> {
        let report = self.flush();
        self.retire_pending_wals();
        report.map(|_| ())
    }

    /// Occupancy of the streaming-ingest write buffer.
    pub fn buffer_stats(&self) -> crate::buffer::BufferStats {
        self.buffer.stats()
    }

    /// Age of the oldest buffered ingest batch (`None` when the buffer is
    /// empty) — what the scheduler's staleness flush keys off.
    pub fn buffer_age(&self) -> Option<std::time::Duration> {
        self.buffer.age()
    }

    /// Sizes of all live fragments, served from the catalog — the input
    /// to the scheduler's size-tiered consolidation trigger.
    pub fn fragment_sizes(&self) -> Vec<u64> {
        self.catalog.snapshot().iter().map(|e| e.size).collect()
    }

    /// Replay surviving WAL blobs at open. Replay is *order-preserving*:
    /// WAL names draw their sequence numbers from the same id sequence as
    /// fragments, and each acked batch is committed as a fragment under
    /// the WAL's own `(seq, epoch)` identity — it materializes at exactly
    /// the precedence slot its ack was given, never at the top of the
    /// order. That single invariant makes replay safe in every window the
    /// protocol admits:
    ///
    /// * a blob whose batch already reached a fragment (the flush died —
    ///   or a delete failed — between commit and retirement) replays
    ///   *below* that fragment and everything written since: a harmless
    ///   duplicate the next consolidation folds away, never a
    ///   resurrection of overwritten values;
    /// * a blob owned by a concurrently-live engine replays below
    ///   anything that engine flushes afterwards (its ids are all
    ///   higher), so claiming it early is safe — the owner still holds
    ///   the batch in its buffer and tolerates the retired blob.
    ///
    /// Torn or corrupt blobs — atomic puts that died mid-write on a
    /// device that tears — are swept without replaying a byte.
    fn replay_wal(&self) -> Result<()> {
        let mut wals: Vec<(u64, u64, String)> = Vec::new();
        let mut torn: Vec<String> = Vec::new();
        for name in self.backend.list()? {
            if !crate::wal::is_wal_name(&name) {
                continue;
            }
            match crate::wal::parse_wal_name(&name) {
                Some((seq, epoch)) => wals.push((epoch, seq, name)),
                None => torn.push(name),
            }
        }
        if wals.is_empty() && torn.is_empty() {
            return Ok(());
        }
        let _span = Span::enter(&self.recorder, SpanKind::IngestReplay);
        // Ack order: epoch-major (each crash/reopen cycle claims a fresh
        // epoch), sequence-minor within one engine's run.
        wals.sort();
        for (epoch, seq, name) in &wals {
            // This engine's own writes must outrank every replayed batch.
            self.next_id.fetch_max(seq + 1, Ordering::SeqCst);
            let bytes = self.backend.get(name)?;
            let rec = match crate::wal::decode_record(name, &bytes) {
                Ok(rec) => rec,
                Err(_) => {
                    // Fails the CRC framing: the put tore, the batch was
                    // never acked, nothing to replay.
                    torn.push(name.clone());
                    continue;
                }
            };
            if rec.ndim != self.shape.ndim() || rec.elem_size != self.elem_size as usize {
                return Err(StorageError::Mismatch {
                    reason: format!(
                        "WAL record {name} holds rank-{} points of {}-byte records, \
                         engine stores rank-{} of {}",
                        rec.ndim,
                        rec.elem_size,
                        self.shape.ndim(),
                        self.elem_size
                    ),
                });
            }
            let id = FragmentId {
                seq: *seq,
                epoch: *epoch,
                cgen: 0,
            };
            // Idempotency: a previous replay that died between commit
            // and WAL deletion left the fragment behind under this very
            // name — nothing to re-commit, just finish the retirement.
            if self.catalog.get(&format_fragment_name(id)).is_none() && !rec.is_empty() {
                // Dedup within the batch (last append wins) and emit in
                // address order, matching a group commit's snapshot.
                let mut points: std::collections::BTreeMap<u64, usize> =
                    std::collections::BTreeMap::new();
                for (i, point) in rec.coords.chunks_exact(rec.ndim).enumerate() {
                    points.insert(self.shape.linearize(point)?, i);
                }
                let mut coords = CoordBuffer::with_capacity(self.shape.ndim(), points.len());
                let mut payload = Vec::with_capacity(points.len() * rec.elem_size);
                for i in points.into_values() {
                    coords.push(&rec.coords[i * rec.ndim..(i + 1) * rec.ndim])?;
                    payload
                        .extend_from_slice(&rec.values[i * rec.elem_size..(i + 1) * rec.elem_size]);
                }
                self.write_with(self.kind, &coords, &payload, Some(id), None, true)?;
            }
            match self.backend.delete(name) {
                Err(e) if !e.is_not_found() => return Err(e),
                _ => {}
            }
        }
        // Sweep the torn blobs — never acked, never replayed.
        for name in &torn {
            match self.backend.delete(name) {
                Err(e) if !e.is_not_found() => return Err(e),
                _ => {}
            }
        }
        Ok(())
    }

    /// Algorithm 3 READ as the layered pipeline: plan against the
    /// catalog, fetch/decode matched fragments (in parallel), merge hits
    /// by linear address.
    pub fn read(&self, queries: &CoordBuffer) -> Result<ReadResult> {
        let mut result = ReadResult::default();
        if queries.is_empty() {
            return Ok(result);
        }
        let _span = Span::enter(&self.recorder, SpanKind::Read);
        // Snapshot the write buffer BEFORE the catalog plan. A group
        // commit racing this read moves buffered points into a fragment
        // and drains the buffer; snapshotting first means such points
        // are covered either way — by the overlay (the flush happened
        // after, the fragment's identical records are shadowed) or by
        // the planned fragment (the flush happened before). The reverse
        // order loses acked, previously-visible points: the plan misses
        // the fragment and the late snapshot finds the buffer drained.
        let buffered = self.buffer.snapshot();
        let qbbox = queries
            .bounding_box()
            .expect("non-empty queries have a bbox");

        // A planned fragment can vanish mid-read when a concurrent
        // delete or consolidation removes it between plan and fetch.
        // That is not an error: its points live on in whatever replaced
        // it, so the read re-plans against the refreshed catalog. If
        // fragments keep vanishing (a pathological churn of writers),
        // the final attempt skips them — they are gone from the catalog,
        // so skipping matches what a fresh plan would read anyway.
        for attempt in 0..=MAX_READ_REPLANS {
            // Plan: in-memory discovery + bbox pruning. Every scanned
            // fragment must describe the same tensor this engine stores.
            let plan = {
                let _plan_span = Span::enter(&self.recorder, SpanKind::ReadPlan);
                for entry in self.catalog.snapshot() {
                    self.check_entry_shape(&entry)?;
                }
                let plan = self.catalog.plan(&qbbox);
                charge(|io| {
                    io.fragments_skipped_bbox += (plan.scanned - plan.fragments.len()) as u64;
                });
                plan
            };
            // Fail closed: a strict read over a query that touches a
            // quarantined fragment cannot silently return a partial
            // answer — the missing points would be indistinguishable
            // from absent points.
            if self.config.strict_reads {
                if let Some(name) = plan.quarantined.first() {
                    let reason = self
                        .catalog
                        .quarantined()
                        .into_iter()
                        .find(|(n, _)| n == name)
                        .map(|(_, r)| r)
                        .unwrap_or_default();
                    return Err(StorageError::corrupt(
                        name,
                        format!("fragment is quarantined ({reason})"),
                    ));
                }
            }

            // Fetch → decode → per-fragment read, in parallel; outcomes
            // come back in fragment (write) order.
            let per_fragment = self.execute_plan(&plan.fragments, queries)?;
            let vanished = per_fragment
                .iter()
                .filter(|o| matches!(o, FragmentOutcome::Vanished))
                .count();
            if vanished > 0 {
                charge(|io| io.fragments_replanned += vanished as u64);
            }
            if attempt < MAX_READ_REPLANS && vanished > 0 {
                continue;
            }
            result.fragments_scanned = plan.scanned;
            result.fragments_matched = plan.fragments.len();

            // Merge: sort by linear address (stable: fragment order on
            // ties).
            let _merge_span = Span::enter(&self.recorder, SpanKind::ReadMerge);
            let mut quarantined = plan.quarantined.clone();
            for outcome in per_fragment {
                match outcome {
                    FragmentOutcome::Hits(batch) => result.hits.extend(batch),
                    FragmentOutcome::Quarantined(name) => quarantined.push(name),
                    FragmentOutcome::Vanished => {}
                }
            }
            quarantined.sort_unstable();
            quarantined.dedup();
            result.outcome = ReadOutcome {
                complete: quarantined.is_empty(),
                quarantined,
            };
            // Overlay the streaming-ingest buffer snapshot taken at the
            // start of the read: buffered points were strictly newer
            // than every committed fragment at that instant (a plain
            // write group-commits the buffer first), so on a shared
            // address the buffer's record replaces the fragments' hits.
            if !buffered.is_empty() {
                let mut overlay: Vec<ReadHit> = Vec::new();
                for qi in 0..queries.len() {
                    let addr = self.shape.linearize(queries.point(qi))?;
                    if let Some((coord, record)) = buffered.points.get(&addr) {
                        overlay.push(ReadHit {
                            query_index: qi,
                            addr,
                            coord: coord.clone(),
                            value: record.clone(),
                            fragment: BUFFER_FRAGMENT.to_string(),
                        });
                    }
                }
                if !overlay.is_empty() {
                    let shadowed: std::collections::HashSet<u64> =
                        overlay.iter().map(|h| h.addr).collect();
                    result.hits.retain(|h| !shadowed.contains(&h.addr));
                    result.hits.extend(overlay);
                }
            }
            result.hits.sort_by_key(|a| a.addr);
            break;
        }
        if let Some(plane) = &self.plane {
            // Denominator of the derived read-amplification gauge.
            plane.note_read_returned(result.hits.iter().map(|h| h.value.len() as u64).sum());
        }
        Ok(result)
    }

    /// Typed READ aligned with the query buffer.
    pub fn read_values<V: Element>(&self, queries: &CoordBuffer) -> Result<Vec<Option<V>>> {
        self.check_elem_size::<V>()?;
        self.read(queries)?.to_values(queries.len())
    }

    /// Read every stored point in `region` (the §III evaluation read: the
    /// query enumerates all cells of the region).
    pub fn read_region(&self, region: &Region) -> Result<ReadResult> {
        self.read(&region.to_coords())
    }

    /// Run `read_fragment` over the planned fragments, spreading them
    /// across worker threads, and return each fragment's outcome in plan
    /// (write) order. Errors surface deterministically: the first failed
    /// fragment in plan order wins regardless of thread timing.
    fn execute_plan(
        &self,
        fragments: &[Arc<CatalogEntry>],
        queries: &CoordBuffer,
    ) -> Result<Vec<FragmentOutcome>> {
        let threads = self
            .config
            .effective_parallelism()
            .min(fragments.len())
            .max(1);
        if threads == 1 {
            return fragments
                .iter()
                .map(|entry| self.read_fragment_or_skip(entry, queries))
                .collect();
        }
        // Per-fragment result slot: None until its worker fills it.
        type Slot = parking_lot::Mutex<Option<Result<FragmentOutcome>>>;
        let next = AtomicUsize::new(0);
        let outputs: Vec<Slot> = (0..fragments.len())
            .map(|_| parking_lot::Mutex::new(None))
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(entry) = fragments.get(i) else { break };
                    *outputs[i].lock() = Some(self.read_fragment_or_skip(entry, queries));
                });
            }
        });
        outputs
            .into_iter()
            .map(|slot| slot.into_inner().expect("every fragment slot is filled"))
            .collect()
    }

    /// [`Self::read_fragment`], downgrading two kinds of failure:
    ///
    /// * a NotFound on a fragment that a concurrent delete or
    ///   consolidation removed from the catalog becomes `Vanished` (the
    ///   read re-plans); a NotFound on a fragment the catalog still lists
    ///   is real store corruption and stays an error;
    /// * with `strict_reads` off, a fragment whose bytes are provably
    ///   damaged (checksum mismatch, structural corruption) or that kept
    ///   failing past the retry budget is quarantined and the read
    ///   proceeds over the survivors, reporting the gap in
    ///   [`ReadOutcome`].
    fn read_fragment_or_skip(
        &self,
        entry: &CatalogEntry,
        queries: &CoordBuffer,
    ) -> Result<FragmentOutcome> {
        match self.read_fragment(entry, queries) {
            Ok(hits) => Ok(FragmentOutcome::Hits(hits)),
            Err(e) if e.is_not_found() && self.catalog.get(&entry.name).is_none() => {
                Ok(FragmentOutcome::Vanished)
            }
            Err(e) if !self.config.strict_reads && quarantines(&e) => {
                self.quarantine_fragment(&entry.name, &e);
                Ok(FragmentOutcome::Quarantined(entry.name.clone()))
            }
            Err(e) => Err(e),
        }
    }

    /// Record a fragment as damaged: catalog quarantine (sticky across
    /// reloads, excluded from future plans and consolidation), cache
    /// invalidation, and the telemetry counter — charged only when this
    /// call is the one that quarantined it. Returns whether it was newly
    /// quarantined.
    fn quarantine_fragment(&self, name: &str, error: &StorageError) -> bool {
        let newly = self.catalog.quarantine(name, error.chain_string());
        if newly {
            charge(|io| io.fragments_quarantined += 1);
        }
        self.cache.invalidate(name);
        newly
    }

    /// Fetch, decode, and query one fragment. Chooses among the cached,
    /// whole-fragment, and section/range fetch paths.
    fn read_fragment(&self, entry: &CatalogEntry, queries: &CoordBuffer) -> Result<Vec<ReadHit>> {
        let name = &entry.name;
        let cached = {
            let _fetch = Span::enter(&self.recorder, SpanKind::ReadFetch);
            self.cache.get(name)
        };
        if let Some(decoded) = cached {
            let _decode = Span::enter(&self.recorder, SpanKind::ReadDecode);
            return self.hits_from_payload(
                name,
                &decoded.meta,
                &decoded.index,
                &decoded.values,
                queries,
            );
        }
        if self.cache.is_enabled() {
            // Decode the whole fragment once so the next read is free.
            let decoded = {
                let _fetch = Span::enter(&self.recorder, SpanKind::ReadFetch);
                self.fetch_decoded(entry)?
            };
            let _decode = Span::enter(&self.recorder, SpanKind::ReadDecode);
            return self.hits_from_payload(
                name,
                &decoded.meta,
                &decoded.index,
                &decoded.values,
                queries,
            );
        }
        if !self.config.range_fetch {
            // Fetch and decode are one retry unit: a checksum mismatch
            // may be a torn or flaky transfer, so the re-attempt must
            // re-fetch the bytes, not re-decode the same buffer.
            let (meta, index, values) = {
                let _fetch = Span::enter(&self.recorder, SpanKind::ReadFetch);
                self.with_read_retries(name, || {
                    let bytes = self.backend.get(name)?;
                    decode_fragment(name, &bytes)
                })?
            };
            let _decode = Span::enter(&self.recorder, SpanKind::ReadDecode);
            return self.hits_from_payload(name, &meta, &index, &values, queries);
        }

        // Range path: header + index section first; values only if slots
        // matched.
        let meta = &entry.meta;
        let index = {
            let _fetch = Span::enter(&self.recorder, SpanKind::ReadFetch);
            self.fetch_validated_index(entry)?
        };
        let matched: Vec<(usize, u64)> = {
            let _decode = Span::enter(&self.recorder, SpanKind::ReadDecode);
            let org = meta.kind.create();
            let slots = self.observed_parallel(|| org.read(&index, queries, &self.counter))?;
            slots
                .into_iter()
                .enumerate()
                .filter_map(|(qi, slot)| slot.map(|s| (qi, s)))
                .collect()
        };
        if matched.is_empty() {
            return Ok(Vec::new());
        }
        let elem = meta.elem_size as usize;
        for &(_, slot) in &matched {
            if (slot + 1)
                .checked_mul(elem as u64)
                .is_none_or(|end| end > meta.value_raw_len)
            {
                return Err(StorageError::corrupt(
                    name,
                    format!("value slot {slot} beyond payload"),
                ));
            }
        }
        let records = {
            let _fetch = Span::enter(&self.recorder, SpanKind::ReadFetch);
            self.fetch_value_records(entry, &matched)?
        };
        let mut hits = Vec::with_capacity(matched.len());
        for (qi, slot) in matched {
            let record = records
                .get(&slot)
                .expect("fetch_value_records covers every matched slot")
                .clone();
            let coord = queries.point(qi).to_vec();
            let addr = self.shape.linearize(&coord)?;
            hits.push(ReadHit {
                query_index: qi,
                addr,
                coord,
                value: record,
                fragment: name.clone(),
            });
        }
        Ok(hits)
    }

    /// Fetch the value records for the matched slots of one fragment,
    /// transferring as little of the value section as possible:
    /// compressed sections are fetched whole (they cannot be sliced);
    /// uncompressed slots are coalesced into runs, falling back to the
    /// whole section when the matched runs cover most of it anyway.
    fn fetch_value_records(
        &self,
        entry: &CatalogEntry,
        matched: &[(usize, u64)],
    ) -> Result<HashMap<u64, Vec<u8>>> {
        let name = &entry.name;
        let meta = &entry.meta;
        let elem = meta.elem_size as usize;
        let mut slots: Vec<u64> = matched.iter().map(|&(_, slot)| slot).collect();
        slots.sort_unstable();
        slots.dedup();

        let whole_section = |records: &mut HashMap<u64, Vec<u8>>| -> Result<()> {
            let values = self.with_read_retries(name, || {
                let section =
                    self.backend
                        .get_range(name, meta.value_offset(), meta.value_len as usize)?;
                decode_value_section(name, meta, &section)
            })?;
            for &slot in &slots {
                let start = slot as usize * elem;
                records.insert(slot, values[start..start + elem].to_vec());
            }
            Ok(())
        };

        let mut records = HashMap::with_capacity(slots.len());
        if meta.value_codec != Codec::None {
            whole_section(&mut records)?;
            return Ok(records);
        }

        // Coalesce matched slots into byte runs over the (uncompressed)
        // value section.
        let mut runs: Vec<(u64, u64)> = Vec::new(); // [start_byte, end_byte)
        for &slot in &slots {
            let lo = slot * elem as u64;
            let hi = lo + elem as u64;
            match runs.last_mut() {
                Some((_, end)) if lo <= *end + RUN_COALESCE_GAP_BYTES => *end = hi.max(*end),
                _ => runs.push((lo, hi)),
            }
        }
        charge(|io| io.ranges_coalesced += (slots.len() - runs.len()) as u64);
        let run_bytes: u64 = runs.iter().map(|(lo, hi)| hi - lo).sum();
        if runs.len() > MAX_VALUE_RUNS || run_bytes * 2 >= meta.value_len {
            // Badly scattered slots: one whole-section request beats
            // paying per-request latency dozens of times.
            charge(|io| io.whole_section_fallbacks += 1);
            whole_section(&mut records)?;
            return Ok(records);
        }

        let mut fetched: Vec<(u64, Vec<u8>)> = Vec::with_capacity(runs.len());
        for &(lo, hi) in &runs {
            let bytes = self.with_read_retries(name, || {
                let bytes =
                    self.backend
                        .get_range(name, meta.value_offset() + lo, (hi - lo) as usize)?;
                if bytes.len() != (hi - lo) as usize {
                    return Err(StorageError::corrupt(
                        name,
                        format!(
                            "value records at {lo}..{hi} truncated ({} bytes returned)",
                            bytes.len()
                        ),
                    ));
                }
                Ok(bytes)
            })?;
            fetched.push((lo, bytes));
        }
        for &slot in &slots {
            let lo = slot * elem as u64;
            let (run_lo, bytes) = fetched
                .iter()
                .rev()
                .find(|(run_lo, _)| *run_lo <= lo)
                .expect("every slot falls inside a coalesced run");
            let at = (lo - run_lo) as usize;
            records.insert(slot, bytes[at..at + elem].to_vec());
        }
        Ok(records)
    }

    /// The decode layer shared by the cached and whole-fragment paths:
    /// run the organization's read over a decoded payload and gather
    /// hits.
    fn hits_from_payload(
        &self,
        name: &str,
        meta: &FragmentMeta,
        index: &[u8],
        values: &[u8],
        queries: &CoordBuffer,
    ) -> Result<Vec<ReadHit>> {
        let org = meta.kind.create();
        let slots = self.observed_parallel(|| org.read(index, queries, &self.counter))?;
        let elem = meta.elem_size as usize;
        let mut hits = Vec::new();
        for (qi, slot) in slots.into_iter().enumerate() {
            let Some(slot) = slot else { continue };
            let start = slot as usize * elem;
            let Some(record) = values.get(start..start + elem) else {
                return Err(StorageError::corrupt(
                    name,
                    format!("value slot {slot} beyond payload"),
                ));
            };
            let coord = queries.point(qi).to_vec();
            let addr = self.shape.linearize(&coord)?;
            hits.push(ReadHit {
                query_index: qi,
                addr,
                coord,
                value: record.to_vec(),
                fragment: name.to_string(),
            });
        }
        Ok(hits)
    }

    /// Fetch the fragment's header and index section in one range
    /// request, re-validating the on-device header against the catalog —
    /// a blob mutated behind the engine's back (corruption, an external
    /// rewrite) must fail the read, not silently serve stale or garbage
    /// metadata.
    fn fetch_validated_index(&self, entry: &CatalogEntry) -> Result<Vec<u8>> {
        let name = &entry.name;
        let meta = &entry.meta;
        let head_len = meta.index_offset() + meta.index_len;
        self.with_read_retries(name, || {
            let head = self.backend.get_range(name, 0, head_len as usize)?;
            let on_device = decode_meta(name, &head)?;
            if on_device != *meta {
                return Err(StorageError::corrupt(
                    name,
                    "header on device no longer matches the catalog",
                ));
            }
            let section = head.get(meta.index_offset() as usize..).ok_or_else(|| {
                StorageError::corrupt(name, "fragment truncated inside the header")
            })?;
            decode_index_section(name, meta, section)
        })
    }

    /// Fetch and decode a whole fragment through the cache: a hit costs
    /// nothing, a miss transfers both sections and makes the decode
    /// resident (if the cache is enabled and it fits).
    fn fetch_decoded(&self, entry: &CatalogEntry) -> Result<Arc<DecodedFragment>> {
        let name = &entry.name;
        if let Some(decoded) = self.cache.get(name) {
            return Ok(decoded);
        }
        let decoded = if self.config.range_fetch {
            let meta = &entry.meta;
            let index = self.fetch_validated_index(entry)?;
            let values = self.with_read_retries(name, || {
                let vsec =
                    self.backend
                        .get_range(name, meta.value_offset(), meta.value_len as usize)?;
                decode_value_section(name, meta, &vsec)
            })?;
            DecodedFragment {
                index,
                values,
                meta: meta.clone(),
            }
        } else {
            let (meta, index, values) = self.with_read_retries(name, || {
                let bytes = self.backend.get(name)?;
                decode_fragment(name, &bytes)
            })?;
            DecodedFragment {
                meta,
                index,
                values,
            }
        };
        let decoded = Arc::new(decoded);
        self.cache.insert(name, decoded.clone());
        Ok(decoded)
    }

    /// Run one fragment-fetch unit under the configured
    /// [`RetryPolicy`](crate::config::RetryPolicy): transient failures
    /// (flaky I/O, checksum mismatches — a re-fetch gets fresh bytes)
    /// are retried with bounded exponential backoff, charging one
    /// `retries` tick per re-attempt. On exhaustion a checksum mismatch
    /// surfaces as itself (the caller cares *what* is damaged), while a
    /// transient I/O error is wrapped in
    /// [`StorageError::RetriesExhausted`] with the final error as its
    /// source. Permanent errors (NotFound, corruption, …) return
    /// immediately, so vanished-fragment detection and fail-fast
    /// semantics are unchanged.
    fn with_read_retries<T>(&self, name: &str, mut op: impl FnMut() -> Result<T>) -> Result<T> {
        let policy = &self.config.retry;
        let attempts = policy.attempts();
        let seed = fnv1a(name.as_bytes());
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if attempt + 1 < attempts && e.is_transient() => {
                    charge(|io| io.retries += 1);
                    let pause = policy.backoff(attempt, seed);
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                    attempt += 1;
                }
                Err(e @ StorageError::ChecksumMismatch { .. }) => return Err(e),
                Err(e) if attempt > 0 && e.is_transient() => {
                    return Err(StorageError::RetriesExhausted {
                        attempts: attempt + 1,
                        source: Box::new(e),
                    })
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Run a mutating backend call under the write-side
    /// [`RetryPolicy`](crate::config::RetryPolicy). The same
    /// transient/permanent split as the read path applies — a flaking
    /// put or rename is re-attempted with backoff (deterministic jitter
    /// seeded by the blob name), while a permanent fault (no space,
    /// corruption) surfaces immediately. Exhausted transient faults wrap
    /// in [`StorageError::RetriesExhausted`].
    fn with_write_retries<T>(&self, name: &str, mut op: impl FnMut() -> Result<T>) -> Result<T> {
        let policy = &self.config.write_retry;
        let attempts = policy.attempts();
        let seed = fnv1a(name.as_bytes());
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if attempt + 1 < attempts && e.is_transient() => {
                    charge(|io| io.retries += 1);
                    let pause = policy.backoff(attempt, seed);
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                    attempt += 1;
                }
                Err(e) if attempt > 0 && e.is_transient() => {
                    return Err(StorageError::RetriesExhausted {
                        attempts: attempt + 1,
                        source: Box::new(e),
                    })
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Every scanned fragment must store the same tensor: same shape
    /// (which implies same dimensionality) as this engine.
    fn check_entry_shape(&self, entry: &CatalogEntry) -> Result<()> {
        if entry.meta.shape != self.shape {
            return Err(StorageError::Mismatch {
                reason: format!(
                    "fragment {} has shape {}, engine has {}",
                    entry.name, entry.meta.shape, self.shape
                ),
            });
        }
        Ok(())
    }
}

/// Aggregate statistics over a fragment store (served entirely from the
/// catalog — no device traffic).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StoreStats {
    /// Number of fragments.
    pub fragments: usize,
    /// Total stored points (before cross-fragment dedup).
    pub total_points: u64,
    /// Total bytes on the device.
    pub total_bytes: u64,
    /// Fragments per organization name.
    pub by_format: std::collections::BTreeMap<String, usize>,
    /// Fragments with a compression codec on either payload.
    pub compressed_fragments: usize,
    /// Sum of stored (possibly compressed) index bytes.
    pub index_bytes: u64,
    /// Sum of uncompressed index bytes.
    pub index_raw_bytes: u64,
    /// Epoch claim markers alive at the last recovery pass (including
    /// this engine's own claim).
    pub epoch_markers: u64,
    /// Consolidation tombstones the last recovery replayed (their
    /// fragment had committed).
    pub tombstones_replayed: u64,
    /// Tombstones the last recovery discarded (commit never happened).
    pub tombstones_discarded: u64,
    /// Orphaned `.tmp` staging blobs the last recovery swept.
    pub orphans_swept: u64,
    /// Fragments currently quarantined (counted in `fragments` and
    /// `total_bytes` — their blobs are retained for forensics — but
    /// excluded from reads and consolidation).
    pub quarantined_fragments: usize,
    /// Background scheduler passes executed against this engine.
    pub scheduler_runs: u64,
    /// Scheduler passes that failed (kept out of the ingest path; each
    /// failure is retried on the next tick).
    pub scheduler_errors: u64,
    /// Error chain of the most recent scheduler failure, if any.
    pub scheduler_last_error: Option<String>,
    /// Unix milliseconds of that failure.
    pub scheduler_last_error_at_ms: Option<u64>,
    /// Write-path health state (`Healthy`, `Degraded`, or `ReadOnly`).
    pub health: HealthState,
    /// Consecutive write failures driving the health state machine.
    pub consecutive_write_failures: u32,
    /// Writes refused so far with a typed `Backpressure` or `ReadOnly`
    /// rejection.
    pub backpressure_rejections: u64,
    /// Bytes of acked, unretired WAL blobs counted against
    /// [`max_wal_backlog_bytes`](crate::config::IngestConfig::max_wal_backlog_bytes).
    pub wal_backlog_bytes: u64,
}

impl<B: StorageBackend> StorageEngine<B> {
    /// Summarize the store from the catalog, plus the commit-protocol
    /// artifacts the last recovery pass (open or refresh) observed.
    /// Quarantined fragments are included in the totals — they still
    /// occupy the device — and counted separately.
    pub fn stats(&self) -> Result<StoreStats> {
        let mut stats = StoreStats::default();
        let recovery = *self.recovery.lock();
        stats.epoch_markers = recovery.epoch_markers;
        stats.tombstones_replayed = recovery.tombstones_replayed;
        stats.tombstones_discarded = recovery.tombstones_discarded;
        stats.orphans_swept = recovery.orphans_swept;
        stats.quarantined_fragments = self.catalog.quarantined().len();
        stats.scheduler_runs = self.sched_health.runs.load(Ordering::Relaxed);
        stats.scheduler_errors = self.sched_health.errors.load(Ordering::Relaxed);
        if let Some((message, at_ms)) = self.scheduler_last_error() {
            stats.scheduler_last_error = Some(message);
            stats.scheduler_last_error_at_ms = Some(at_ms);
        }
        stats.health = self.health();
        stats.consecutive_write_failures = self.health.consecutive_failures.load(Ordering::SeqCst);
        stats.backpressure_rejections = self.health.rejections.load(Ordering::Relaxed);
        stats.wal_backlog_bytes = self.wal_backlog.lock().total;
        for entry in self.catalog.snapshot_all() {
            let meta = &entry.meta;
            stats.fragments += 1;
            stats.total_points += meta.n;
            stats.total_bytes += entry.size;
            *stats
                .by_format
                .entry(meta.kind.name().to_string())
                .or_default() += 1;
            if meta.index_codec != Codec::None || meta.value_codec != Codec::None {
                stats.compressed_fragments += 1;
            }
            stats.index_bytes += meta.index_len;
            stats.index_raw_bytes += meta.index_raw_len;
        }
        Ok(stats)
    }

    /// Fragments currently quarantined, with the reason each was benched
    /// (sorted by name).
    pub fn quarantined(&self) -> Vec<(String, String)> {
        self.catalog.quarantined()
    }

    /// Verify the integrity of every cataloged fragment's stored bytes —
    /// headers, sizes, and section checksums — without decoding any
    /// organization or decompressing any payload (checksums cover the
    /// *stored* bytes), so a scrub is pure sequential I/O plus CRC.
    ///
    /// Damaged fragments are quarantined (regardless of `strict_reads`;
    /// scrubbing is diagnosis, not serving) and reported as findings.
    /// Already-quarantined fragments are re-checked too: a finding with
    /// `newly_quarantined == false` confirms known damage. Transient
    /// fetch failures retry under the engine's
    /// [`RetryPolicy`](crate::config::RetryPolicy)
    /// (crate::config::RetryPolicy) before a fragment is declared
    /// damaged; fragments that vanish mid-scrub (concurrent delete or
    /// consolidation) are skipped.
    pub fn scrub(&self) -> Result<ScrubReport> {
        let _span = Span::enter(&self.recorder, SpanKind::Scrub);
        let mut report = ScrubReport::default();
        for entry in self.catalog.snapshot_all() {
            let _frag = Span::enter(&self.recorder, SpanKind::ScrubFragment);
            match self.scrub_fragment(&entry) {
                Ok(Some(legacy)) => {
                    report.fragments_checked += 1;
                    report.healthy += 1;
                    report.bytes_verified += entry.size;
                    if legacy {
                        report.legacy_unverified += 1;
                    }
                }
                Ok(None) => {} // vanished under the scrub
                Err(e) => {
                    report.fragments_checked += 1;
                    let section = match &e {
                        StorageError::ChecksumMismatch { section, .. } => Some(*section),
                        _ => None,
                    };
                    let newly = self.quarantine_fragment(&entry.name, &e);
                    report.findings.push(ScrubFinding {
                        fragment: entry.name.clone(),
                        section,
                        error: e.chain_string(),
                        newly_quarantined: newly,
                    });
                }
            }
        }
        Ok(report)
    }

    /// Verify one fragment's stored bytes: decode the on-device header
    /// (v3 headers self-verify their CRC), require it to match the
    /// catalog, require the blob's exact size, then CRC each section's
    /// stored bytes in place. `Ok(Some(legacy))` when healthy (`legacy`:
    /// a pre-checksum v2 fragment whose sections could only be
    /// length-checked), `Ok(None)` when the fragment vanished mid-scrub.
    fn scrub_fragment(&self, entry: &CatalogEntry) -> Result<Option<bool>> {
        let name = &entry.name;
        let meta = &entry.meta;
        let outcome = (|| -> Result<bool> {
            let on_device = self.with_read_retries(name, || {
                let head = self.backend.get_range(name, 0, meta.own_header_len())?;
                decode_meta(name, &head)
            })?;
            if on_device != *meta {
                return Err(StorageError::corrupt(
                    name,
                    "header on device no longer matches the catalog",
                ));
            }
            let size = self.backend.size(name)?;
            if size != meta.total_len() {
                return Err(StorageError::corrupt(
                    name,
                    format!(
                        "fragment is {size} bytes on the device, header says {}",
                        meta.total_len()
                    ),
                ));
            }
            self.with_read_retries(name, || {
                let section =
                    self.backend
                        .get_range(name, meta.index_offset(), meta.index_len as usize)?;
                verify_section_checksum(name, meta, FragmentSection::Index, &section)
            })?;
            self.with_read_retries(name, || {
                let section =
                    self.backend
                        .get_range(name, meta.value_offset(), meta.value_len as usize)?;
                verify_section_checksum(name, meta, FragmentSection::Value, &section)
            })?;
            Ok(meta.checksums.is_none())
        })();
        match outcome {
            Ok(legacy) => Ok(Some(legacy)),
            Err(e) if e.is_not_found() && self.catalog.get(name).is_none() => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// Outcome of a scrub pass over the whole store.
#[derive(Debug, Clone, Default)]
pub struct ScrubReport {
    /// Fragments examined (healthy + damaged; vanished ones excluded).
    pub fragments_checked: usize,
    /// Fragments whose stored bytes verified clean.
    pub healthy: usize,
    /// Healthy fragments written before checksums existed (format v2):
    /// their sections could only be length-checked, not CRC-verified.
    pub legacy_unverified: usize,
    /// Stored bytes whose integrity was confirmed.
    pub bytes_verified: u64,
    /// The damaged fragments, one finding each.
    pub findings: Vec<ScrubFinding>,
}

impl ScrubReport {
    /// Whether the scrub found no damage at all.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// One damaged fragment a scrub pass found (and quarantined).
#[derive(Debug, Clone)]
pub struct ScrubFinding {
    /// The fragment's blob name.
    pub fragment: String,
    /// Which section's checksum failed, when the damage was a checksum
    /// mismatch (`None` for structural damage: truncation, a header
    /// that no longer matches the catalog, an unreadable blob).
    pub section: Option<FragmentSection>,
    /// The full error chain, as text.
    pub error: String,
    /// Whether this scrub quarantined it (false: it already was).
    pub newly_quarantined: bool,
}

/// Outcome of a consolidation pass.
#[derive(Debug, Clone)]
pub struct ConsolidateReport {
    /// Fragments merged (and deleted).
    pub merged_fragments: usize,
    /// Points in the consolidated fragment (after dedup).
    pub n_points: usize,
    /// Store size before.
    pub before_bytes: u64,
    /// Store size after.
    pub after_bytes: u64,
    /// Name of the new fragment (`None` if nothing needed merging).
    pub fragment: Option<String>,
}

/// The merged view of a store: linear address → (coordinate, record),
/// in canonical address order.
type MergedPoints = std::collections::BTreeMap<u64, (Vec<u64>, Vec<u8>)>;

impl<B: StorageBackend> StorageEngine<B> {
    /// The shared fragment-scan layer: decode every cataloged fragment
    /// (through the cache) and merge its points with the engine's exact
    /// read precedence — within a fragment the *lowest* slot wins (every
    /// format's read scans/searches to the first matching record); across
    /// fragments the most recently written one wins. The BTreeMap gives
    /// canonical linear-address order.
    fn merged_points_from(&self, entries: &[Arc<CatalogEntry>]) -> Result<MergedPoints> {
        let mut merged = MergedPoints::new();
        for entry in entries {
            let name = &entry.name;
            self.check_entry_shape(entry)?;
            if entry.meta.elem_size != self.elem_size {
                return Err(StorageError::Mismatch {
                    reason: format!(
                        "fragment {name} stores {}-byte records, engine {}",
                        entry.meta.elem_size, self.elem_size
                    ),
                });
            }
            let decoded = self.fetch_decoded(entry)?;
            let org = decoded.meta.kind.create();
            let coords = org.enumerate(&decoded.index, &self.counter)?;
            let elem = decoded.meta.elem_size as usize;
            let mut this_fragment = MergedPoints::new();
            for (slot, p) in coords.iter().enumerate() {
                let addr = self.shape.linearize(p)?;
                let record = decoded
                    .values
                    .get(slot * elem..(slot + 1) * elem)
                    .ok_or_else(|| {
                        StorageError::corrupt(name, "enumerated more slots than records")
                    })?
                    .to_vec();
                // First (lowest) slot wins within the fragment.
                this_fragment.entry(addr).or_insert((p.to_vec(), record));
            }
            // Later fragments override earlier ones.
            merged.extend(this_fragment);
        }
        Ok(merged)
    }

    /// Merge every fragment into one (TileDB-style consolidation).
    ///
    /// Runs over the same scan layer as [`StorageEngine::export`]: each
    /// fragment's index is enumerated back into coordinates, values are
    /// deduplicated with the same last-writer-wins rule as
    /// [`StorageEngine::read`], and one new fragment is written under the
    /// engine's current organization and codecs; the source fragments are
    /// deleted (and their cache entries invalidated).
    ///
    /// With [`EngineConfig::adaptive_reorg`](crate::config::EngineConfig)
    /// set, the pass additionally characterizes the merged region's
    /// sparsity during that same scan (no extra pass over the points),
    /// runs the advisor's cost model over the measured statistics, and
    /// encodes the output in the winning organization instead of the
    /// engine's configured one — and a store already consolidated down to
    /// a single fragment is *migrated* in place when the advisor (or the
    /// policy's pin) disagrees with its current organization, converging
    /// to a no-op once they agree.
    ///
    /// The pass is transactional: one catalog snapshot drives both the
    /// merge and the delete set; the delete set is recorded in a tombstone
    /// that commits (atomically) before the consolidated fragment does, so
    /// a crash in any window either discards the whole pass or replays the
    /// deletions at the next open/refresh — never a store with both the
    /// merged fragment and a partial set of its sources counted twice.
    /// The consolidated fragment takes the *highest source* sequence
    /// number (with a consolidation-generation tiebreaker just above the
    /// sources), so a fragment written concurrently while the pass ran
    /// keeps precedence over the merged output instead of being shadowed.
    pub fn consolidate(&self) -> Result<ConsolidateReport> {
        let _span = Span::enter(&self.recorder, SpanKind::Consolidate);
        // Buffered ingests belong in the merge: group-commit them first
        // so the pass sees them as an ordinary source fragment (a no-op
        // when the buffer is empty).
        self.flush()?;
        let _guard = self.consolidate_lock.lock();
        // ONE snapshot drives everything below: the merge input, the new
        // fragment's identity, and the delete set. Fragments written
        // after this point are untouched and outrank the merged output.
        let snapshot_span = Span::enter(&self.recorder, SpanKind::ConsolidateSnapshot);
        let snapshot = self.catalog.snapshot();
        let before_bytes: u64 = snapshot.iter().map(|e| e.size).sum();
        if snapshot.len() <= 1 {
            drop(snapshot_span);
            if let (Some(ad), [entry]) = (self.config.adaptive_reorg.as_ref(), &snapshot[..]) {
                if let Some(report) = self.migrate_single(entry, ad, before_bytes)? {
                    return Ok(report);
                }
            }
            return Ok(ConsolidateReport {
                merged_fragments: snapshot.len(),
                n_points: 0,
                before_bytes,
                after_bytes: before_bytes,
                fragment: None,
            });
        }
        let sources: Vec<String> = snapshot.iter().map(|e| e.name.clone()).collect();
        let mut id = FragmentId {
            seq: 0,
            epoch: self.epoch,
            cgen: 0,
        };
        for src in &sources {
            let sid = parse_fragment_name(src)
                .ok_or_else(|| StorageError::corrupt(src, "cataloged name does not parse"))?;
            id.seq = id.seq.max(sid.seq);
            id.cgen = id.cgen.max(sid.cgen);
        }
        id.cgen += 1;
        drop(snapshot_span);

        let merge_span = Span::enter(&self.recorder, SpanKind::ConsolidateMerge);
        let merged = self.merged_points_from(&snapshot)?;
        let mut coords = CoordBuffer::with_capacity(self.shape.ndim(), merged.len());
        let mut payload = Vec::with_capacity(merged.len() * self.elem_size as usize);
        // Characterization rides the merge scan: the stats accumulate on
        // the points the loop already visits, so adaptive mode adds no
        // extra pass over the data.
        let mut characterize = self
            .config
            .adaptive_reorg
            .as_ref()
            .map(|_| SparsityStatsBuilder::new(self.shape.clone()));
        for (coord, record) in merged.values() {
            coords.push(coord)?;
            payload.extend_from_slice(record);
            if let Some(builder) = characterize.as_mut() {
                builder.push(coord);
            }
        }
        drop(merge_span);

        let target = match (self.config.adaptive_reorg.as_ref(), characterize) {
            (Some(ad), Some(builder)) => {
                let _advise = Span::enter(&self.recorder, SpanKind::ConsolidateAdvise);
                let target = ad.pin.unwrap_or_else(|| {
                    recommend_from_stats(
                        &builder.finish(),
                        &ad.profile.access_profile(),
                        &ad.candidates,
                    )
                    .best()
                });
                let migrating = snapshot.iter().filter(|e| e.meta.kind != target).count() as u64;
                charge(|io| io.fragments_migrated += migrating);
                target
            }
            _ => self.kind,
        };

        // The merged scan is in linear-address order, so the re-encode
        // goes through the direct-conversion builders (sorts elided).
        let convert_span = self
            .config
            .adaptive_reorg
            .as_ref()
            .map(|_| Span::enter(&self.recorder, SpanKind::ConsolidateConvert));
        let report = self.write_with(target, &coords, &payload, Some(id), Some(&sources), true)?;
        drop(convert_span);

        let _sweep_span = Span::enter(&self.recorder, SpanKind::ConsolidateSweep);
        // The commit landed: from here the tombstone guarantees the
        // deletions happen even if this process dies mid-loop. A source
        // already gone (racing deleter, replayed tombstone) is fine.
        for name in &sources {
            // Catalog first: a read racing these deletions then treats
            // the source as vanished instead of failing on NotFound.
            self.catalog.remove(name);
            self.cache.invalidate(name);
            match self.with_write_retries(name, || self.backend.delete(name)) {
                Err(e) if !e.is_not_found() => return Err(e),
                _ => {}
            }
        }
        // The deletions are done; the tombstone is spent. Best effort —
        // recovery replays a leftover as a no-op.
        let _ = self.backend.delete(&tombstone_name(&report.fragment));
        Ok(ConsolidateReport {
            merged_fragments: sources.len(),
            n_points: coords.len(),
            before_bytes,
            after_bytes: self.catalog.total_bytes(),
            fragment: Some(report.fragment),
        })
    }

    /// Adaptive re-organization of a store already consolidated down to
    /// one fragment: characterize it, ask the advisor (or honor the
    /// policy's pin), and when the verdict differs from the fragment's
    /// current organization, re-encode it through the direct conversion
    /// layer — under the same staged, tombstone-protected commit protocol
    /// as a full consolidation, so a crash in any window leaves the store
    /// readable in the old organization. Returns `None` when the fragment
    /// already has the advised organization: repeated passes converge to
    /// a no-op.
    fn migrate_single(
        &self,
        entry: &CatalogEntry,
        ad: &crate::config::AdaptiveReorg,
        before_bytes: u64,
    ) -> Result<Option<ConsolidateReport>> {
        self.check_entry_shape(entry)?;
        if entry.meta.elem_size != self.elem_size {
            return Err(StorageError::Mismatch {
                reason: format!(
                    "fragment {} stores {}-byte records, engine {}",
                    entry.name, entry.meta.elem_size, self.elem_size
                ),
            });
        }
        let decoded = self.fetch_decoded(entry)?;

        let advise_span = Span::enter(&self.recorder, SpanKind::ConsolidateAdvise);
        let target = match ad.pin {
            Some(pin) => pin,
            None => {
                let coords = decoded
                    .meta
                    .kind
                    .create()
                    .enumerate(&decoded.index, &self.counter)?;
                let mut builder = SparsityStatsBuilder::new(self.shape.clone());
                for p in coords.iter() {
                    builder.push(p);
                }
                recommend_from_stats(
                    &builder.finish(),
                    &ad.profile.access_profile(),
                    &ad.candidates,
                )
                .best()
            }
        };
        drop(advise_span);
        if target == decoded.meta.kind {
            return Ok(None);
        }

        let sid = parse_fragment_name(&entry.name)
            .ok_or_else(|| StorageError::corrupt(&entry.name, "cataloged name does not parse"))?;
        // Same identity rule as a full pass: keep the source's sequence
        // number (the data is no newer than that), bump the
        // consolidation generation to outrank it.
        let id = FragmentId {
            seq: sid.seq,
            epoch: self.epoch,
            cgen: sid.cgen + 1,
        };
        let name = format_fragment_name(id);

        let convert_span = Span::enter(&self.recorder, SpanKind::ConsolidateConvert);
        let conv = self.observed_parallel(|| {
            convert::convert(
                decoded.meta.kind,
                &decoded.index,
                target,
                &self.shape,
                &self.counter,
            )
        })?;
        let values = match &conv.map {
            Some(map) => artsparse_tensor::permute::scatter_bytes(
                &decoded.values,
                self.elem_size as usize,
                map,
            ),
            None => decoded.values.clone(),
        };
        charge(|io| {
            io.fragments_migrated += 1;
            if conv.direct {
                io.conversions_direct += 1;
            } else {
                io.conversions_fallback += 1;
            }
        });
        let frag = encode_fragment(
            target,
            &self.shape,
            conv.n_points as u64,
            self.elem_size,
            decoded.meta.bbox.as_ref(),
            &conv.index,
            &values,
            self.index_codec,
            self.value_codec,
        );
        drop(convert_span);

        let tombstone = format!("{}\n", entry.name);
        self.commit_fragment(&name, &frag, Some(&tombstone), true)?;
        let meta = decode_meta(&name, &frag)?;
        self.catalog.insert(CatalogEntry {
            name: name.clone(),
            meta,
            size: frag.len() as u64,
        });

        let _sweep = Span::enter(&self.recorder, SpanKind::ConsolidateSweep);
        self.catalog.remove(&entry.name);
        self.cache.invalidate(&entry.name);
        match self.with_write_retries(&entry.name, || self.backend.delete(&entry.name)) {
            Err(e) if !e.is_not_found() => return Err(e),
            _ => {}
        }
        let _ = self.backend.delete(&tombstone_name(&name));
        Ok(Some(ConsolidateReport {
            merged_fragments: 1,
            n_points: conv.n_points,
            before_bytes,
            after_bytes: self.catalog.total_bytes(),
            fragment: Some(name),
        }))
    }

    /// Enumerate every stored point across all fragments (post-dedup), in
    /// linear-address order, with its value record. Runs over the same
    /// scan layer as [`StorageEngine::consolidate`].
    pub fn export(&self) -> Result<(CoordBuffer, Vec<u8>)> {
        // Buffered ingests are part of the store: group-commit them so
        // the scan layer sees them (a no-op when the buffer is empty).
        self.flush()?;
        let merged = self.merged_points_from(&self.catalog.snapshot())?;
        let mut coords = CoordBuffer::with_capacity(self.shape.ndim(), merged.len());
        let mut payload = Vec::new();
        for (coord, record) in merged.values() {
            coords.push(coord)?;
            payload.extend_from_slice(record);
        }
        Ok((coords, payload))
    }
}

/// FNV-1a over the fragment name: a stable per-fragment jitter seed, so
/// backoff schedules decorrelate across fragments yet replay identically
/// for the same name (deterministic tests, reproducible chaos runs).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn format_fragment_name(id: FragmentId) -> String {
    let FragmentId { seq, epoch, cgen } = id;
    if cgen == 0 {
        format!("{FRAG_PREFIX}{seq:08}-{epoch:08}{FRAG_SUFFIX}")
    } else {
        format!("{FRAG_PREFIX}{seq:08}-{epoch:08}c{cgen:06}{FRAG_SUFFIX}")
    }
}

/// Strict fixed-base decimal (rejects signs/whitespace that `parse`
/// would accept, keeping name parsing a bijection with formatting).
fn parse_decimal(s: &str) -> Option<u64> {
    if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    s.parse().ok()
}

fn parse_fragment_name(name: &str) -> Option<FragmentId> {
    let body = name.strip_prefix(FRAG_PREFIX)?.strip_suffix(FRAG_SUFFIX)?;
    let Some((seq, rest)) = body.split_once('-') else {
        // Legacy pre-epoch name `frag-NNNNNNNN.asf`.
        return Some(FragmentId {
            seq: parse_decimal(body)?,
            epoch: 0,
            cgen: 0,
        });
    };
    let seq = parse_decimal(seq)?;
    match rest.split_once('c') {
        None => Some(FragmentId {
            seq,
            epoch: parse_decimal(rest)?,
            cgen: 0,
        }),
        Some((epoch, cgen)) => {
            let cgen = parse_decimal(cgen)?;
            // `c000000` would alias the plain name; reject it.
            if cgen == 0 || cgen > u32::MAX as u64 {
                return None;
            }
            Some(FragmentId {
                seq,
                epoch: parse_decimal(epoch)?,
                cgen: cgen as u32,
            })
        }
    }
}

fn staged_name(name: &str) -> String {
    format!("{name}{STAGING_SUFFIX}")
}

fn tombstone_name(target: &str) -> String {
    format!("{TOMB_PREFIX}{target}{TOMB_SUFFIX}")
}

/// The fragment a tombstone protects, if the blob name is a tombstone.
fn parse_tombstone_name(name: &str) -> Option<&str> {
    let target = name.strip_prefix(TOMB_PREFIX)?.strip_suffix(TOMB_SUFFIX)?;
    parse_fragment_name(target).map(|_| target)
}

fn epoch_marker_name(epoch: u64) -> String {
    format!("{EPOCH_PREFIX}{epoch:08}{EPOCH_SUFFIX}")
}

fn parse_epoch_marker(name: &str) -> Option<u64> {
    parse_decimal(
        name.strip_prefix(EPOCH_PREFIX)?
            .strip_suffix(EPOCH_SUFFIX)?,
    )
}

/// Claim a fresh epoch: start past every epoch already visible (markers
/// and fragment names), then race create-exclusive puts until one wins.
fn claim_epoch<B: StorageBackend>(backend: &B) -> Result<u64> {
    let mut epoch: u64 = 1;
    for name in backend.list()? {
        if let Some(e) = parse_epoch_marker(&name) {
            epoch = epoch.max(e + 1);
        } else if let Some(id) = parse_fragment_name(&name) {
            epoch = epoch.max(id.epoch + 1);
        }
    }
    loop {
        match backend.put_exclusive(&epoch_marker_name(epoch), &[]) {
            Ok(()) => return Ok(epoch),
            Err(e) if e.is_already_exists() => epoch += 1,
            Err(e) => return Err(e),
        }
    }
}

/// Crash recovery over a store: replay or discard consolidation
/// tombstones, then sweep orphaned staging blobs. Runs before the
/// catalog is (re)built so recovered state is what gets cataloged.
///
/// `keep` names staging blobs that belong to commits in flight *in this
/// process* and must survive the sweep; at open there are none.
fn recover_store<B: StorageBackend>(
    backend: &B,
    keep: Option<&std::collections::HashSet<String>>,
) -> Result<RecoveryReport> {
    let mut report = RecoveryReport::default();
    let names = backend.list()?;
    for name in &names {
        if parse_epoch_marker(name).is_some() {
            report.epoch_markers += 1;
            continue;
        }
        let Some(target) = parse_tombstone_name(name) else {
            continue;
        };
        if backend.exists(target) {
            // The consolidated fragment committed: finish the deletions
            // it recorded. Idempotent — already-deleted sources are fine.
            let content = backend.get(name)?;
            for src in String::from_utf8_lossy(&content)
                .lines()
                .filter(|l| !l.is_empty())
            {
                match backend.delete(src) {
                    Err(e) if !e.is_not_found() => return Err(e),
                    _ => {}
                }
            }
            report.tombstones_replayed += 1;
        } else {
            report.tombstones_discarded += 1;
        }
        // Committed-and-replayed or never-committed: either way the
        // tombstone is spent.
        match backend.delete(name) {
            Err(e) if !e.is_not_found() => return Err(e),
            _ => {}
        }
    }
    for name in &names {
        if !name.ends_with(STAGING_SUFFIX) || keep.is_some_and(|k| k.contains(name)) {
            continue;
        }
        match backend.delete(name) {
            Err(e) if !e.is_not_found() => return Err(e),
            _ => {}
        }
        report.orphans_swept += 1;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{MemBackend, SimulatedDisk};
    use std::time::Duration;

    fn engine(kind: FormatKind) -> StorageEngine<MemBackend> {
        StorageEngine::open(
            MemBackend::new(),
            kind,
            Shape::new(vec![16, 16]).unwrap(),
            8,
        )
        .unwrap()
    }

    fn coords(pts: &[[u64; 2]]) -> CoordBuffer {
        CoordBuffer::from_points(2, pts).unwrap()
    }

    #[test]
    fn write_then_read_roundtrip_every_format() {
        for kind in FormatKind::ALL {
            let e = engine(kind);
            let c = coords(&[[1, 2], [5, 5], [15, 0]]);
            let report = e.write_points::<f64>(&c, &[1.0, 2.0, 3.0]).unwrap();
            assert_eq!(report.n_points, 3);
            assert!(report.total_bytes > 0);
            let q = coords(&[[5, 5], [0, 0], [1, 2]]);
            let vals = e.read_values::<f64>(&q).unwrap();
            assert_eq!(vals, vec![Some(2.0), None, Some(1.0)], "{kind}");
        }
    }

    #[test]
    fn multi_fragment_merge_sorted_by_linear_address() {
        let e = engine(FormatKind::Linear);
        e.write_points::<f64>(&coords(&[[3, 3], [0, 1]]), &[33.0, 1.0])
            .unwrap();
        e.write_points::<f64>(&coords(&[[1, 0], [9, 9]]), &[16.0, 99.0])
            .unwrap();
        let q = coords(&[[9, 9], [0, 1], [1, 0], [3, 3]]);
        let r = e.read(&q).unwrap();
        assert_eq!(r.fragments_matched, 2);
        let addrs: Vec<u64> = r.hits.iter().map(|h| h.addr).collect();
        assert_eq!(addrs, vec![1, 16, 51, 153]);
    }

    #[test]
    fn later_fragment_wins_on_collision() {
        let e = engine(FormatKind::Csf);
        e.write_points::<f64>(&coords(&[[4, 4]]), &[1.0]).unwrap();
        e.write_points::<f64>(&coords(&[[4, 4]]), &[2.0]).unwrap();
        let vals = e.read_values::<f64>(&coords(&[[4, 4]])).unwrap();
        assert_eq!(vals, vec![Some(2.0)]);
    }

    #[test]
    fn typed_calls_reject_mismatched_element_sizes() {
        let e = engine(FormatKind::Coo); // stores 8-byte records
        let c = coords(&[[1, 1]]);
        // Write path: f32 against an f64-sized store.
        let err = e.write_points::<f32>(&c, &[1.0]).unwrap_err();
        assert!(matches!(
            err,
            StorageError::ElementSizeMismatch {
                expected: 8,
                found: 4
            }
        ));
        // Read path: same confusion, same typed error.
        e.write_points::<f64>(&c, &[1.0]).unwrap();
        let err = e.read_values::<f32>(&c).unwrap_err();
        assert!(matches!(
            err,
            StorageError::ElementSizeMismatch {
                expected: 8,
                found: 4
            }
        ));
        // Ingest path too.
        let err = e.ingest_points::<f32>(&c, &[1.0]).unwrap_err();
        assert!(matches!(err, StorageError::ElementSizeMismatch { .. }));
        // Matching sizes still work.
        assert_eq!(e.read_values::<f64>(&c).unwrap(), vec![Some(1.0)]);
    }

    #[test]
    fn ingest_is_readable_before_and_after_flush() {
        let e = engine(FormatKind::Linear);
        assert_eq!(
            e.ingest_points::<f64>(&coords(&[[1, 2], [3, 4]]), &[12.0, 34.0])
                .unwrap(),
            2
        );
        // Buffered, not yet a fragment.
        assert_eq!(e.fragments().unwrap().len(), 0);
        assert_eq!(e.buffer_stats().points, 2);
        assert!(e.buffer_age().is_some());
        let q = coords(&[[3, 4], [0, 0], [1, 2]]);
        let r = e.read(&q).unwrap();
        assert_eq!(r.hits.len(), 2);
        assert!(r.hits.iter().all(|h| h.fragment == BUFFER_FRAGMENT));
        assert_eq!(
            e.read_values::<f64>(&q).unwrap(),
            vec![Some(34.0), None, Some(12.0)]
        );
        // Group commit: same answers, now from a fragment.
        let report = e.flush().unwrap().expect("non-empty buffer flushes");
        assert_eq!(report.n_points, 2);
        assert_eq!(e.buffer_stats().points, 0);
        assert_eq!(e.fragments().unwrap().len(), 1);
        let r = e.read(&q).unwrap();
        assert!(r.hits.iter().all(|h| h.fragment != BUFFER_FRAGMENT));
        assert_eq!(
            e.read_values::<f64>(&q).unwrap(),
            vec![Some(34.0), None, Some(12.0)]
        );
        // Empty flush is a no-op.
        assert!(e.flush().unwrap().is_none());
    }

    #[test]
    fn buffered_point_wins_over_committed_duplicate() {
        let e = engine(FormatKind::Csf);
        e.write_points::<f64>(&coords(&[[4, 4], [2, 2]]), &[1.0, 5.0])
            .unwrap();
        // Newer buffered write of the same coordinate wins unflushed...
        e.ingest_points::<f64>(&coords(&[[4, 4]]), &[2.0]).unwrap();
        let q = coords(&[[4, 4], [2, 2]]);
        assert_eq!(
            e.read_values::<f64>(&q).unwrap(),
            vec![Some(2.0), Some(5.0)]
        );
        // ...and flushed (fresh sequence number outranks the old one).
        e.flush().unwrap();
        assert_eq!(
            e.read_values::<f64>(&q).unwrap(),
            vec![Some(2.0), Some(5.0)]
        );
        // A plain write after an ingest of the same coordinate wins:
        // write() group-commits the buffer before taking its own seq.
        e.ingest_points::<f64>(&coords(&[[2, 2]]), &[6.0]).unwrap();
        e.write_points::<f64>(&coords(&[[2, 2]]), &[7.0]).unwrap();
        assert_eq!(
            e.read_values::<f64>(&coords(&[[2, 2]])).unwrap(),
            vec![Some(7.0)]
        );
    }

    #[test]
    fn ingest_within_buffer_duplicates_last_write_wins() {
        let e = engine(FormatKind::Coo);
        e.ingest_points::<f64>(&coords(&[[3, 3]]), &[1.0]).unwrap();
        e.ingest_points::<f64>(&coords(&[[3, 3]]), &[2.0]).unwrap();
        let q = coords(&[[3, 3]]);
        assert_eq!(e.read_values::<f64>(&q).unwrap(), vec![Some(2.0)]);
        // The flush dedups before encoding: one point in the fragment,
        // the later record.
        let report = e.flush().unwrap().unwrap();
        assert_eq!(report.n_points, 1);
        assert_eq!(e.read_values::<f64>(&q).unwrap(), vec![Some(2.0)]);
    }

    #[test]
    fn ingest_flushes_at_point_threshold() {
        let config = EngineConfig::default().with_ingest(crate::config::IngestConfig {
            flush_points: 3,
            ..Default::default()
        });
        let e = StorageEngine::open_with(
            MemBackend::new(),
            FormatKind::Linear,
            Shape::new(vec![16, 16]).unwrap(),
            8,
            config,
        )
        .unwrap();
        e.ingest_points::<f64>(&coords(&[[0, 1], [0, 2]]), &[1.0, 2.0])
            .unwrap();
        assert_eq!(e.fragments().unwrap().len(), 0);
        e.ingest_points::<f64>(&coords(&[[0, 3]]), &[3.0]).unwrap();
        // Threshold tripped: the buffer group-committed itself.
        assert_eq!(e.fragments().unwrap().len(), 1);
        assert_eq!(e.buffer_stats().points, 0);
        // WAL blobs were retired with the flush.
        let wals = e
            .backend()
            .list()
            .unwrap()
            .into_iter()
            .filter(|n| crate::wal::is_wal_name(n))
            .count();
        assert_eq!(wals, 0);
    }

    #[test]
    fn wal_blobs_cover_exactly_the_buffered_batches() {
        let e = engine(FormatKind::Coo);
        e.ingest_points::<f64>(&coords(&[[1, 1]]), &[1.0]).unwrap();
        e.ingest_points::<f64>(&coords(&[[2, 2]]), &[2.0]).unwrap();
        let wals: Vec<String> = e
            .backend()
            .list()
            .unwrap()
            .into_iter()
            .filter(|n| crate::wal::is_wal_name(n))
            .collect();
        assert_eq!(wals.len(), 2);
        e.flush().unwrap();
        let wals = e
            .backend()
            .list()
            .unwrap()
            .into_iter()
            .filter(|n| crate::wal::is_wal_name(n))
            .count();
        assert_eq!(wals, 0);
    }

    #[test]
    fn unflushed_ingest_survives_reopen_via_wal_replay() {
        let backend = MemBackend::new();
        let shape = Shape::new(vec![8, 8]).unwrap();
        let e1 = StorageEngine::open(backend, FormatKind::Coo, shape.clone(), 8).unwrap();
        e1.write_points::<f64>(&coords(&[[1, 1]]), &[1.0]).unwrap();
        e1.ingest_points::<f64>(&coords(&[[2, 2]]), &[2.0]).unwrap();
        // Simulate a crash: drop the engine without flushing.
        let backend = e1.into_backend();
        let e2 = StorageEngine::open(backend, FormatKind::Coo, shape, 8).unwrap();
        // Replay committed the WAL batch as a fragment under its own id.
        assert_eq!(e2.buffer_stats().points, 0);
        assert_eq!(
            e2.read_values::<f64>(&coords(&[[1, 1], [2, 2]])).unwrap(),
            vec![Some(1.0), Some(2.0)]
        );
        let wals = e2
            .backend()
            .list()
            .unwrap()
            .into_iter()
            .filter(|n| crate::wal::is_wal_name(n))
            .count();
        assert_eq!(wals, 0, "replayed WAL blobs are retired");
    }

    #[test]
    fn consolidate_folds_buffered_points_in() {
        let e = engine(FormatKind::Linear);
        e.write_points::<f64>(&coords(&[[1, 1]]), &[1.0]).unwrap();
        e.write_points::<f64>(&coords(&[[1, 1]]), &[2.0]).unwrap();
        e.ingest_points::<f64>(&coords(&[[1, 1]]), &[3.0]).unwrap();
        let report = e.consolidate().unwrap();
        // The buffered point was group-committed and merged: one
        // fragment, one point, the newest record.
        assert_eq!(report.merged_fragments, 3);
        assert_eq!(report.n_points, 1);
        assert_eq!(e.fragments().unwrap().len(), 1);
        assert_eq!(
            e.read_values::<f64>(&coords(&[[1, 1]])).unwrap(),
            vec![Some(3.0)]
        );
    }

    #[test]
    fn export_includes_buffered_points() {
        let e = engine(FormatKind::Coo);
        e.write_points::<f64>(&coords(&[[1, 1]]), &[1.0]).unwrap();
        e.ingest_points::<f64>(&coords(&[[0, 5]]), &[5.0]).unwrap();
        let (c, payload) = e.export().unwrap();
        assert_eq!(c.len(), 2);
        // Address order: [0,5] (addr 5) before [1,1] (addr 17).
        assert_eq!(c.point(0).to_vec(), vec![0, 5]);
        assert_eq!(c.point(1).to_vec(), vec![1, 1]);
        assert_eq!(payload.len(), 16);
    }

    #[test]
    fn ingest_without_wal_still_reads_and_flushes() {
        let config = EngineConfig::default().with_ingest(crate::config::IngestConfig {
            wal: false,
            ..Default::default()
        });
        let e = StorageEngine::open_with(
            MemBackend::new(),
            FormatKind::Coo,
            Shape::new(vec![16, 16]).unwrap(),
            8,
            config,
        )
        .unwrap();
        e.ingest_points::<f64>(&coords(&[[9, 9]]), &[9.0]).unwrap();
        let wals = e
            .backend()
            .list()
            .unwrap()
            .into_iter()
            .filter(|n| crate::wal::is_wal_name(n))
            .count();
        assert_eq!(wals, 0, "wal off: nothing hits the device before flush");
        assert_eq!(
            e.read_values::<f64>(&coords(&[[9, 9]])).unwrap(),
            vec![Some(9.0)]
        );
        e.flush().unwrap().unwrap();
        assert_eq!(
            e.read_values::<f64>(&coords(&[[9, 9]])).unwrap(),
            vec![Some(9.0)]
        );
    }

    #[test]
    fn bbox_pruning_skips_disjoint_fragments() {
        let e = engine(FormatKind::GcsrPP);
        e.write_points::<f64>(&coords(&[[0, 0], [1, 1]]), &[1.0, 2.0])
            .unwrap();
        e.write_points::<f64>(&coords(&[[14, 14], [15, 15]]), &[3.0, 4.0])
            .unwrap();
        let r = e.read(&coords(&[[0, 1], [1, 1]])).unwrap();
        assert_eq!(r.fragments_scanned, 2);
        assert_eq!(r.fragments_matched, 1);
    }

    #[test]
    fn region_read_matches_paper_semantics() {
        let e = engine(FormatKind::GcscPP);
        e.write_points::<f64>(&coords(&[[2, 2], [3, 9], [8, 8]]), &[1.0, 2.0, 3.0])
            .unwrap();
        let region = Region::from_corners(&[2, 2], &[4, 9]).unwrap();
        let r = e.read_region(&region).unwrap();
        let found: Vec<Vec<u64>> = r.hits.iter().map(|h| h.coord.clone()).collect();
        assert_eq!(found, vec![vec![2, 2], vec![3, 9]]);
    }

    #[test]
    fn write_breakdown_phases_are_populated() {
        let e = engine(FormatKind::GcsrPP);
        let pts: Vec<[u64; 2]> = (0..16).flat_map(|r| (0..16).map(move |c| [r, c])).collect();
        let vals: Vec<f64> = (0..256).map(|i| i as f64).collect();
        let report = e
            .write_points::<f64>(&CoordBuffer::from_points(2, &pts).unwrap(), &vals)
            .unwrap();
        let b = report.breakdown;
        assert!(b.build > 0.0);
        assert!(b.sum() >= b.build + b.write);
        assert!(report.index_bytes > 0 && report.value_bytes == 2048);
    }

    #[test]
    fn rejects_mismatched_values() {
        let e = engine(FormatKind::Coo);
        let c = coords(&[[1, 1]]);
        assert!(matches!(
            e.write(&c, &[0u8; 4]),
            Err(StorageError::Mismatch { .. })
        ));
    }

    #[test]
    fn rejects_out_of_shape_coords() {
        let e = engine(FormatKind::Coo);
        let c = coords(&[[99, 1]]);
        assert!(e.write(&c, &[0u8; 8]).is_err());
    }

    #[test]
    fn empty_write_and_empty_read() {
        let e = engine(FormatKind::Linear);
        let report = e.write_points::<f64>(&CoordBuffer::new(2), &[]).unwrap();
        assert_eq!(report.n_points, 0);
        // Empty fragment has no bbox, so reads never match it.
        let r = e.read(&coords(&[[1, 1]])).unwrap();
        assert_eq!(r.fragments_matched, 0);
        // Empty query short-circuits.
        let r = e.read(&CoordBuffer::new(2)).unwrap();
        assert!(r.hits.is_empty());
    }

    #[test]
    fn id_sequence_continues_after_reopen() {
        let backend = MemBackend::new();
        let shape = Shape::new(vec![8, 8]).unwrap();
        let e1 = StorageEngine::open(backend, FormatKind::Coo, shape.clone(), 8).unwrap();
        let r1 = e1.write_points::<f64>(&coords(&[[1, 1]]), &[1.0]).unwrap();
        let backend = e1.backend; // move out (MemBackend owns the blobs)
        let e2 = StorageEngine::open(backend, FormatKind::Coo, shape, 8).unwrap();
        let r2 = e2.write_points::<f64>(&coords(&[[2, 2]]), &[2.0]).unwrap();
        assert!(r2.fragment > r1.fragment);
        assert_eq!(e2.fragments().unwrap().len(), 2);
        assert!(e2.total_stored_bytes().unwrap() > 0);
    }

    #[test]
    fn corrupt_fragment_surfaces_as_error() {
        let e = engine(FormatKind::Linear);
        e.write_points::<f64>(&coords(&[[1, 1]]), &[1.0]).unwrap();
        let name = e.fragments().unwrap()[0].clone();
        let mut bytes = e.backend().get(&name).unwrap();
        bytes.truncate(bytes.len() - 3);
        e.backend().put(&name, &bytes).unwrap();
        assert!(e.read(&coords(&[[1, 1]])).is_err());
    }

    #[test]
    fn corrupt_fragment_surfaces_without_range_fetch_too() {
        let e =
            engine(FormatKind::Linear).with_config(EngineConfig::default().with_range_fetch(false));
        e.write_points::<f64>(&coords(&[[1, 1]]), &[1.0]).unwrap();
        let name = e.fragments().unwrap()[0].clone();
        let mut bytes = e.backend().get(&name).unwrap();
        bytes.truncate(bytes.len() - 3);
        e.backend().put(&name, &bytes).unwrap();
        assert!(e.read(&coords(&[[1, 1]])).is_err());
    }

    #[test]
    fn transient_read_faults_are_retried_to_success() {
        use crate::config::RetryPolicy;
        use crate::faults::FailingBackend;
        let e = StorageEngine::open_with(
            FailingBackend::new(MemBackend::new()),
            FormatKind::Linear,
            Shape::new(vec![16, 16]).unwrap(),
            8,
            EngineConfig::default()
                .with_telemetry(true)
                .with_retry(RetryPolicy {
                    max_attempts: 4,
                    base_backoff: Duration::ZERO,
                    max_backoff: Duration::ZERO,
                    jitter_pct: 0,
                }),
        )
        .unwrap();
        e.write_points::<f64>(&coords(&[[1, 1]]), &[1.0]).unwrap();
        e.backend().fail_next_reads(2);
        let vals = e.read_values::<f64>(&coords(&[[1, 1]])).unwrap();
        assert_eq!(vals, vec![Some(1.0)]);
        assert_eq!(e.backend().read_faults_remaining(), 0);
        // Three attempts total: the two re-attempts are the retries.
        let report = e.telemetry_report().unwrap();
        assert_eq!(report.totals.retries, 2);
        assert_eq!(report.totals.fragments_quarantined, 0);
    }

    #[test]
    fn exhausted_retries_surface_with_attempt_count() {
        use crate::config::RetryPolicy;
        use crate::faults::FailingBackend;
        let e = StorageEngine::open_with(
            FailingBackend::new(MemBackend::new()),
            FormatKind::Linear,
            Shape::new(vec![16, 16]).unwrap(),
            8,
            EngineConfig::default().with_retry(RetryPolicy {
                max_attempts: 2,
                base_backoff: Duration::ZERO,
                max_backoff: Duration::ZERO,
                jitter_pct: 0,
            }),
        )
        .unwrap();
        e.write_points::<f64>(&coords(&[[1, 1]]), &[1.0]).unwrap();
        e.backend().fail_next_reads(10);
        let err = e.read(&coords(&[[1, 1]])).unwrap_err();
        assert!(
            matches!(err, StorageError::RetriesExhausted { attempts: 2, .. }),
            "{err}"
        );
        // The typed payload survives the wrapping.
        assert!(crate::faults::injected_fault(&err).is_some());
    }

    #[test]
    fn bit_flip_fails_strict_read_with_checksum_mismatch() {
        let e = engine(FormatKind::Linear);
        e.write_points::<f64>(&coords(&[[1, 1], [2, 2]]), &[1.0, 2.0])
            .unwrap();
        let name = e.fragments().unwrap()[0].clone();
        let mut bytes = e.backend().get(&name).unwrap();
        let at = bytes.len() - 1; // value section
        bytes[at] ^= 0x01;
        e.backend().put(&name, &bytes).unwrap();
        let err = e.read(&coords(&[[1, 1]])).unwrap_err();
        match &err {
            StorageError::ChecksumMismatch {
                name: n, section, ..
            } => {
                assert_eq!(n, &name);
                assert_eq!(*section, FragmentSection::Value);
            }
            other => panic!("expected a checksum mismatch, got {other}"),
        }
        assert!(err.to_string().contains(&name));
    }

    #[test]
    fn degraded_read_quarantines_and_reports_the_damaged_fragment() {
        let e = engine(FormatKind::Linear)
            .with_config(EngineConfig::default().with_strict_reads(false));
        e.write_points::<f64>(&coords(&[[1, 1]]), &[1.0]).unwrap();
        e.write_points::<f64>(&coords(&[[2, 2]]), &[2.0]).unwrap();
        let victim = e.fragments().unwrap()[0].clone();
        let mut bytes = e.backend().get(&victim).unwrap();
        let at = bytes.len() - 1;
        bytes[at] ^= 0x80;
        e.backend().put(&victim, &bytes).unwrap();

        let r = e.read(&coords(&[[1, 1], [2, 2]])).unwrap();
        assert!(!r.outcome.complete);
        assert_eq!(r.outcome.quarantined, vec![victim.clone()]);
        assert_eq!(r.to_values::<f64>(2).unwrap(), vec![None, Some(2.0)]);

        // Sticky: the next plan skips it up front and still reports it.
        let r2 = e.read(&coords(&[[1, 1], [2, 2]])).unwrap();
        assert!(!r2.outcome.complete);
        assert_eq!(r2.outcome.quarantined, vec![victim.clone()]);

        // Consolidation refuses it: one healthy fragment left → no-op,
        // and the damaged blob stays on the device for forensics.
        let c = e.consolidate().unwrap();
        assert!(c.fragment.is_none());
        assert!(e.backend().exists(&victim));
        assert_eq!(e.stats().unwrap().quarantined_fragments, 1);
        assert_eq!(e.quarantined().len(), 1);
    }

    #[test]
    fn strict_read_fails_closed_on_a_previously_quarantined_fragment() {
        let e = engine(FormatKind::Linear);
        e.write_points::<f64>(&coords(&[[1, 1]]), &[1.0]).unwrap();
        let name = e.fragments().unwrap()[0].clone();
        let mut bytes = e.backend().get(&name).unwrap();
        let at = bytes.len() - 1;
        bytes[at] ^= 0x02;
        e.backend().put(&name, &bytes).unwrap();
        e.scrub().unwrap();
        let err = e.read(&coords(&[[1, 1]])).unwrap_err();
        assert!(err.to_string().contains("quarantined"), "{err}");
    }

    #[test]
    fn scrub_detects_damage_without_decoding_organizations() {
        let e = engine(FormatKind::Csf);
        for (i, v) in [1.0, 2.0, 3.0].iter().enumerate() {
            let p = (i + 1) as u64;
            e.write_points::<f64>(&coords(&[[p, p]]), &[*v]).unwrap();
        }
        let clean = e.scrub().unwrap();
        assert!(clean.is_clean());
        assert_eq!((clean.fragments_checked, clean.healthy), (3, 3));
        assert!(clean.bytes_verified > 0);

        let victim = e.fragments().unwrap()[1].clone();
        let mut bytes = e.backend().get(&victim).unwrap();
        let at = bytes.len() - 1;
        bytes[at] ^= 0x04;
        e.backend().put(&victim, &bytes).unwrap();
        let ops_before = e.counter().snapshot().total();
        let report = e.scrub().unwrap();
        // Scrub never decodes an organization: the op counter is idle.
        assert_eq!(e.counter().snapshot().total(), ops_before);
        assert_eq!((report.fragments_checked, report.healthy), (3, 2));
        assert_eq!(report.findings.len(), 1);
        let f = &report.findings[0];
        assert_eq!(f.fragment, victim);
        assert_eq!(f.section, Some(FragmentSection::Value));
        assert!(f.newly_quarantined);

        // Re-scrub: still damaged, but no longer *newly* quarantined.
        let again = e.scrub().unwrap();
        assert_eq!(again.findings.len(), 1);
        assert!(!again.findings[0].newly_quarantined);
    }

    #[test]
    fn scrub_flags_a_truncated_fragment_as_structural_damage() {
        let e = engine(FormatKind::Linear);
        e.write_points::<f64>(&coords(&[[1, 1]]), &[1.0]).unwrap();
        let name = e.fragments().unwrap()[0].clone();
        let mut bytes = e.backend().get(&name).unwrap();
        bytes.truncate(bytes.len() - 3);
        e.backend().put(&name, &bytes).unwrap();
        let report = e.scrub().unwrap();
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0].error.contains("bytes"));
    }

    #[test]
    fn stats_summarize_the_store() {
        let backend = MemBackend::new();
        let shape = Shape::new(vec![16, 16]).unwrap();
        let e1 = StorageEngine::open(backend, FormatKind::Coo, shape.clone(), 8).unwrap();
        e1.write_points::<f64>(&coords(&[[1, 1], [2, 2]]), &[1.0, 2.0])
            .unwrap();
        let e2 = StorageEngine::open(e1.into_backend(), FormatKind::Csf, shape, 8)
            .unwrap()
            .with_compression(Codec::DeltaVarint, Codec::None);
        e2.write_points::<f64>(&coords(&[[3, 3]]), &[3.0]).unwrap();
        let s = e2.stats().unwrap();
        assert_eq!(s.fragments, 2);
        assert_eq!(s.total_points, 3);
        assert_eq!(s.by_format["COO"], 1);
        assert_eq!(s.by_format["CSF"], 1);
        assert_eq!(s.compressed_fragments, 1);
        assert!(s.total_bytes > 0);
        assert!(s.index_bytes <= s.index_raw_bytes + s.index_bytes);
        assert_eq!(s.total_bytes, e2.total_stored_bytes().unwrap());
    }

    #[test]
    fn fragment_names_roundtrip() {
        for id in [
            FragmentId {
                seq: 42,
                epoch: 7,
                cgen: 0,
            },
            FragmentId {
                seq: 42,
                epoch: 7,
                cgen: 3,
            },
            FragmentId {
                seq: u64::MAX,
                epoch: u64::MAX,
                cgen: u32::MAX,
            },
        ] {
            let n = format_fragment_name(id);
            assert_eq!(parse_fragment_name(&n), Some(id), "{n}");
        }
        // Legacy pre-epoch names still parse (epoch 0, plain).
        assert_eq!(
            parse_fragment_name("frag-00000042.asf"),
            Some(FragmentId {
                seq: 42,
                epoch: 0,
                cgen: 0
            })
        );
        for bad in [
            "other.bin",
            "frag-xx.asf",
            "frag-00000001-xx.asf",
            "frag-00000001-00000001c000000.asf", // cgen 0 aliases the plain name
            "frag-00000001-00000001cxx.asf",
            "frag--1.asf",
            "frag-+1.asf",
            "frag-00000001-00000001.asf.tmp", // staged: invisible
            "tomb-frag-00000001-00000001.asf.tsn",
            "epoch-00000001.lck",
        ] {
            assert_eq!(parse_fragment_name(bad), None, "{bad}");
        }
    }

    #[test]
    fn name_order_is_precedence_order() {
        // Lexicographic blob-name order must equal (seq, epoch, cgen)
        // order — it is what the catalog sorts by and what cross-fragment
        // last-writer-wins precedence runs on.
        let ids = [
            FragmentId {
                seq: 1,
                epoch: 2,
                cgen: 0,
            },
            FragmentId {
                seq: 1,
                epoch: 2,
                cgen: 1,
            },
            FragmentId {
                seq: 1,
                epoch: 3,
                cgen: 0,
            },
            FragmentId {
                seq: 2,
                epoch: 1,
                cgen: 0,
            },
            FragmentId {
                seq: 100,
                epoch: 1,
                cgen: 0,
            },
        ];
        let names: Vec<String> = ids.iter().map(|&id| format_fragment_name(id)).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn auxiliary_names_roundtrip() {
        let frag = "frag-00000003-00000001.asf";
        assert_eq!(staged_name(frag), "frag-00000003-00000001.asf.tmp");
        let tomb = tombstone_name(frag);
        assert_eq!(parse_tombstone_name(&tomb), Some(frag));
        assert_eq!(parse_tombstone_name("tomb-junk.tsn"), None);
        assert_eq!(parse_tombstone_name(frag), None);
        assert_eq!(parse_epoch_marker(&epoch_marker_name(9)), Some(9));
        assert_eq!(parse_epoch_marker(frag), None);
    }

    #[test]
    fn epochs_are_claimed_exclusively() {
        let backend = MemBackend::new();
        assert_eq!(claim_epoch(&backend).unwrap(), 1);
        assert_eq!(claim_epoch(&backend).unwrap(), 2);
        // A fragment from a crashed engine whose marker was never written
        // still pushes the claim past its epoch.
        backend.put("frag-00000001-00000009.asf", &[0]).unwrap();
        assert_eq!(claim_epoch(&backend).unwrap(), 10);
    }

    #[test]
    fn recovery_discards_uncommitted_and_replays_committed_tombstones() {
        let backend = MemBackend::new();
        let frag = "frag-00000002-00000001c000001.asf";
        // Uncommitted: tombstone exists, target never renamed in.
        backend.put("frag-00000001-00000001.asf", &[1]).unwrap();
        backend
            .put(&tombstone_name(frag), b"frag-00000001-00000001.asf\n")
            .unwrap();
        backend.put(&staged_name(frag), &[9]).unwrap();
        recover_store(&backend, None).unwrap();
        assert!(backend.exists("frag-00000001-00000001.asf"));
        assert!(!backend.exists(&tombstone_name(frag)));
        assert!(!backend.exists(&staged_name(frag)));

        // Committed: target present → sources deleted, tombstone spent.
        backend.put(frag, &[2]).unwrap();
        backend
            .put(&tombstone_name(frag), b"frag-00000001-00000001.asf\n")
            .unwrap();
        recover_store(&backend, None).unwrap();
        assert!(backend.exists(frag));
        assert!(!backend.exists("frag-00000001-00000001.asf"));
        assert!(!backend.exists(&tombstone_name(frag)));

        // `keep` protects an in-flight staging blob from the sweep.
        let inflight = staged_name("frag-00000005-00000001.asf");
        backend.put(&inflight, &[3]).unwrap();
        let keep: std::collections::HashSet<String> = [inflight.clone()].into();
        recover_store(&backend, Some(&keep)).unwrap();
        assert!(backend.exists(&inflight));
    }

    #[test]
    fn mixed_format_fragments_read_together() {
        // Fragments self-describe: an engine can read fragments written
        // under a different organization.
        let backend = MemBackend::new();
        let shape = Shape::new(vec![16, 16]).unwrap();
        let e_coo = StorageEngine::open(backend, FormatKind::Coo, shape.clone(), 8).unwrap();
        e_coo
            .write_points::<f64>(&coords(&[[1, 1]]), &[1.0])
            .unwrap();
        let e_csf = StorageEngine::open(e_coo.backend, FormatKind::Csf, shape, 8).unwrap();
        e_csf
            .write_points::<f64>(&coords(&[[2, 2]]), &[2.0])
            .unwrap();
        let vals = e_csf
            .read_values::<f64>(&coords(&[[1, 1], [2, 2]]))
            .unwrap();
        assert_eq!(vals, vec![Some(1.0), Some(2.0)]);
    }

    // ---- layered-pipeline behavior --------------------------------------

    #[test]
    fn read_rejects_fragments_with_a_different_shape() {
        // Same dimensionality, different extents: the old ndim-only check
        // would silently accept this store.
        let backend = MemBackend::new();
        let e1 = StorageEngine::open(
            backend,
            FormatKind::Linear,
            Shape::new(vec![16, 16]).unwrap(),
            8,
        )
        .unwrap();
        e1.write_points::<f64>(&coords(&[[1, 1]]), &[1.0]).unwrap();
        let e2 = StorageEngine::open(
            e1.into_backend(),
            FormatKind::Linear,
            Shape::new(vec![16, 32]).unwrap(),
            8,
        )
        .unwrap();
        let err = e2.read(&coords(&[[1, 1]])).unwrap_err();
        assert!(matches!(err, StorageError::Mismatch { .. }), "{err}");
    }

    #[test]
    fn to_values_rejects_record_size_mismatch() {
        let e = engine(FormatKind::Linear); // stores 8-byte records
        e.write_points::<f64>(&coords(&[[1, 1]]), &[1.0]).unwrap();
        let r = e.read(&coords(&[[1, 1]])).unwrap();
        assert_eq!(r.hits.len(), 1);
        // Asking for 4-byte elements from an 8-byte store is corruption
        // (or type confusion), not an empty result.
        let err = r.to_values::<f32>(1).unwrap_err();
        assert!(matches!(err, StorageError::CorruptFragment { .. }), "{err}");
        // The aligned type still works.
        assert_eq!(r.to_values::<f64>(1).unwrap(), vec![Some(1.0)]);
    }

    #[test]
    fn read_transfers_only_matched_sections() {
        // One fragment of 64 points; a one-point query must not transfer
        // the whole value section, and discovery must not touch the
        // device at all (the catalog already knows the store).
        let disk = SimulatedDisk::new(1e12, Duration::ZERO);
        let e = StorageEngine::open(
            disk,
            FormatKind::Linear,
            Shape::new(vec![64, 64]).unwrap(),
            8,
        )
        .unwrap();
        let pts: Vec<[u64; 2]> = (0..64).map(|i| [i, i]).collect();
        let vals: Vec<f64> = (0..64).map(|i| i as f64).collect();
        e.write_points::<f64>(&CoordBuffer::from_points(2, &pts).unwrap(), &vals)
            .unwrap();
        let frag_size = e.total_stored_bytes().unwrap();

        let before = e.backend().bytes_read();
        let got = e.read_values::<f64>(&coords(&[[7, 7]])).unwrap();
        assert_eq!(got, vec![Some(7.0)]);
        let transferred = e.backend().bytes_read() - before;
        assert!(
            transferred < frag_size,
            "read transferred {transferred} of a {frag_size}-byte fragment"
        );
        // The value section is 512 bytes; a single 8-byte record must not
        // drag in more than the header + index section + one coalesced run.
        let meta = &e.catalog.get(&e.fragments().unwrap()[0]).unwrap().meta;
        assert!(
            transferred <= meta.index_offset() + meta.index_len + 8 + RUN_COALESCE_GAP_BYTES,
            "transferred {transferred}, header+index {}",
            meta.index_offset() + meta.index_len
        );
    }

    #[test]
    fn cache_makes_repeat_reads_free_of_device_traffic() {
        let disk = SimulatedDisk::new(1e12, Duration::ZERO);
        let e = StorageEngine::open_with(
            disk,
            FormatKind::GcsrPP,
            Shape::new(vec![16, 16]).unwrap(),
            8,
            EngineConfig::default().with_cache_capacity(1 << 20),
        )
        .unwrap();
        e.write_points::<f64>(&coords(&[[1, 2], [5, 5]]), &[1.0, 2.0])
            .unwrap();
        let q = coords(&[[5, 5], [1, 2]]);
        let first = e.read_values::<f64>(&q).unwrap();
        let after_first = e.backend().bytes_read();
        let second = e.read_values::<f64>(&q).unwrap();
        assert_eq!(first, second);
        assert_eq!(
            e.backend().bytes_read(),
            after_first,
            "second read should be served from the cache"
        );
        let stats = e.cache().stats();
        assert!(stats.hits >= 1, "{stats:?}");
    }

    #[test]
    fn consolidate_and_delete_invalidate_the_cache() {
        let e = StorageEngine::open_with(
            MemBackend::new(),
            FormatKind::Linear,
            Shape::new(vec![16, 16]).unwrap(),
            8,
            EngineConfig::default().with_cache_capacity(1 << 20),
        )
        .unwrap();
        e.write_points::<f64>(&coords(&[[1, 1]]), &[1.0]).unwrap();
        e.write_points::<f64>(&coords(&[[2, 2]]), &[2.0]).unwrap();
        e.read(&coords(&[[1, 1], [2, 2]])).unwrap();
        assert!(!e.cache().is_empty());
        let report = e.consolidate().unwrap();
        assert_eq!(report.merged_fragments, 2);
        // The merged fragment is the only cacheable thing left; the two
        // deleted fragments must be gone from the cache.
        assert!(e.cache().len() <= 1);
        assert_eq!(e.fragments().unwrap().len(), 1);
        assert_eq!(
            e.read_values::<f64>(&coords(&[[1, 1], [2, 2]])).unwrap(),
            vec![Some(1.0), Some(2.0)]
        );
    }

    #[test]
    fn delete_fragment_and_refresh_track_the_device() {
        let e = engine(FormatKind::Coo);
        let r1 = e.write_points::<f64>(&coords(&[[1, 1]]), &[1.0]).unwrap();
        e.write_points::<f64>(&coords(&[[2, 2]]), &[2.0]).unwrap();
        e.delete_fragment(&r1.fragment).unwrap();
        assert_eq!(e.fragments().unwrap().len(), 1);
        assert_eq!(
            e.read_values::<f64>(&coords(&[[1, 1], [2, 2]])).unwrap(),
            vec![None, Some(2.0)]
        );

        // An external writer adds a blob behind the engine's back: the
        // catalog only sees it after refresh.
        let other = engine(FormatKind::Coo);
        other
            .write_points::<f64>(&coords(&[[3, 3]]), &[3.0])
            .unwrap();
        let blob = other.backend().get(&other.fragments().unwrap()[0]).unwrap();
        e.backend().put("frag-00000099.asf", &blob).unwrap();
        assert_eq!(e.fragments().unwrap().len(), 1);
        e.refresh().unwrap();
        assert_eq!(e.fragments().unwrap().len(), 2);
        // The id sequence moved past the discovered fragment.
        let r = e.write_points::<f64>(&coords(&[[4, 4]]), &[4.0]).unwrap();
        assert!(r.fragment.as_str() > "frag-00000099.asf");
    }

    #[test]
    fn parallel_and_sequential_reads_agree() {
        let shape = Shape::new(vec![32, 32]).unwrap();
        let e =
            StorageEngine::open(MemBackend::new(), FormatKind::Linear, shape.clone(), 8).unwrap();
        for base in 0..6u64 {
            let pts: Vec<[u64; 2]> = (0..8).map(|i| [(base * 4 + i) % 32, i]).collect();
            let vals: Vec<f64> = (0..8).map(|i| (base * 100 + i) as f64).collect();
            e.write_points::<f64>(&CoordBuffer::from_points(2, &pts).unwrap(), &vals)
                .unwrap();
        }
        let q = Region::from_corners(&[0, 0], &[31, 7]).unwrap().to_coords();
        let parallel = e.read(&q).unwrap();

        let seq = StorageEngine::open_with(
            e.into_backend(),
            FormatKind::Linear,
            shape,
            8,
            EngineConfig::default()
                .with_read_parallelism(1)
                .with_range_fetch(false),
        )
        .unwrap();
        let sequential = seq.read(&q).unwrap();
        assert_eq!(parallel.hits, sequential.hits);
        assert_eq!(parallel.fragments_matched, sequential.fragments_matched);
    }

    fn observed_engine() -> StorageEngine<MemBackend> {
        StorageEngine::open_with(
            MemBackend::new(),
            FormatKind::Coo,
            Shape::new(vec![16, 16]).unwrap(),
            8,
            EngineConfig::default()
                .with_observability(crate::config::ObservabilityConfig::default()),
        )
        .unwrap()
    }

    #[test]
    fn plane_is_absent_by_default_and_present_when_configured() {
        let plain = engine(FormatKind::Coo);
        assert!(plain.observability().is_none());
        plain.observe(); // must be a strict no-op
        let e = observed_engine();
        let plane = e.observability().expect("configured plane is on");
        // Span traffic feeds live counters without any explicit call.
        e.ingest_points::<f64>(&coords(&[[1, 1]]), &[1.0]).unwrap();
        let snap = plane.registry().snapshot();
        assert!(snap.sample("artsparse_wal_bytes_total").unwrap().value > 0.0);
    }

    #[test]
    fn observe_samples_live_gauges() {
        let e = observed_engine();
        e.write_points::<f64>(&coords(&[[1, 1], [2, 2]]), &[1.0, 2.0])
            .unwrap();
        e.ingest_points::<f64>(&coords(&[[3, 3]]), &[3.0]).unwrap();
        e.observe();
        let snap = e.observability().unwrap().registry().snapshot();
        let value = |name: &str| snap.sample(name).unwrap().value;
        assert_eq!(value("artsparse_fragments"), 1.0);
        assert_eq!(value("artsparse_write_buffer_points"), 1.0);
        assert_eq!(value("artsparse_write_buffer_batches"), 1.0);
        assert_eq!(value("artsparse_wal_backlog_blobs"), 1.0);
        assert_eq!(value("artsparse_quarantined_fragments"), 0.0);
        assert_eq!(value("artsparse_scheduler_last_run_age_seconds"), -1.0);
        let tiers = snap.sample("artsparse_fragment_bytes").unwrap();
        assert_eq!(tiers.histogram.as_ref().unwrap().count(), 1);
        // Flush and re-observe: the gauges move.
        e.flush().unwrap();
        e.observe();
        let snap = e.observability().unwrap().registry().snapshot();
        let value = |name: &str| snap.sample(name).unwrap().value;
        assert_eq!(value("artsparse_write_buffer_points"), 0.0);
        assert_eq!(value("artsparse_wal_backlog_blobs"), 0.0);
        assert_eq!(value("artsparse_fragments"), 2.0);
    }

    #[test]
    fn read_amplification_gauge_derives_from_reads() {
        let e = observed_engine();
        e.write_points::<f64>(&coords(&[[1, 1]]), &[1.0]).unwrap();
        let plane = Arc::clone(e.observability().unwrap());
        assert_eq!(plane.read_amplification(), None, "no read returned yet");
        e.read_values::<f64>(&coords(&[[1, 1]])).unwrap();
        // A cold point read fetches index + value sections to return one
        // 8-byte record: amplification is well above 1.
        let ratio = plane.read_amplification().unwrap();
        assert!(ratio > 1.0, "got {ratio}");
        e.observe();
        let snap = plane.registry().snapshot();
        assert_eq!(
            snap.sample("artsparse_read_amplification").unwrap().value,
            ratio
        );
    }

    #[test]
    fn engine_op_span_trees_share_one_trace_id() {
        let recording = Arc::new(artsparse_metrics::TelemetryRecorder::new());
        let e = observed_engine().with_recorder(recording.clone());
        e.ingest_points::<f64>(&coords(&[[1, 1]]), &[1.0]).unwrap();
        let events = recording.report().events;
        // ingest → WAL append: one tree, one trace.
        let ingest: Vec<_> = events
            .iter()
            .filter(|ev| matches!(ev.kind, SpanKind::Ingest | SpanKind::IngestWal))
            .collect();
        assert_eq!(ingest.len(), 2);
        assert!(ingest.iter().all(|ev| ev.trace_id == ingest[0].trace_id));
        assert_ne!(ingest[0].trace_id, 0);

        e.write_points::<f64>(&coords(&[[2, 2]]), &[2.0]).unwrap();
        e.consolidate().unwrap();
        let events = recording.report().events;
        // The consolidate tree (snapshot/merge/write/commit/sweep all
        // nested under engine.consolidate) shares the root's trace id,
        // and it differs from the ingest trace.
        let root = events
            .iter()
            .find(|ev| ev.kind == SpanKind::Consolidate)
            .expect("consolidate root span");
        assert_ne!(root.trace_id, ingest[0].trace_id);
        for kind in [
            SpanKind::ConsolidateSnapshot,
            SpanKind::ConsolidateMerge,
            SpanKind::ConsolidateSweep,
        ] {
            let child = events.iter().find(|ev| ev.kind == kind).unwrap();
            assert_eq!(child.trace_id, root.trace_id, "{kind:?}");
        }
    }

    #[test]
    fn stats_surface_scheduler_health() {
        let e = observed_engine();
        let s = e.stats().unwrap();
        assert_eq!((s.scheduler_runs, s.scheduler_errors), (0, 0));
        assert!(s.scheduler_last_error.is_none());
        e.note_scheduler_run();
        e.note_scheduler_error(&StorageError::Mismatch {
            reason: "synthetic failure".to_string(),
        });
        let s = e.stats().unwrap();
        assert_eq!((s.scheduler_runs, s.scheduler_errors), (1, 1));
        assert!(s
            .scheduler_last_error
            .unwrap()
            .contains("synthetic failure"));
        assert!(s.scheduler_last_error_at_ms.unwrap() > 0);
        // The failure also reached the journal, trace-correlated.
        let plane = e.observability().unwrap();
        let events = plane.journal().drain_new();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].code, "scheduler_error");
        assert!(events[0].message.contains("synthetic failure"));
    }

    #[test]
    fn transient_write_faults_are_retried_to_success() {
        use crate::config::RetryPolicy;
        use crate::faults::FailingBackend;
        let e = StorageEngine::open_with(
            FailingBackend::new(MemBackend::new()),
            FormatKind::Linear,
            Shape::new(vec![16, 16]).unwrap(),
            8,
            EngineConfig::default().with_write_retry(RetryPolicy {
                max_attempts: 4,
                base_backoff: Duration::ZERO,
                max_backoff: Duration::ZERO,
                jitter_pct: 0,
            }),
        )
        .unwrap();
        // Two flaky puts, then the device heals: the WAL append lands on
        // the third attempt and the batch is acked normally.
        e.backend().fail_next_writes(2);
        e.ingest_points::<f64>(&coords(&[[1, 1]]), &[1.0]).unwrap();
        assert_eq!(e.backend().write_faults_remaining(), 0);
        assert_eq!(e.health(), HealthState::Healthy);
        assert_eq!(
            e.read_values::<f64>(&coords(&[[1, 1]])).unwrap(),
            vec![Some(1.0)]
        );
        // Plain writes retry through commit_fragment too.
        e.backend().fail_next_writes(2);
        e.write_points::<f64>(&coords(&[[2, 2]]), &[2.0]).unwrap();
        assert_eq!(e.health(), HealthState::Healthy);
    }

    #[test]
    fn write_failures_walk_the_health_ladder_and_probes_recover_it() {
        use crate::config::{HealthConfig, RetryPolicy};
        use crate::faults::FailingBackend;
        let e = StorageEngine::open_with(
            FailingBackend::new(MemBackend::new()),
            FormatKind::Linear,
            Shape::new(vec![16, 16]).unwrap(),
            8,
            EngineConfig::default()
                .with_write_retry(RetryPolicy::none())
                .with_health(HealthConfig {
                    degrade_after: 1,
                    read_only_after: 2,
                    probe_interval_ms: 0,
                })
                .with_observability(crate::config::ObservabilityConfig::default()),
        )
        .unwrap();
        // One acked batch before the device breaks.
        e.ingest_points::<f64>(&coords(&[[1, 1]]), &[1.0]).unwrap();

        e.backend().fail_next_writes(u64::MAX);
        // First failed WAL append: Healthy -> Degraded. The batch was
        // never acked, so it must not be visible.
        assert!(e.ingest_points::<f64>(&coords(&[[2, 2]]), &[2.0]).is_err());
        assert_eq!(e.health(), HealthState::Degraded);
        assert_eq!(
            e.read_values::<f64>(&coords(&[[2, 2]])).unwrap(),
            vec![None]
        );
        // Second: Degraded -> ReadOnly.
        assert!(e.ingest_points::<f64>(&coords(&[[3, 3]]), &[3.0]).is_err());
        assert_eq!(e.health(), HealthState::ReadOnly);

        // ReadOnly refuses new writes with a typed, permanent rejection
        // without touching the device...
        e.backend().disarm();
        let err = e
            .ingest_points::<f64>(&coords(&[[4, 4]]), &[4.0])
            .unwrap_err();
        assert!(matches!(err, StorageError::ReadOnly { .. }), "{err}");
        assert!(err.is_rejection() && !err.is_transient());
        let err = e
            .write_points::<f64>(&coords(&[[4, 4]]), &[4.0])
            .unwrap_err();
        assert!(matches!(err, StorageError::ReadOnly { .. }), "{err}");
        // ...but keeps serving reads, including the acked batch.
        assert_eq!(
            e.read_values::<f64>(&coords(&[[1, 1]])).unwrap(),
            vec![Some(1.0)]
        );

        // The device healed (disarm above): one probe recovers the
        // engine, and writes flow again.
        assert_eq!(e.probe_health(), HealthState::Healthy);
        e.ingest_points::<f64>(&coords(&[[5, 5]]), &[5.0]).unwrap();
        let s = e.stats().unwrap();
        assert_eq!(s.health, HealthState::Healthy);
        assert_eq!(s.consecutive_write_failures, 0);
        assert!(s.backpressure_rejections >= 2);

        // Every transition was journaled.
        let events = e.observability().unwrap().journal().drain_new();
        let transitions: Vec<&str> = events
            .iter()
            .filter(|ev| ev.code == "health_transition")
            .map(|ev| ev.message.as_str())
            .collect();
        assert!(
            transitions.iter().any(|m| m.contains("degraded")),
            "{transitions:?}"
        );
        assert!(
            transitions.iter().any(|m| m.contains("read-only")),
            "{transitions:?}"
        );
        assert!(
            transitions.iter().any(|m| m.contains("recovered")),
            "{transitions:?}"
        );
    }

    #[test]
    fn out_of_space_is_permanent_and_parks_the_engine_read_only() {
        use crate::config::{HealthConfig, RetryPolicy};
        use crate::faults::FailingBackend;
        let e = StorageEngine::open_with(
            FailingBackend::new(MemBackend::new()),
            FormatKind::Linear,
            Shape::new(vec![16, 16]).unwrap(),
            8,
            EngineConfig::default()
                // A generous retry budget must NOT spin on ENOSPC: the
                // fault is permanent, so each ingest fails in one attempt.
                .with_write_retry(RetryPolicy::default())
                .with_health(HealthConfig {
                    degrade_after: 1,
                    read_only_after: 2,
                    probe_interval_ms: 0,
                }),
        )
        .unwrap();
        e.backend().set_out_of_space(true);
        assert!(e.ingest_points::<f64>(&coords(&[[1, 1]]), &[1.0]).is_err());
        assert!(e.ingest_points::<f64>(&coords(&[[2, 2]]), &[2.0]).is_err());
        assert_eq!(e.health(), HealthState::ReadOnly);
        // Probes keep failing while the device is full...
        assert_eq!(e.probe_health(), HealthState::ReadOnly);
        // ...and recover the engine once space frees up.
        e.backend().set_out_of_space(false);
        assert_eq!(e.probe_health(), HealthState::Healthy);
        e.ingest_points::<f64>(&coords(&[[3, 3]]), &[3.0]).unwrap();
    }

    #[test]
    fn buffer_cap_backpressure_trips_and_resumes_after_a_flush() {
        use crate::config::IngestConfig;
        let e = engine(FormatKind::Linear).with_config(EngineConfig::default().with_ingest(
            IngestConfig {
                flush_points: usize::MAX,
                flush_bytes: usize::MAX,
                wal: false,
                max_buffered_bytes: 64, // eight f64 records
                backpressure_resume_pct: 50,
                ..Default::default()
            },
        ));
        let pts: Vec<[u64; 2]> = (0..8).map(|i| [i, i]).collect();
        let vals: Vec<f64> = (0..8).map(|i| i as f64).collect();
        e.ingest_points::<f64>(&coords(&pts), &vals).unwrap();
        // The buffer is exactly at the cap: one more byte is refused
        // with a typed Backpressure naming the resource and occupancy.
        let err = e
            .ingest_points::<f64>(&coords(&[[9, 9]]), &[9.0])
            .unwrap_err();
        match &err {
            StorageError::Backpressure {
                resource,
                occupancy,
                limit,
            } => {
                assert_eq!(*resource, "buffer");
                assert_eq!((*occupancy, *limit), (64, 64));
            }
            other => panic!("expected backpressure, got {other}"),
        }
        assert!(err.is_rejection() && !err.is_transient());
        assert!(e.stats().unwrap().backpressure_rejections >= 1);
        // Nothing from the rejected batch leaked in.
        assert_eq!(e.buffer_stats().value_bytes, 64);
        // Draining the buffer reopens admission (occupancy 0 is under
        // the 50% resume watermark).
        e.flush().unwrap();
        e.ingest_points::<f64>(&coords(&[[9, 9]]), &[9.0]).unwrap();
        assert_eq!(
            e.read_values::<f64>(&coords(&[[9, 9]])).unwrap(),
            vec![Some(9.0)]
        );
    }

    #[test]
    fn wal_backlog_cap_rejects_until_blobs_retire() {
        use crate::config::IngestConfig;
        // Size one WAL blob exactly, then cap the backlog at 1.5 blobs:
        // the first batch is admitted, the second refused.
        let one_blob = crate::wal::encode_record(2, 8, &[1, 1], &1.0f64.to_le_bytes())
            .unwrap()
            .len() as u64;
        let e = engine(FormatKind::Linear).with_config(EngineConfig::default().with_ingest(
            IngestConfig {
                flush_points: usize::MAX,
                flush_bytes: usize::MAX,
                wal: true,
                max_wal_backlog_bytes: one_blob + one_blob / 2,
                backpressure_resume_pct: 50,
                ..Default::default()
            },
        ));
        e.ingest_points::<f64>(&coords(&[[1, 1]]), &[1.0]).unwrap();
        assert_eq!(e.wal_backlog_bytes(), one_blob);
        let err = e
            .ingest_points::<f64>(&coords(&[[2, 2]]), &[2.0])
            .unwrap_err();
        assert!(
            matches!(
                &err,
                StorageError::Backpressure {
                    resource: "wal",
                    ..
                }
            ),
            "{err}"
        );
        // A group commit retires the blob; the backlog drains to zero
        // and admission reopens.
        e.flush().unwrap();
        assert_eq!(e.wal_backlog_bytes(), 0);
        e.ingest_points::<f64>(&coords(&[[2, 2]]), &[2.0]).unwrap();
        assert_eq!(e.wal_backlog_bytes(), one_blob);
        // The rejected batch was never acked and never became visible.
        assert_eq!(
            e.read_values::<f64>(&coords(&[[2, 2]])).unwrap(),
            vec![Some(2.0)]
        );
    }

    #[test]
    fn engine_shutdown_flushes_and_retires() {
        use crate::faults::FailingBackend;
        let e = StorageEngine::open_with(
            FailingBackend::new(MemBackend::new()),
            FormatKind::Linear,
            Shape::new(vec![16, 16]).unwrap(),
            8,
            EngineConfig::default(),
        )
        .unwrap();
        e.ingest_points::<f64>(&coords(&[[1, 1]]), &[1.0]).unwrap();
        // Strand the WAL blob: the flush commits but cannot delete it.
        e.backend().fail_deletes(true);
        e.flush().unwrap();
        let wals = |e: &StorageEngine<FailingBackend<MemBackend>>| {
            e.backend()
                .list()
                .unwrap()
                .into_iter()
                .filter(|n| n.ends_with(".wal"))
                .count()
        };
        assert_eq!(wals(&e), 1);
        e.backend().disarm();
        // Shutdown drains the orphan without another flush trigger.
        e.shutdown().unwrap();
        assert_eq!(wals(&e), 0);
        assert_eq!(e.wal_backlog_bytes(), 0);
    }
}
