//! A bytes-bounded LRU cache of decoded fragments.
//!
//! Region reads in the paper's workloads revisit the same fragments over
//! and over (a dashboard refreshing one tile, an analysis sweeping a
//! window). Decoding a fragment — fetch, decompress, rebuild the
//! organization's index — is pure function of the blob, so the engine
//! can keep recently decoded fragments resident and serve repeat reads
//! with zero device traffic.
//!
//! The cache is bounded by the total decoded payload bytes it holds
//! (index + values), evicting least-recently-used fragments until a new
//! entry fits. Entries are shared as [`Arc`]s, so an eviction never
//! invalidates a read in flight. Consolidation and deletion invalidate
//! through [`FragmentCache::invalidate`]; a capacity of zero disables
//! caching entirely.

use crate::fragment::FragmentMeta;
use artsparse_metrics::charge;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A fully decoded fragment: header plus uncompressed payload sections.
#[derive(Debug, Clone)]
pub struct DecodedFragment {
    /// Decoded header.
    pub meta: FragmentMeta,
    /// Uncompressed index payload.
    pub index: Vec<u8>,
    /// Uncompressed value payload.
    pub values: Vec<u8>,
}

impl DecodedFragment {
    /// Bytes this entry charges against the cache budget.
    pub fn cost_bytes(&self) -> usize {
        self.index.len() + self.values.len()
    }
}

#[derive(Debug, Default)]
struct CacheInner {
    entries: HashMap<String, (Arc<DecodedFragment>, u64)>,
    held_bytes: usize,
    tick: u64,
}

/// Cache hit/miss/eviction counters (monotonic since engine open).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to make room (excludes explicit invalidations).
    pub evictions: u64,
    /// Decoded payload bytes those evictions dropped.
    pub evicted_bytes: u64,
}

/// The bytes-bounded LRU of [`DecodedFragment`]s.
#[derive(Debug, Default)]
pub struct FragmentCache {
    inner: Mutex<CacheInner>,
    capacity_bytes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    evicted_bytes: AtomicU64,
}

impl FragmentCache {
    /// A cache holding at most `capacity_bytes` of decoded payload.
    /// Zero disables caching: every `get` misses, every `insert` is a
    /// no-op.
    pub fn new(capacity_bytes: usize) -> Self {
        FragmentCache {
            inner: Mutex::new(CacheInner::default()),
            capacity_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            evicted_bytes: AtomicU64::new(0),
        }
    }

    /// The configured budget.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Whether the cache can hold anything at all.
    pub fn is_enabled(&self) -> bool {
        self.capacity_bytes > 0
    }

    /// Decoded payload bytes currently held.
    pub fn held_bytes(&self) -> usize {
        self.inner.lock().held_bytes
    }

    /// Number of resident fragments.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().entries.is_empty()
    }

    /// Hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            evicted_bytes: self.evicted_bytes.load(Ordering::Relaxed),
        }
    }

    /// Look up a decoded fragment, refreshing its recency on a hit.
    pub fn get(&self, name: &str) -> Option<Arc<DecodedFragment>> {
        if !self.is_enabled() {
            return None;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(name) {
            Some((entry, last_used)) => {
                *last_used = tick;
                let entry = entry.clone();
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                charge(|io| io.cache_hits += 1);
                Some(entry)
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                charge(|io| io.cache_misses += 1);
                None
            }
        }
    }

    /// Make a decoded fragment resident, evicting least-recently-used
    /// entries until it fits. Fragments larger than the whole budget are
    /// simply not cached.
    pub fn insert(&self, name: &str, fragment: Arc<DecodedFragment>) {
        let cost = fragment.cost_bytes();
        if !self.is_enabled() || cost > self.capacity_bytes {
            return;
        }
        let mut inner = self.inner.lock();
        if let Some((old, _)) = inner.entries.remove(name) {
            inner.held_bytes = inner.held_bytes.saturating_sub(old.cost_bytes());
        }
        while inner.held_bytes + cost > self.capacity_bytes {
            // Fragment stores are small (tens of entries); a linear scan
            // for the oldest tick beats maintaining an ordered index.
            let Some(oldest) = inner
                .entries
                .iter()
                .min_by_key(|(_, (_, tick))| *tick)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some((evicted, _)) = inner.entries.remove(&oldest) {
                let dropped = evicted.cost_bytes();
                inner.held_bytes = inner.held_bytes.saturating_sub(dropped);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                self.evicted_bytes
                    .fetch_add(dropped as u64, Ordering::Relaxed);
                charge(|io| {
                    io.cache_evictions += 1;
                    io.cache_evicted_bytes = io.cache_evicted_bytes.saturating_add(dropped as u64);
                });
            }
        }
        inner.tick += 1;
        let tick = inner.tick;
        inner.held_bytes += cost;
        inner.entries.insert(name.to_string(), (fragment, tick));
    }

    /// Drop one fragment (it was deleted or rewritten on the device).
    pub fn invalidate(&self, name: &str) {
        let mut inner = self.inner.lock();
        if let Some((entry, _)) = inner.entries.remove(name) {
            inner.held_bytes = inner.held_bytes.saturating_sub(entry.cost_bytes());
        }
    }

    /// Drop everything.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.entries.clear();
        inner.held_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use artsparse_core::FormatKind;
    use artsparse_tensor::Shape;

    fn decoded(index_len: usize, value_len: usize) -> Arc<DecodedFragment> {
        Arc::new(DecodedFragment {
            meta: FragmentMeta {
                kind: FormatKind::Linear,
                shape: Shape::new(vec![8]).unwrap(),
                n: 0,
                elem_size: 8,
                bbox: None,
                index_len: index_len as u64,
                value_len: value_len as u64,
                index_raw_len: index_len as u64,
                value_raw_len: value_len as u64,
                index_codec: crate::codec::Codec::None,
                value_codec: crate::codec::Codec::None,
                version: crate::fragment::FRAGMENT_VERSION,
                checksums: None,
            },
            index: vec![0; index_len],
            values: vec![0; value_len],
        })
    }

    #[test]
    fn lru_evicts_oldest_within_budget() {
        let cache = FragmentCache::new(100);
        cache.insert("a", decoded(30, 10)); // 40 bytes
        cache.insert("b", decoded(30, 10)); // 40 bytes
        assert!(cache.get("a").is_some()); // refresh a; b is now oldest
        cache.insert("c", decoded(30, 10)); // 40 bytes — evicts b
        assert!(cache.get("a").is_some());
        assert!(cache.get("b").is_none());
        assert!(cache.get("c").is_some());
        assert_eq!(cache.held_bytes(), 80);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn oversized_entries_are_not_cached() {
        let cache = FragmentCache::new(50);
        cache.insert("big", decoded(40, 40));
        assert!(cache.get("big").is_none());
        assert_eq!(cache.held_bytes(), 0);
    }

    #[test]
    fn reinsert_replaces_without_double_charging() {
        let cache = FragmentCache::new(100);
        cache.insert("a", decoded(20, 20));
        cache.insert("a", decoded(30, 30));
        assert_eq!(cache.held_bytes(), 60);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn invalidate_and_clear() {
        let cache = FragmentCache::new(100);
        cache.insert("a", decoded(10, 10));
        cache.insert("b", decoded(10, 10));
        cache.invalidate("a");
        assert!(cache.get("a").is_none());
        assert!(cache.get("b").is_some());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.held_bytes(), 0);
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = FragmentCache::new(0);
        cache.insert("a", decoded(1, 1));
        assert!(cache.get("a").is_none());
        assert!(!cache.is_enabled());
        // Disabled lookups don't count as misses.
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let cache = FragmentCache::new(100);
        cache.insert("a", decoded(1, 1));
        assert!(cache.get("a").is_some());
        assert!(cache.get("x").is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!((s.evictions, s.evicted_bytes), (0, 0));
    }

    #[test]
    fn stats_count_evictions_and_bytes() {
        let cache = FragmentCache::new(100);
        cache.insert("a", decoded(30, 10)); // 40 bytes
        cache.insert("b", decoded(30, 10)); // 40 bytes
        cache.insert("c", decoded(40, 40)); // 80 bytes — evicts a and b
        let s = cache.stats();
        assert_eq!(s.evictions, 2);
        assert_eq!(s.evicted_bytes, 80);
        assert_eq!(cache.held_bytes(), 80);
        // Explicit invalidation is not an eviction.
        cache.invalidate("c");
        assert_eq!(cache.stats().evictions, 2);
        assert_eq!(cache.held_bytes(), 0);
    }
}
