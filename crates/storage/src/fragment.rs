//! Fragment files — `b_frag = b_coor_new ∥ b_data` (Algorithm 3 line 6)
//! plus the metadata READ needs to discover and unpack them.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic       u32 = "ASFR"
//! version     u16 = 3 (2 still read)
//! format      u16 — FormatKind id of the embedded index
//! ndim        u16
//! flags       u16 — bit 0: bounding box present (0 for empty tensors)
//!                   bits 1–3: index codec id, bits 4–6: value codec id
//! n           u64 — number of points
//! elem_size   u32 — bytes per value record
//! index_len   u64 — stored (possibly compressed) index bytes
//! value_len   u64 — stored (possibly compressed) value bytes
//! index_raw   u64 — uncompressed index bytes
//! value_raw   u64 — uncompressed value bytes
//! shape       ndim × u64 — the global tensor shape
//! bbox lo     ndim × u64 — fragment bounding box (zeros when absent)
//! bbox hi     ndim × u64
//! index_crc   u32 — CRC32C of the stored index bytes        (v3+)
//! value_crc   u32 — CRC32C of the stored value bytes        (v3+)
//! header_crc  u32 — CRC32C of every preceding header byte   (v3+)
//! index       index_len bytes (self-describing, see artsparse-core codec)
//! values      value_len bytes (reorganized by the build's map)
//! ```
//!
//! Compression is the paper's §II orthogonality point made concrete: the
//! organization is chosen first, then a [`Codec`] optionally shrinks each
//! payload. Decoding validates every length and cross-check; corrupted or
//! truncated fragments produce [`StorageError::CorruptFragment`], never
//! panics.
//!
//! v3 adds end-to-end integrity: the checksums cover the *stored* bytes,
//! so a fetch can be verified before any decompression or organization
//! decode runs — corruption surfaces as a typed
//! [`StorageError::ChecksumMismatch`] naming the fragment and section.
//! The header CRC is last in the header so it covers the section CRCs
//! too; a flipped bit anywhere in the header fails verification before
//! any field is trusted.

use crate::codec::Codec;
use crate::error::{FragmentSection, Result, StorageError};
use crate::integrity::crc32c;
use artsparse_core::FormatKind;
use artsparse_tensor::{Region, Shape};
use bytes::{Buf, BufMut};

/// `"ASFR"` as a little-endian u32.
pub const FRAGMENT_MAGIC: u32 = u32::from_le_bytes(*b"ASFR");
/// Current fragment layout version (checksummed sections).
pub const FRAGMENT_VERSION: u16 = 3;
/// Oldest layout version this build still reads (pre-checksum).
pub const FRAGMENT_VERSION_MIN: u16 = 2;

const FLAG_HAS_BBOX: u16 = 1;
const INDEX_CODEC_SHIFT: u16 = 1;
const VALUE_CODEC_SHIFT: u16 = 4;
const CODEC_MASK: u16 = 0b111;

/// Bytes the v3 layout appends to the v2 header: index, value, and
/// header CRC32C values.
const CHECKSUM_TRAILER_LEN: usize = 3 * 4;

/// The per-section CRC32C values a v3 header carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FragmentChecksums {
    /// CRC32C of the stored (possibly compressed) index bytes.
    pub index: u32,
    /// CRC32C of the stored (possibly compressed) value bytes.
    pub value: u32,
    /// CRC32C of every header byte preceding this field.
    pub header: u32,
}

/// Decoded fragment metadata (everything before the payloads).
#[derive(Debug, Clone, PartialEq)]
pub struct FragmentMeta {
    /// Layout version the fragment was written with.
    pub version: u16,
    /// Organization of the embedded index.
    pub kind: FormatKind,
    /// Global tensor shape.
    pub shape: Shape,
    /// Number of points.
    pub n: u64,
    /// Bytes per value record.
    pub elem_size: u32,
    /// Bounding box of the stored points (`None` for empty fragments).
    pub bbox: Option<Region>,
    /// Stored length of the index payload.
    pub index_len: u64,
    /// Stored length of the value payload.
    pub value_len: u64,
    /// Uncompressed length of the index payload.
    pub index_raw_len: u64,
    /// Uncompressed length of the value payload.
    pub value_raw_len: u64,
    /// Codec applied to the index payload.
    pub index_codec: Codec,
    /// Codec applied to the value payload.
    pub value_codec: Codec,
    /// Section checksums (`None` for pre-v3 fragments).
    pub checksums: Option<FragmentChecksums>,
}

impl FragmentMeta {
    /// Byte length of a current-version header for `ndim` dimensions.
    /// Discovery peeks use this; older fragments have shorter headers,
    /// which over-peeking tolerates (backends clamp, `decode_meta`
    /// ignores trailing bytes).
    pub fn header_len(ndim: usize) -> usize {
        Self::header_len_for(FRAGMENT_VERSION, ndim)
    }

    /// Byte length of the header for a specific layout version.
    pub fn header_len_for(version: u16, ndim: usize) -> usize {
        let base = 4 + 2 + 2 + 2 + 2 + 8 + 4 + 8 + 8 + 8 + 8 + 3 * ndim * 8;
        if version >= 3 {
            base + CHECKSUM_TRAILER_LEN
        } else {
            base
        }
    }

    /// Header length of *this* fragment (version-aware).
    pub fn own_header_len(&self) -> usize {
        Self::header_len_for(self.version, self.shape.ndim())
    }

    /// Total fragment size this metadata describes.
    pub fn total_len(&self) -> u64 {
        self.own_header_len() as u64 + self.index_len + self.value_len
    }

    /// Byte offset of the stored index section within the fragment.
    pub fn index_offset(&self) -> u64 {
        self.own_header_len() as u64
    }

    /// Byte offset of the stored value section within the fragment.
    pub fn value_offset(&self) -> u64 {
        self.index_offset() + self.index_len
    }
}

/// Verify a fetched stored section against the header's length and (for
/// v3 fragments) its CRC32C — without decompressing or decoding anything.
/// This is the integrity gate every read and scrub passes through.
pub fn verify_section_checksum(
    name: &str,
    meta: &FragmentMeta,
    section: FragmentSection,
    bytes: &[u8],
) -> Result<()> {
    let (want_len, want_crc) = match section {
        FragmentSection::Index => (meta.index_len, meta.checksums.map(|c| c.index)),
        FragmentSection::Value => (meta.value_len, meta.checksums.map(|c| c.value)),
        FragmentSection::Header => {
            // Header integrity is established by `decode_meta`; re-verify
            // the serialized prefix directly.
            let hl = meta.own_header_len();
            if bytes.len() < hl {
                return Err(StorageError::corrupt(
                    name,
                    format!("header is {} bytes, layout says {hl}", bytes.len()),
                ));
            }
            if let Some(c) = meta.checksums {
                let found = crc32c(&bytes[..hl - 4]);
                if found != c.header {
                    artsparse_metrics::charge(|io| io.checksum_failures += 1);
                    return Err(StorageError::checksum_mismatch(
                        name,
                        FragmentSection::Header,
                        c.header,
                        found,
                    ));
                }
            }
            return Ok(());
        }
    };
    if bytes.len() != want_len as usize {
        return Err(StorageError::corrupt(
            name,
            format!(
                "{section} section is {} bytes, header says {want_len}",
                bytes.len()
            ),
        ));
    }
    if let Some(expected) = want_crc {
        let found = crc32c(bytes);
        if found != expected {
            artsparse_metrics::charge(|io| io.checksum_failures += 1);
            return Err(StorageError::checksum_mismatch(
                name, section, expected, found,
            ));
        }
    }
    Ok(())
}

/// Decode the stored index section (as fetched from
/// [`FragmentMeta::index_offset`]) into the uncompressed index payload.
/// Verifies the section checksum (v3+) before decompressing; a short
/// section means the device returned fewer bytes than the header
/// promised — a truncated or externally modified fragment.
pub fn decode_index_section(name: &str, meta: &FragmentMeta, section: &[u8]) -> Result<Vec<u8>> {
    verify_section_checksum(name, meta, FragmentSection::Index, section)?;
    meta.index_codec
        .decompress(section, meta.index_raw_len as usize)
        .map_err(|e| StorageError::corrupt(name, format!("index payload: {e}")))
}

/// Decode the stored value section (as fetched from
/// [`FragmentMeta::value_offset`]) into the uncompressed value payload.
/// Verifies the section checksum (v3+) before decompressing.
pub fn decode_value_section(name: &str, meta: &FragmentMeta, section: &[u8]) -> Result<Vec<u8>> {
    verify_section_checksum(name, meta, FragmentSection::Value, section)?;
    meta.value_codec
        .decompress(section, meta.value_raw_len as usize)
        .map_err(|e| StorageError::corrupt(name, format!("value payload: {e}")))
}

/// Assemble a fragment file, applying the codecs to the payloads.
#[allow(clippy::too_many_arguments)]
pub fn encode_fragment(
    kind: FormatKind,
    shape: &Shape,
    n: u64,
    elem_size: u32,
    bbox: Option<&Region>,
    index: &[u8],
    values: &[u8],
    index_codec: Codec,
    value_codec: Codec,
) -> Vec<u8> {
    encode_fragment_versioned(
        FRAGMENT_VERSION,
        kind,
        shape,
        n,
        elem_size,
        bbox,
        index,
        values,
        index_codec,
        value_codec,
    )
}

/// Assemble a fragment in a specific layout version. Only exposed so
/// back-compat tests can mint pre-checksum (v2) fragments; production
/// writes always use [`encode_fragment`].
#[doc(hidden)]
#[allow(clippy::too_many_arguments)]
pub fn encode_fragment_versioned(
    version: u16,
    kind: FormatKind,
    shape: &Shape,
    n: u64,
    elem_size: u32,
    bbox: Option<&Region>,
    index: &[u8],
    values: &[u8],
    index_codec: Codec,
    value_codec: Codec,
) -> Vec<u8> {
    assert!(
        (FRAGMENT_VERSION_MIN..=FRAGMENT_VERSION).contains(&version),
        "unsupported fragment version {version}"
    );
    let ndim = shape.ndim();
    let stored_index = index_codec.compress(index);
    let stored_values = value_codec.compress(values);
    let mut buf = Vec::with_capacity(
        FragmentMeta::header_len_for(version, ndim) + stored_index.len() + stored_values.len(),
    );
    buf.put_u32_le(FRAGMENT_MAGIC);
    buf.put_u16_le(version);
    buf.put_u16_le(kind.id());
    buf.put_u16_le(ndim as u16);
    let mut flags = 0u16;
    if bbox.is_some() {
        flags |= FLAG_HAS_BBOX;
    }
    flags |= index_codec.id() << INDEX_CODEC_SHIFT;
    flags |= value_codec.id() << VALUE_CODEC_SHIFT;
    buf.put_u16_le(flags);
    buf.put_u64_le(n);
    buf.put_u32_le(elem_size);
    buf.put_u64_le(stored_index.len() as u64);
    buf.put_u64_le(stored_values.len() as u64);
    buf.put_u64_le(index.len() as u64);
    buf.put_u64_le(values.len() as u64);
    for &m in shape.dims() {
        buf.put_u64_le(m);
    }
    match bbox {
        Some(b) => {
            for &v in b.lo() {
                buf.put_u64_le(v);
            }
            for &v in b.hi() {
                buf.put_u64_le(v);
            }
        }
        None => {
            for _ in 0..2 * ndim {
                buf.put_u64_le(0);
            }
        }
    }
    if version >= 3 {
        buf.put_u32_le(crc32c(&stored_index));
        buf.put_u32_le(crc32c(&stored_values));
        // The header CRC is computed over everything written so far,
        // section CRCs included, and appended last.
        let header_crc = crc32c(&buf);
        buf.put_u32_le(header_crc);
    }
    buf.extend_from_slice(&stored_index);
    buf.extend_from_slice(&stored_values);
    buf
}

/// Decode and validate a fragment header. `bytes` may be just the header
/// prefix (for discovery peeks) or the whole file. For v3 headers the
/// header CRC is verified *before* any field beyond the version/ndim is
/// trusted, so a flipped bit in the header surfaces as
/// [`StorageError::ChecksumMismatch`] rather than a misleading semantic
/// error (or, worse, a silently wrong plan).
pub fn decode_meta(name: &str, bytes: &[u8]) -> Result<FragmentMeta> {
    let corrupt = |reason: &str| StorageError::corrupt(name, reason);
    let mut cur = bytes;
    if cur.remaining() < FragmentMeta::header_len_for(FRAGMENT_VERSION_MIN, 0) {
        return Err(corrupt("header truncated"));
    }
    if cur.get_u32_le() != FRAGMENT_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = cur.get_u16_le();
    if !(FRAGMENT_VERSION_MIN..=FRAGMENT_VERSION).contains(&version) {
        return Err(corrupt(&format!("unsupported version {version}")));
    }
    let format = cur.get_u16_le();
    let ndim = cur.get_u16_le() as usize;
    let header_len = FragmentMeta::header_len_for(version, ndim);
    if bytes.len() < header_len {
        return Err(corrupt("header dims truncated"));
    }
    let checksums = if version >= 3 {
        let crc_at = header_len - 4;
        let expected = u32::from_le_bytes(bytes[crc_at..header_len].try_into().unwrap());
        let found = crc32c(&bytes[..crc_at]);
        if found != expected {
            artsparse_metrics::charge(|io| io.checksum_failures += 1);
            return Err(StorageError::checksum_mismatch(
                name,
                FragmentSection::Header,
                expected,
                found,
            ));
        }
        let trailer = &bytes[header_len - CHECKSUM_TRAILER_LEN..];
        Some(FragmentChecksums {
            index: u32::from_le_bytes(trailer[0..4].try_into().unwrap()),
            value: u32::from_le_bytes(trailer[4..8].try_into().unwrap()),
            header: expected,
        })
    } else {
        None
    };
    let kind = FormatKind::from_id(format)
        .ok_or_else(|| corrupt(&format!("unknown format id {format}")))?;
    let flags = cur.get_u16_le();
    let index_codec = Codec::from_id((flags >> INDEX_CODEC_SHIFT) & CODEC_MASK)
        .ok_or_else(|| corrupt("unknown index codec"))?;
    let value_codec = Codec::from_id((flags >> VALUE_CODEC_SHIFT) & CODEC_MASK)
        .ok_or_else(|| corrupt("unknown value codec"))?;
    let n = cur.get_u64_le();
    let elem_size = cur.get_u32_le();
    let index_len = cur.get_u64_le();
    let value_len = cur.get_u64_le();
    let index_raw_len = cur.get_u64_le();
    let value_raw_len = cur.get_u64_le();
    let mut dims = Vec::with_capacity(ndim);
    for _ in 0..ndim {
        dims.push(cur.get_u64_le());
    }
    let shape = Shape::new(dims).map_err(|e| corrupt(&format!("bad shape: {e}")))?;
    let mut lo = Vec::with_capacity(ndim);
    let mut hi = Vec::with_capacity(ndim);
    for _ in 0..ndim {
        lo.push(cur.get_u64_le());
    }
    for _ in 0..ndim {
        hi.push(cur.get_u64_le());
    }
    let bbox = if flags & FLAG_HAS_BBOX != 0 {
        let b = Region::from_corners(&lo, &hi).map_err(|e| corrupt(&format!("bad bbox: {e}")))?;
        if !b.fits_in(&shape) {
            return Err(corrupt("bbox outside shape"));
        }
        Some(b)
    } else {
        None
    };
    if n > 0 && bbox.is_none() {
        return Err(corrupt("non-empty fragment without bounding box"));
    }
    if elem_size > 0 && value_raw_len != n * elem_size as u64 {
        return Err(corrupt("value length inconsistent with n × elem_size"));
    }
    if index_codec == Codec::None && index_len != index_raw_len {
        return Err(corrupt("uncompressed index lengths disagree"));
    }
    if value_codec == Codec::None && value_len != value_raw_len {
        return Err(corrupt("uncompressed value lengths disagree"));
    }
    Ok(FragmentMeta {
        version,
        kind,
        shape,
        n,
        elem_size,
        bbox,
        index_len,
        value_len,
        index_raw_len,
        value_raw_len,
        index_codec,
        value_codec,
        checksums,
    })
}

/// Decode a whole fragment into `(meta, index, values)`, verifying the
/// section checksums (v3+) and decompressing the payloads if codecs were
/// applied.
pub fn decode_fragment(name: &str, bytes: &[u8]) -> Result<(FragmentMeta, Vec<u8>, Vec<u8>)> {
    let meta = decode_meta(name, bytes)?;
    let header = meta.own_header_len();
    let need = meta.total_len() as usize;
    if bytes.len() != need {
        return Err(StorageError::corrupt(
            name,
            format!("fragment is {} bytes, header says {need}", bytes.len()),
        ));
    }
    let stored_index = &bytes[header..header + meta.index_len as usize];
    let stored_values = &bytes[header + meta.index_len as usize..];
    let index = decode_index_section(name, &meta, stored_index)?;
    let values = decode_value_section(name, &meta, stored_values)?;
    Ok((meta, index, values))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_with(index_codec: Codec, value_codec: Codec) -> Vec<u8> {
        let shape = Shape::new(vec![8, 8]).unwrap();
        let bbox = Region::from_corners(&[1, 1], &[5, 6]).unwrap();
        encode_fragment(
            FormatKind::Linear,
            &shape,
            3,
            8,
            Some(&bbox),
            &[1, 2, 3, 4],
            &[0u8; 24],
            index_codec,
            value_codec,
        )
    }

    fn sample() -> Vec<u8> {
        sample_with(Codec::None, Codec::None)
    }

    #[test]
    fn roundtrip_uncompressed() {
        let bytes = sample();
        let (meta, index, values) = decode_fragment("t", &bytes).unwrap();
        assert_eq!(meta.version, FRAGMENT_VERSION);
        assert_eq!(meta.kind, FormatKind::Linear);
        assert_eq!(meta.n, 3);
        assert_eq!(meta.elem_size, 8);
        assert_eq!(meta.shape.dims(), &[8, 8]);
        assert_eq!(meta.bbox.as_ref().unwrap().lo(), &[1, 1]);
        assert_eq!(index, &[1, 2, 3, 4]);
        assert_eq!(values.len(), 24);
        assert_eq!(meta.total_len() as usize, bytes.len());
        assert!(meta.checksums.is_some());
    }

    #[test]
    fn roundtrip_every_codec_combination() {
        for ic in [Codec::None, Codec::Rle, Codec::DeltaVarint] {
            for vc in [Codec::None, Codec::Rle, Codec::DeltaVarint] {
                let bytes = sample_with(ic, vc);
                let (meta, index, values) = decode_fragment("t", &bytes).unwrap();
                assert_eq!(meta.index_codec, ic);
                assert_eq!(meta.value_codec, vc);
                assert_eq!(index, &[1, 2, 3, 4], "{ic:?}/{vc:?}");
                assert_eq!(values, vec![0u8; 24], "{ic:?}/{vc:?}");
            }
        }
    }

    #[test]
    fn rle_values_shrink_the_fragment() {
        let plain = sample_with(Codec::None, Codec::None);
        let packed = sample_with(Codec::None, Codec::Rle);
        assert!(packed.len() < plain.len());
    }

    #[test]
    fn meta_decodes_from_header_prefix_alone() {
        let bytes = sample();
        let header = FragmentMeta::header_len(2);
        let meta = decode_meta("t", &bytes[..header]).unwrap();
        assert_eq!(meta.n, 3);
    }

    #[test]
    fn section_offsets_slice_the_fragment() {
        for (ic, vc) in [(Codec::None, Codec::None), (Codec::DeltaVarint, Codec::Rle)] {
            let bytes = sample_with(ic, vc);
            let meta = decode_meta("t", &bytes).unwrap();
            let (_, index, values) = decode_fragment("t", &bytes).unwrap();
            let isec = &bytes
                [meta.index_offset() as usize..(meta.index_offset() + meta.index_len) as usize];
            let vsec = &bytes
                [meta.value_offset() as usize..(meta.value_offset() + meta.value_len) as usize];
            assert_eq!(decode_index_section("t", &meta, isec).unwrap(), index);
            assert_eq!(decode_value_section("t", &meta, vsec).unwrap(), values);
            assert_eq!(meta.value_offset() + meta.value_len, meta.total_len());
        }
    }

    #[test]
    fn short_sections_are_rejected() {
        let bytes = sample();
        let meta = decode_meta("t", &bytes).unwrap();
        let isec =
            &bytes[meta.index_offset() as usize..(meta.index_offset() + meta.index_len) as usize];
        assert!(decode_index_section("t", &meta, &isec[..isec.len() - 1]).is_err());
        assert!(decode_value_section("t", &meta, &[]).is_err());
    }

    #[test]
    fn empty_fragment_has_no_bbox() {
        let shape = Shape::new(vec![4]).unwrap();
        let bytes = encode_fragment(
            FormatKind::Coo,
            &shape,
            0,
            8,
            None,
            &[],
            &[],
            Codec::None,
            Codec::None,
        );
        let (meta, ..) = decode_fragment("t", &bytes).unwrap();
        assert!(meta.bbox.is_none());
    }

    #[test]
    fn every_truncation_is_rejected() {
        for bytes in [sample(), sample_with(Codec::DeltaVarint, Codec::Rle)] {
            for cut in 0..bytes.len() {
                assert!(
                    decode_fragment("t", &bytes[..cut]).is_err(),
                    "prefix {cut} decoded"
                );
            }
        }
    }

    #[test]
    fn corruption_is_rejected() {
        let mut bad = sample();
        bad[0] ^= 0xFF; // magic
        assert!(decode_meta("t", &bad).is_err());

        let mut bad = sample();
        bad[4] = 9; // version
        assert!(decode_meta("t", &bad).is_err());

        let mut bad = sample();
        bad[6] = 200; // format id
        assert!(decode_meta("t", &bad).is_err());

        // codec id 7 (undefined)
        let mut bad = sample();
        bad[10] |= (7u16 << INDEX_CODEC_SHIFT) as u8;
        assert!(decode_meta("t", &bad).is_err());

        // value_raw_len inconsistent with n.
        let mut bad = sample();
        bad[12] = 99; // n low byte
        assert!(decode_meta("t", &bad).is_err());

        // bbox outside shape: hi = (5,6) -> (50,6).
        let mut bad = sample();
        let hi_off = FragmentMeta::header_len(2) - CHECKSUM_TRAILER_LEN - 2 * 8;
        bad[hi_off..hi_off + 8].copy_from_slice(&50u64.to_le_bytes());
        assert!(decode_meta("t", &bad).is_err());
    }

    #[test]
    fn corrupt_compressed_payload_is_rejected() {
        let mut bytes = sample_with(Codec::DeltaVarint, Codec::None);
        // Overwrite the whole compressed index with continuation markers:
        // the checksum (and, beneath it, the never-terminating varint
        // stream) must reject the fragment.
        let meta = decode_meta("t", &bytes).unwrap();
        let at = meta.index_offset() as usize;
        for b in &mut bytes[at..at + meta.index_len as usize] {
            *b = 0x80;
        }
        assert!(decode_fragment("t", &bytes).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample();
        bytes.push(0);
        assert!(decode_fragment("t", &bytes).is_err());
    }

    #[test]
    fn nonempty_without_bbox_rejected() {
        let shape = Shape::new(vec![4]).unwrap();
        let bytes = encode_fragment(
            FormatKind::Coo,
            &shape,
            2,
            0,
            None,
            &[],
            &[],
            Codec::None,
            Codec::None,
        );
        assert!(decode_meta("t", &bytes).is_err());
    }

    #[test]
    fn v2_fragments_still_decode_without_checksums() {
        let shape = Shape::new(vec![8, 8]).unwrap();
        let bbox = Region::from_corners(&[1, 1], &[5, 6]).unwrap();
        let bytes = encode_fragment_versioned(
            2,
            FormatKind::Linear,
            &shape,
            3,
            8,
            Some(&bbox),
            &[1, 2, 3, 4],
            &[7u8; 24],
            Codec::None,
            Codec::Rle,
        );
        let (meta, index, values) = decode_fragment("legacy", &bytes).unwrap();
        assert_eq!(meta.version, 2);
        assert!(meta.checksums.is_none());
        assert_eq!(meta.own_header_len(), FragmentMeta::header_len(2) - 12);
        assert_eq!(index, &[1, 2, 3, 4]);
        assert_eq!(values, vec![7u8; 24]);
        // The v3 discovery peek over-reads a v2 header harmlessly.
        let peeked = decode_meta(
            "legacy",
            &bytes[..FragmentMeta::header_len(2).min(bytes.len())],
        )
        .unwrap();
        assert_eq!(peeked, meta);
    }

    #[test]
    fn header_bit_flip_fails_as_header_checksum_mismatch() {
        let bytes = sample();
        // Skip magic/version (guarded by their own checks). The ndim
        // field (bytes 8..10) locates the CRC itself, so flipping it may
        // fail the structural length check before the CRC can run —
        // either way the flip must be rejected, never parsed.
        for at in 6..FragmentMeta::header_len(2) {
            let mut bad = bytes.clone();
            bad[at] ^= 0x01;
            let err = decode_meta("t", &bad).unwrap_err();
            match err {
                StorageError::ChecksumMismatch { section, .. } => {
                    assert_eq!(section, FragmentSection::Header, "byte {at}")
                }
                StorageError::CorruptFragment { .. } if (8..10).contains(&at) => {}
                other => panic!("byte {at}: expected checksum mismatch, got {other}"),
            }
        }
    }

    #[test]
    fn payload_bit_flips_fail_as_section_checksum_mismatch() {
        let bytes = sample_with(Codec::DeltaVarint, Codec::Rle);
        let meta = decode_meta("t", &bytes).unwrap();
        for at in meta.index_offset() as usize..bytes.len() {
            let mut bad = bytes.clone();
            bad[at] ^= 0x80;
            let err = decode_fragment("t", &bad).unwrap_err();
            let want = if (at as u64) < meta.value_offset() {
                FragmentSection::Index
            } else {
                FragmentSection::Value
            };
            match err {
                StorageError::ChecksumMismatch { section, name, .. } => {
                    assert_eq!(section, want, "byte {at}");
                    assert_eq!(name, "t");
                }
                other => panic!("byte {at}: expected checksum mismatch, got {other}"),
            }
        }
    }

    #[test]
    fn verify_section_checksum_covers_header_reverification() {
        let bytes = sample();
        let meta = decode_meta("t", &bytes).unwrap();
        verify_section_checksum("t", &meta, FragmentSection::Header, &bytes).unwrap();
        let mut bad = bytes.clone();
        bad[20] ^= 0x04;
        assert!(verify_section_checksum("t", &meta, FragmentSection::Header, &bad).is_err());
        assert!(
            verify_section_checksum("t", &meta, FragmentSection::Header, &bytes[..10]).is_err()
        );
    }
}
