//! # artsparse-storage
//!
//! The fragment-based storage engine of the paper's benchmark system
//! (Algorithm 3): a minimal TileDB-like substrate that writes sparse
//! tensors as self-describing fragments (`index ∥ values`) and answers
//! point/region queries across fragments with bounding-box discovery and
//! linear-address merge.
//!
//! * [`backend`] — storage devices: local filesystem, in-memory, and a
//!   deterministic bandwidth/latency [`backend::SimulatedDisk`] standing
//!   in for the paper's Lustre file system;
//! * [`fragment`] — the on-device fragment layout with fully validated
//!   decoding;
//! * [`catalog`] — the in-engine manifest of fragment metadata that turns
//!   discovery and bounding-box pruning into an in-memory planning step;
//! * [`cache`] — a bytes-bounded LRU of decoded fragments for
//!   repeat-read workloads;
//! * [`config`] — tuning knobs for the read pipeline (cache budget,
//!   per-fragment parallelism, range fetch), the compute-parallel layer
//!   (`threads`, `parallel_cutoff` — DESIGN.md §12), and the fragment
//!   commit protocol;
//! * [`engine`] — Algorithm 3's WRITE (with the Table III phase
//!   breakdown, published through a crash-safe staged commit) and READ
//!   as a layered catalog → plan → fetch → decode → merge pipeline;
//! * [`faults`] — a failure-injecting backend wrapper for driving the
//!   commit protocol into its crash windows (and reads into transient
//!   faults, latency, and bit-flip corruption) under test;
//! * [`integrity`] — the CRC32C checksum primitive behind fragment
//!   section verification and scrubbing;
//! * [`observe`] — a recording backend wrapper that feeds the
//!   `artsparse-metrics` telemetry subsystem with per-operation timings
//!   and per-span byte accounting;
//! * [`wal`] — the CRC-framed write-ahead log records that make acked
//!   streaming-ingest batches crash-durable before they reach a fragment;
//! * [`buffer`] — the in-memory streaming-ingest write buffer with an
//!   atomically swappable read snapshot;
//! * [`scheduler`] — the background thread that flushes stale buffers and
//!   triggers size-tiered consolidation, rate-limited, with clean
//!   shutdown;
//! * [`exporter`] — the background thread of the live observability
//!   plane: it samples the engine's gauges, publishes Prometheus-text
//!   exposition (atomic rename) plus a JSONL snapshot series, and drains
//!   the trace-correlated event journal to `journal.jsonl`.

#![warn(missing_docs)]

pub mod backend;
pub mod buffer;
pub mod cache;
pub mod catalog;
pub mod codec;
pub mod config;
pub mod engine;
pub mod error;
pub mod exporter;
pub mod faults;
pub mod fragment;
pub mod integrity;
pub mod observe;
pub mod scheduler;
pub mod striped;
pub mod wal;

pub use backend::{FsBackend, MemBackend, SimulatedDisk, StorageBackend};
pub use buffer::{BufferSnapshot, BufferStats, WriteBuffer};
pub use cache::{CacheStats, DecodedFragment, FragmentCache};
pub use catalog::{CatalogEntry, FragmentCatalog, ReadPlan};
pub use codec::Codec;
pub use config::{
    AdaptiveReorg, CommitMode, EngineConfig, HealthConfig, IngestConfig, ObservabilityConfig,
    ReorgProfile, RetryPolicy, SchedulerConfig,
};
pub use engine::{
    ConsolidateReport, HealthState, ReadHit, ReadOutcome, ReadResult, RecoveryReport, ScrubFinding,
    ScrubReport, StorageEngine, StoreStats, WriteReport, BUFFER_FRAGMENT,
};
pub use error::{FragmentSection, Result, StorageError};
pub use exporter::{ExporterStats, MetricsExporter, JOURNAL_JSONL, METRICS_JSONL, METRICS_PROM};
pub use faults::{injected_fault, FailingBackend, InjectedFault};
pub use fragment::FragmentChecksums;
pub use integrity::{crc32c, Crc32c};
pub use observe::RecordingBackend;
pub use scheduler::{IngestScheduler, SchedulerStats};
pub use striped::StripedBackend;
pub use wal::WalRecord;
