//! Span sinks: the [`Recorder`] trait, the no-op default, and the
//! aggregating [`TelemetryRecorder`].
//!
//! The engine holds an `Arc<dyn Recorder>` and consults
//! [`Recorder::enabled`] before doing any telemetry work, so the default
//! no-op recorder keeps instrumented code on a single predictable branch.
//! [`TelemetryRecorder`] is the real sink: it folds every finished span
//! into per-kind aggregates (count, latency histogram, I/O totals), keeps
//! per-backend-operation latency histograms, and retains the most recent
//! spans verbatim in a bounded ring buffer for event-level inspection.

use crate::histogram::Histogram;
use crate::span::{IoStats, SpanKind, SpanRecord};
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};

/// Default number of raw span events retained by [`TelemetryRecorder`].
pub const DEFAULT_EVENT_CAPACITY: usize = 4096;

/// A sink for finished spans and timed backend operations.
///
/// All methods default to no-ops so a disabled recorder costs one virtual
/// `enabled()` check (or less, where call sites cache it).
pub trait Recorder: Send + Sync {
    /// Whether spans should be opened and I/O charged at all.
    fn enabled(&self) -> bool {
        false
    }

    /// Accept one finished span.
    fn record_span(&self, _record: &SpanRecord) {}

    /// Accept one timed backend operation (`backend` is the backend kind
    /// name — `fs`, `mem`, `sim`, `striped` — and `op` the method name).
    fn record_backend_op(
        &self,
        _backend: &'static str,
        _op: &'static str,
        _dur_ns: u64,
        _bytes: u64,
    ) {
    }
}

/// The default recorder: discards everything, reports disabled.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// Per-span-kind aggregate.
#[derive(Debug, Clone, Default)]
pub(crate) struct KindAgg {
    pub count: u64,
    pub total_ns: u64,
    pub latency: Histogram,
    pub io: IoStats,
}

/// Per-(backend, operation) aggregate.
#[derive(Debug, Clone, Default)]
pub(crate) struct OpAgg {
    pub count: u64,
    pub total_ns: u64,
    pub bytes: u64,
    pub latency: Histogram,
}

#[derive(Debug, Default)]
pub(crate) struct Inner {
    pub spans: BTreeMap<SpanKind, KindAgg>,
    pub backend_ops: BTreeMap<(&'static str, &'static str), OpAgg>,
    pub events: VecDeque<SpanRecord>,
    pub events_dropped: u64,
}

/// An enabled, aggregating recorder.
///
/// One mutex guards the aggregates; spans finish at operation granularity
/// (not per byte or per record), so contention stays negligible next to
/// the I/O being measured.
#[derive(Debug)]
pub struct TelemetryRecorder {
    inner: Mutex<Inner>,
    event_capacity: usize,
}

impl Default for TelemetryRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TelemetryRecorder {
    /// A recorder retaining [`DEFAULT_EVENT_CAPACITY`] raw events.
    pub fn new() -> Self {
        Self::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// A recorder whose event ring holds `capacity` spans (0 disables the
    /// ring; aggregates are always kept).
    pub fn with_event_capacity(capacity: usize) -> Self {
        TelemetryRecorder {
            inner: Mutex::new(Inner::default()),
            event_capacity: capacity,
        }
    }

    /// Build an aggregated report from everything recorded so far.
    pub fn report(&self) -> crate::export::TelemetryReport {
        crate::export::TelemetryReport::from_inner(&self.inner.lock())
    }

    /// Raw span events dropped because the ring was full.
    pub fn events_dropped(&self) -> u64 {
        self.inner.lock().events_dropped
    }
}

impl Recorder for TelemetryRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record_span(&self, record: &SpanRecord) {
        let mut inner = self.inner.lock();
        let agg = inner.spans.entry(record.kind).or_default();
        agg.count = agg.count.saturating_add(1);
        agg.total_ns = agg.total_ns.saturating_add(record.dur_ns);
        agg.latency.record(record.dur_ns);
        agg.io.merge(&record.io);
        if self.event_capacity > 0 {
            if inner.events.len() >= self.event_capacity {
                inner.events.pop_front();
                inner.events_dropped = inner.events_dropped.saturating_add(1);
            }
            inner.events.push_back(record.clone());
        }
    }

    fn record_backend_op(&self, backend: &'static str, op: &'static str, dur_ns: u64, bytes: u64) {
        let mut inner = self.inner.lock();
        let agg = inner.backend_ops.entry((backend, op)).or_default();
        agg.count = agg.count.saturating_add(1);
        agg.total_ns = agg.total_ns.saturating_add(dur_ns);
        agg.bytes = agg.bytes.saturating_add(bytes);
        agg.latency.record(dur_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{charge, Span};
    use std::sync::Arc;

    #[test]
    fn noop_recorder_is_disabled() {
        assert!(!NoopRecorder.enabled());
    }

    #[test]
    fn aggregates_fold_spans_by_kind() {
        let t = Arc::new(TelemetryRecorder::new());
        let r: Arc<dyn Recorder> = t.clone();
        for _ in 0..3 {
            let _s = Span::enter(&r, SpanKind::ReadFetch);
            charge(|io| {
                io.requests += 1;
                io.bytes_fetched += 100;
            });
        }
        let report = t.report();
        let fetch = report.span(SpanKind::ReadFetch).unwrap();
        assert_eq!(fetch.count, 3);
        assert_eq!(fetch.io.requests, 3);
        assert_eq!(fetch.io.bytes_fetched, 300);
        assert_eq!(fetch.latency.count(), 3);
        assert_eq!(report.events.len(), 3);
    }

    #[test]
    fn backend_ops_fold_by_backend_and_op() {
        let t = TelemetryRecorder::new();
        t.record_backend_op("sim", "get_range", 1_000, 64);
        t.record_backend_op("sim", "get_range", 3_000, 128);
        t.record_backend_op("fs", "put", 500, 32);
        let report = t.report();
        let sim = report.backend_op("sim", "get_range").unwrap();
        assert_eq!(sim.count, 2);
        assert_eq!(sim.bytes, 192);
        assert_eq!(sim.total_ns, 4_000);
        assert_eq!(report.backend_op("fs", "put").unwrap().count, 1);
        assert!(report.backend_op("fs", "get_range").is_none());
    }

    #[test]
    fn event_ring_is_bounded_and_counts_drops() {
        let t = Arc::new(TelemetryRecorder::with_event_capacity(2));
        let r: Arc<dyn Recorder> = t.clone();
        for _ in 0..5 {
            let _s = Span::enter(&r, SpanKind::Write);
        }
        assert_eq!(t.report().events.len(), 2);
        assert_eq!(t.events_dropped(), 3);
        // Aggregates still saw every span.
        assert_eq!(t.report().span(SpanKind::Write).unwrap().count, 5);
    }
}
