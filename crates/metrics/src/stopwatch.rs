//! Phase timing — the machinery behind Table III's write breakdown.
//!
//! The paper decomposes the total WRITE time into **Build** (constructing
//! the coordinate organization), **Reorg.** (permuting the value payload by
//! `map`), **Write** (serializing the fragment to the device), and
//! **Others** (metadata etc.). [`PhaseTimer`] records named phases;
//! [`WriteBreakdown`] is the typed Table III row.

use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// The WRITE phases of Algorithm 3, as broken down in Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WritePhase {
    /// Construct the coordinate organization (`*_BUILD`).
    Build,
    /// Reorganize the value payload by the returned `map`.
    Reorg,
    /// Write the concatenated fragment to the storage device.
    Write,
    /// Everything else (metadata, bounding boxes, bookkeeping).
    Others,
}

impl WritePhase {
    /// All phases in Table III's row order.
    pub const ALL: [WritePhase; 4] = [
        WritePhase::Build,
        WritePhase::Reorg,
        WritePhase::Write,
        WritePhase::Others,
    ];

    /// Table III row label.
    pub fn label(self) -> &'static str {
        match self {
            WritePhase::Build => "Build",
            WritePhase::Reorg => "Reorg.",
            WritePhase::Write => "Write",
            WritePhase::Others => "Others",
        }
    }
}

/// Accumulated per-phase durations for one WRITE call (one Table III column).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WriteBreakdown {
    /// Seconds spent building the organization.
    pub build: f64,
    /// Seconds spent reorganizing values.
    pub reorg: f64,
    /// Seconds spent writing the fragment.
    pub write: f64,
    /// Seconds spent on everything else.
    pub others: f64,
}

impl WriteBreakdown {
    /// Total write time (Table III "Sum" row).
    pub fn sum(&self) -> f64 {
        self.build + self.reorg + self.write + self.others
    }

    /// Seconds recorded for one phase.
    pub fn get(&self, phase: WritePhase) -> f64 {
        match phase {
            WritePhase::Build => self.build,
            WritePhase::Reorg => self.reorg,
            WritePhase::Write => self.write,
            WritePhase::Others => self.others,
        }
    }

    /// Add seconds to one phase.
    pub fn add(&mut self, phase: WritePhase, seconds: f64) {
        match phase {
            WritePhase::Build => self.build += seconds,
            WritePhase::Reorg => self.reorg += seconds,
            WritePhase::Write => self.write += seconds,
            WritePhase::Others => self.others += seconds,
        }
    }

    /// Element-wise accumulate another breakdown.
    pub fn merge(&mut self, other: &WriteBreakdown) {
        self.build += other.build;
        self.reorg += other.reorg;
        self.write += other.write;
        self.others += other.others;
    }
}

/// A running timer that attributes elapsed wall time to phases.
#[derive(Debug)]
pub struct PhaseTimer {
    breakdown: WriteBreakdown,
    current: Option<(WritePhase, Instant)>,
}

impl Default for PhaseTimer {
    fn default() -> Self {
        Self::new()
    }
}

impl PhaseTimer {
    /// A stopped timer with zeroed phases.
    pub fn new() -> Self {
        PhaseTimer {
            breakdown: WriteBreakdown::default(),
            current: None,
        }
    }

    /// Start (or switch to) a phase, closing out the previous one.
    pub fn enter(&mut self, phase: WritePhase) {
        self.close();
        self.current = Some((phase, Instant::now()));
    }

    /// Stop timing, attributing the open interval to its phase.
    pub fn close(&mut self) {
        if let Some((phase, start)) = self.current.take() {
            self.breakdown.add(phase, start.elapsed().as_secs_f64());
        }
    }

    /// Run `f` attributed to `phase`, restoring the stopped state after.
    pub fn time<T>(&mut self, phase: WritePhase, f: impl FnOnce() -> T) -> T {
        self.close();
        let start = Instant::now();
        let out = f();
        self.breakdown.add(phase, start.elapsed().as_secs_f64());
        out
    }

    /// Finish and return the accumulated breakdown.
    pub fn finish(mut self) -> WriteBreakdown {
        self.close();
        self.breakdown
    }
}

/// Measure the wall time of `f`, returning `(duration, output)`.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (Duration, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed(), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate() {
        let mut t = PhaseTimer::new();
        t.time(WritePhase::Build, || {
            std::thread::sleep(Duration::from_millis(5))
        });
        t.time(WritePhase::Build, || {
            std::thread::sleep(Duration::from_millis(5))
        });
        t.time(WritePhase::Write, || ());
        let b = t.finish();
        assert!(b.build >= 0.009, "build={}", b.build);
        assert!(b.reorg == 0.0);
        assert!((b.sum() - (b.build + b.write + b.others)).abs() < 1e-12);
    }

    #[test]
    fn enter_switches_phases() {
        let mut t = PhaseTimer::new();
        t.enter(WritePhase::Build);
        std::thread::sleep(Duration::from_millis(2));
        t.enter(WritePhase::Others);
        std::thread::sleep(Duration::from_millis(2));
        let b = t.finish();
        assert!(b.build > 0.0);
        assert!(b.others > 0.0);
        assert_eq!(b.write, 0.0);
    }

    #[test]
    fn breakdown_get_add_merge() {
        let mut b = WriteBreakdown::default();
        b.add(WritePhase::Reorg, 1.5);
        assert_eq!(b.get(WritePhase::Reorg), 1.5);
        let mut c = WriteBreakdown::default();
        c.add(WritePhase::Reorg, 0.5);
        c.add(WritePhase::Write, 2.0);
        b.merge(&c);
        assert_eq!(b.reorg, 2.0);
        assert_eq!(b.sum(), 4.0);
    }

    #[test]
    fn labels_match_table_iii() {
        let labels: Vec<&str> = WritePhase::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels, vec!["Build", "Reorg.", "Write", "Others"]);
    }

    #[test]
    fn time_it_returns_output() {
        let (d, v) = time_it(|| 42);
        assert_eq!(v, 42);
        assert!(d.as_secs() < 1);
    }
}
