//! Summary statistics for repeated measurements.
//!
//! Wall-clock benchmarks on shared machines are noisy; the harness runs
//! each cell several times and reports these summaries (the Rust
//! Performance Book's advice: mediocre benchmarking beats none, but
//! always look at the spread, not one sample).

use serde::{Deserialize, Serialize};

/// Summary of a sample of measurements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for a single sample).
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (mean of middle pair for even counts).
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a non-empty sample.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN measurements"));
        let median = if count % 2 == 1 {
            sorted[count / 2]
        } else {
            (sorted[count / 2 - 1] + sorted[count / 2]) / 2.0
        };
        Some(Summary {
            count,
            mean,
            stddev: var.sqrt(),
            min: sorted[0],
            median,
            max: sorted[count - 1],
        })
    }

    /// Coefficient of variation (`stddev / mean`), 0 when mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean
        }
    }

    /// `"median ± stddev"` with the given precision.
    pub fn display(&self, decimals: usize) -> String {
        format!("{:.d$} ±{:.d$}", self.median, self.stddev, d = decimals)
    }
}

/// Run `f` `repeats` times and summarize the returned measurements.
pub fn repeat_measure(repeats: usize, mut f: impl FnMut() -> f64) -> Summary {
    assert!(repeats > 0, "at least one repetition");
    let samples: Vec<f64> = (0..repeats).map(|_| f()).collect();
    Summary::of(&samples).expect("non-empty by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarizes_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.stddev - 2.138089935299395).abs() < 1e-9);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-12);
    }

    #[test]
    fn single_sample_and_empty() {
        let s = Summary::of(&[3.5]).unwrap();
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.median, 3.5);
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn odd_median() {
        let s = Summary::of(&[9.0, 1.0, 5.0]).unwrap();
        assert_eq!(s.median, 5.0);
    }

    #[test]
    fn cv_and_display() {
        let s = Summary::of(&[10.0, 10.0]).unwrap();
        assert_eq!(s.cv(), 0.0);
        assert_eq!(s.display(2), "10.00 ±0.00");
        let z = Summary::of(&[0.0, 0.0]).unwrap();
        assert_eq!(z.cv(), 0.0);
    }

    #[test]
    fn repeat_measure_collects() {
        let mut k = 0.0;
        let s = repeat_measure(5, || {
            k += 1.0;
            k
        });
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
    }
}
