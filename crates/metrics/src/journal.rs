//! Trace-correlated structured event journal.
//!
//! The registry tells you *how much*; the journal tells you *what
//! happened*. It is a bounded in-memory ring of severity-tagged
//! [`JournalEvent`]s — slow spans, retries, checksum failures,
//! quarantines, scheduler errors — each stamped with the `trace_id` of
//! the operation that caused it (see [`crate::span::current_trace_id`]),
//! so a flush or consolidation can be followed end to end across the
//! exported JSONL.
//!
//! Two read paths serve two consumers. [`Journal::recent`] is a
//! non-destructive view of the retained tail (`stats()`-style callers).
//! [`Journal::drain_new`] is a cursor: it returns only events appended
//! since the previous drain, which is what the background exporter uses
//! to append each event to `journal.jsonl` exactly once. Events that
//! fall off the ring before being drained are counted, not silently
//! lost.

use parking_lot::Mutex;
use serde::{Serialize, Value};
use std::collections::VecDeque;

/// Default number of events the journal retains.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1024;

/// How bad a journal event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Expected lifecycle notices.
    Info,
    /// Degraded but self-healing (slow span, transient retry).
    Warn,
    /// Data or subsystem damage (checksum failure, quarantine,
    /// scheduler error).
    Error,
}

impl Severity {
    /// Lower-case name used in exports (`info`, `warn`, `error`).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

impl Serialize for Severity {
    fn to_json_value(&self) -> Value {
        Value::String(self.name().to_string())
    }
}

/// One structured event. Serializes to a single JSONL line validated by
/// `schemas/journal.schema.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEvent {
    /// When the event was recorded (ns since the process telemetry
    /// epoch, same clock as span records).
    pub at_ns: u64,
    /// Event severity.
    pub severity: Severity,
    /// Stable machine-readable code (`slow_span`, `retry`,
    /// `checksum_failure`, `quarantine`, `scheduler_error`, …).
    pub code: &'static str,
    /// Human-readable one-liner.
    pub message: String,
    /// The trace the event belongs to (0 when outside any operation).
    pub trace_id: u64,
    /// Dotted name of the span the event was observed in, if any.
    pub span: Option<&'static str>,
    /// Duration of that span in nanoseconds, when relevant.
    pub dur_ns: Option<u64>,
}

impl Serialize for JournalEvent {
    fn to_json_value(&self) -> Value {
        let mut m = serde::Map::new();
        m.insert("at_ns".to_string(), Value::U64(self.at_ns));
        m.insert("severity".to_string(), self.severity.to_json_value());
        m.insert("code".to_string(), Value::String(self.code.to_string()));
        m.insert("message".to_string(), Value::String(self.message.clone()));
        m.insert("trace_id".to_string(), Value::U64(self.trace_id));
        if let Some(span) = self.span {
            m.insert("span".to_string(), Value::String(span.to_string()));
        }
        if let Some(dur) = self.dur_ns {
            m.insert("dur_ns".to_string(), Value::U64(dur));
        }
        Value::Object(m)
    }
}

struct JournalInner {
    events: VecDeque<(u64, JournalEvent)>,
    /// Sequence number the next appended event gets (1-based).
    next_seq: u64,
    /// Highest sequence number already returned by `drain_new`.
    drained: u64,
    /// Events evicted from the ring before any drain saw them.
    lost: u64,
}

/// Bounded, drainable ring of [`JournalEvent`]s. See the module docs.
pub struct Journal {
    inner: Mutex<JournalInner>,
    capacity: usize,
}

impl Default for Journal {
    fn default() -> Self {
        Journal::new(DEFAULT_JOURNAL_CAPACITY)
    }
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Journal")
            .field("len", &inner.events.len())
            .field("capacity", &self.capacity)
            .field("lost", &inner.lost)
            .finish()
    }
}

impl Journal {
    /// A journal retaining at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Journal {
        Journal {
            inner: Mutex::new(JournalInner {
                events: VecDeque::new(),
                next_seq: 1,
                drained: 0,
                lost: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Append one event, evicting the oldest when full.
    pub fn record(&self, event: JournalEvent) {
        let mut inner = self.inner.lock();
        if inner.events.len() >= self.capacity {
            if let Some((seq, _)) = inner.events.pop_front() {
                if seq > inner.drained {
                    inner.lost += 1;
                }
            }
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.events.push_back((seq, event));
    }

    /// Events appended since the previous `drain_new` call. The journal
    /// retains them (still visible to `recent`); only the cursor moves.
    pub fn drain_new(&self) -> Vec<JournalEvent> {
        let mut inner = self.inner.lock();
        let from = inner.drained;
        let fresh: Vec<JournalEvent> = inner
            .events
            .iter()
            .filter(|(seq, _)| *seq > from)
            .map(|(_, e)| e.clone())
            .collect();
        inner.drained = inner.next_seq - 1;
        fresh
    }

    /// The most recent `limit` retained events, oldest first.
    pub fn recent(&self, limit: usize) -> Vec<JournalEvent> {
        let inner = self.inner.lock();
        let skip = inner.events.len().saturating_sub(limit);
        inner
            .events
            .iter()
            .skip(skip)
            .map(|(_, e)| e.clone())
            .collect()
    }

    /// Events retained right now.
    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    /// Whether the journal holds no events.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().events.is_empty()
    }

    /// Events evicted before any drain saw them.
    pub fn lost(&self) -> u64 {
        self.inner.lock().lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(code: &'static str, trace: u64) -> JournalEvent {
        JournalEvent {
            at_ns: 42,
            severity: Severity::Warn,
            code,
            message: format!("{code} happened"),
            trace_id: trace,
            span: Some("engine.ingest"),
            dur_ns: Some(1_000),
        }
    }

    #[test]
    fn drain_returns_each_event_exactly_once() {
        let j = Journal::new(8);
        j.record(event("slow_span", 1));
        j.record(event("retry", 1));
        let first = j.drain_new();
        assert_eq!(first.len(), 2);
        assert!(j.drain_new().is_empty(), "cursor advanced");
        j.record(event("quarantine", 2));
        let second = j.drain_new();
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].code, "quarantine");
        // Drained events stay visible to recent().
        assert_eq!(j.recent(10).len(), 3);
        assert_eq!(j.recent(1)[0].code, "quarantine");
    }

    #[test]
    fn overflow_evicts_oldest_and_counts_undrained_losses() {
        let j = Journal::new(2);
        j.record(event("a", 1));
        j.record(event("b", 1));
        j.record(event("c", 1)); // evicts "a", never drained
        assert_eq!(j.len(), 2);
        assert_eq!(j.lost(), 1);
        let drained = j.drain_new();
        assert_eq!(
            drained.iter().map(|e| e.code).collect::<Vec<_>>(),
            vec!["b", "c"]
        );
        // An eviction of an already-drained event is not a loss.
        j.record(event("d", 2));
        assert_eq!(j.lost(), 1);
    }

    #[test]
    fn events_serialize_to_schema_shape() {
        let v = event("checksum_failure", 7).to_json_value();
        assert_eq!(v["at_ns"].as_u64(), Some(42));
        assert_eq!(v["severity"].as_str(), Some("warn"));
        assert_eq!(v["code"].as_str(), Some("checksum_failure"));
        assert_eq!(v["trace_id"].as_u64(), Some(7));
        assert_eq!(v["span"].as_str(), Some("engine.ingest"));
        assert_eq!(v["dur_ns"].as_u64(), Some(1_000));
        // Optional fields are omitted, not null.
        let bare = JournalEvent {
            span: None,
            dur_ns: None,
            ..event("scheduler_error", 0)
        };
        let v = bare.to_json_value();
        assert!(v.get("span").is_none());
        assert!(v.get("dur_ns").is_none());
    }

    #[test]
    fn severity_names_are_stable() {
        assert_eq!(Severity::Info.name(), "info");
        assert_eq!(Severity::Warn.name(), "warn");
        assert_eq!(Severity::Error.name(), "error");
        assert!(Severity::Info < Severity::Warn && Severity::Warn < Severity::Error);
    }
}
