//! # artsparse-metrics
//!
//! Instrumentation for the `artsparse` reproduction:
//!
//! * [`counter`] — abstract operation counters that empirically validate
//!   the asymptotic bounds of the paper's Table I;
//! * [`stopwatch`] — phase timers producing Table III's Build / Reorg. /
//!   Write / Others breakdown;
//! * [`score`] — the Table IV overall-score formula;
//! * [`report`] — aligned ASCII tables plus CSV/JSON emission;
//! * [`span`] / [`recorder`] / [`histogram`] / [`export`] — the runtime
//!   telemetry subsystem: thread-local span tracing with per-span I/O
//!   accounting, log₂ latency histograms, pluggable span sinks (no-op by
//!   default), and JSON/CSV export of the aggregated report;
//! * [`registry`] / [`journal`] / [`plane`] / [`exposition`] — the live
//!   observability plane: named atomic counters and gauges with
//!   snapshot + delta semantics, a trace-correlated structured event
//!   journal, the recorder decorator that feeds both from span traffic,
//!   and Prometheus-text rendering/parsing of registry snapshots.

#![warn(missing_docs)]

pub mod counter;
pub mod export;
pub mod exposition;
pub mod histogram;
pub mod journal;
pub mod plane;
pub mod recorder;
pub mod registry;
pub mod report;
pub mod score;
pub mod span;
pub mod stats;
pub mod stopwatch;

pub use counter::{OpCounter, OpCounts, OpKind};
pub use export::{BackendOpSummary, SpanSummary, TelemetryReport, TELEMETRY_VERSION};
pub use histogram::{bucket_bounds, bucket_index, Histogram, HISTOGRAM_BUCKETS};
pub use journal::{Journal, JournalEvent, Severity, DEFAULT_JOURNAL_CAPACITY};
pub use plane::{ObservabilityPlane, ObservedRecorder};
pub use recorder::{NoopRecorder, Recorder, TelemetryRecorder, DEFAULT_EVENT_CAPACITY};
pub use registry::{Counter, Gauge, MetricKind, MetricSample, MetricsRegistry, RegistrySnapshot};
pub use report::Table;
pub use score::{overall_scores, ranking, Measurement, ScoreError};
pub use span::{charge, current_trace_id, now_ns, IoStats, Span, SpanKind, SpanRecord};
pub use stats::{repeat_measure, Summary};
pub use stopwatch::{time_it, PhaseTimer, WriteBreakdown, WritePhase};
