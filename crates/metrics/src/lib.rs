//! # artsparse-metrics
//!
//! Instrumentation for the `artsparse` reproduction:
//!
//! * [`counter`] — abstract operation counters that empirically validate
//!   the asymptotic bounds of the paper's Table I;
//! * [`stopwatch`] — phase timers producing Table III's Build / Reorg. /
//!   Write / Others breakdown;
//! * [`score`] — the Table IV overall-score formula;
//! * [`report`] — aligned ASCII tables plus CSV/JSON emission.

#![warn(missing_docs)]

pub mod counter;
pub mod report;
pub mod score;
pub mod stats;
pub mod stopwatch;

pub use counter::{OpCounter, OpCounts, OpKind};
pub use report::Table;
pub use score::{overall_scores, ranking, Measurement, ScoreError};
pub use stats::{repeat_measure, Summary};
pub use stopwatch::{time_it, PhaseTimer, WriteBreakdown, WritePhase};
