//! The paper's overall score formula (Table IV).
//!
//! §IV: every measurement `m_i` (organization `i`, one metric, one pattern,
//! one dimensionality) is normalized by the maximum across organizations,
//! `r_i = m_i / max_j m_j`, then averaged with equal weights over
//! dimensionalities, then patterns (and, to land on a single number per
//! organization, over the metrics write-time / read-time / file-size).
//! Lower is better; the paper reports LINEAR = 0.34 as the best balance.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One raw measurement feeding the score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Organization name (e.g. `"LINEAR"`).
    pub org: String,
    /// Sparsity pattern (e.g. `"TSP"`).
    pub pattern: String,
    /// Dimensionality label (e.g. `"2D"`).
    pub dim: String,
    /// Metric name (e.g. `"write_time"`).
    pub metric: String,
    /// Raw value (seconds, bytes, …). Must be ≥ 0.
    pub value: f64,
}

/// Error from score computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScoreError {
    /// A (pattern, dim, metric) group is missing a measurement for an org.
    MissingMeasurement {
        /// The organization without a value.
        org: String,
        /// The `(pattern, dim, metric)` group.
        group: String,
    },
    /// The same (org, pattern, dim, metric) combination appeared twice.
    DuplicateMeasurement {
        /// The duplicated combination.
        key: String,
    },
    /// No measurements were supplied.
    Empty,
}

impl std::fmt::Display for ScoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScoreError::MissingMeasurement { org, group } => {
                write!(f, "organization {org} has no measurement for group {group}")
            }
            ScoreError::DuplicateMeasurement { key } => {
                write!(f, "duplicate measurement for {key}")
            }
            ScoreError::Empty => write!(f, "no measurements supplied"),
        }
    }
}

impl std::error::Error for ScoreError {}

/// Compute the Table IV scores: `org → score`, lower is better.
///
/// Requires a complete grid: every organization must have exactly one
/// value for every `(pattern, dim, metric)` combination that appears.
pub fn overall_scores(measurements: &[Measurement]) -> Result<BTreeMap<String, f64>, ScoreError> {
    if measurements.is_empty() {
        return Err(ScoreError::Empty);
    }

    // Group values by (metric, pattern, dim) → org → value.
    let mut groups: BTreeMap<(String, String, String), BTreeMap<String, f64>> = BTreeMap::new();
    let mut orgs: Vec<String> = Vec::new();
    for m in measurements {
        if !orgs.contains(&m.org) {
            orgs.push(m.org.clone());
        }
        let group = groups
            .entry((m.metric.clone(), m.pattern.clone(), m.dim.clone()))
            .or_default();
        if group.insert(m.org.clone(), m.value).is_some() {
            return Err(ScoreError::DuplicateMeasurement {
                key: format!("{}/{}/{}/{}", m.org, m.pattern, m.dim, m.metric),
            });
        }
    }

    // Normalize within each group by the per-group max across orgs.
    // normalized[(metric, pattern)] accumulates per-org sums over dims.
    let mut per_org_ratios: BTreeMap<String, Vec<f64>> =
        orgs.iter().map(|o| (o.clone(), Vec::new())).collect();
    for ((metric, pattern, dim), group) in &groups {
        for org in &orgs {
            if !group.contains_key(org) {
                return Err(ScoreError::MissingMeasurement {
                    org: org.clone(),
                    group: format!("{pattern}/{dim}/{metric}"),
                });
            }
        }
        let max = group.values().cloned().fold(f64::MIN, f64::max);
        for org in &orgs {
            let v = group[org];
            let r = if max > 0.0 { v / max } else { 0.0 };
            per_org_ratios.get_mut(org).unwrap().push(r);
        }
    }

    // Equal weights for every (metric, pattern, dim) cell — with a complete
    // grid the nested equal-weight averages of the paper collapse to the
    // flat mean of normalized ratios.
    Ok(per_org_ratios
        .into_iter()
        .map(|(org, ratios)| {
            let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
            (org, mean)
        })
        .collect())
}

/// Rank organizations by ascending score (best first).
pub fn ranking(scores: &BTreeMap<String, f64>) -> Vec<(String, f64)> {
    let mut v: Vec<(String, f64)> = scores.iter().map(|(k, &s)| (k.clone(), s)).collect();
    v.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then_with(|| a.0.cmp(&b.0)));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(org: &str, pattern: &str, dim: &str, metric: &str, value: f64) -> Measurement {
        Measurement {
            org: org.into(),
            pattern: pattern.into(),
            dim: dim.into(),
            metric: metric.into(),
            value,
        }
    }

    #[test]
    fn normalizes_by_group_max() {
        let ms = vec![
            m("A", "TSP", "2D", "write", 1.0),
            m("B", "TSP", "2D", "write", 4.0),
        ];
        let s = overall_scores(&ms).unwrap();
        assert!((s["A"] - 0.25).abs() < 1e-12);
        assert!((s["B"] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn averages_across_groups_equally() {
        let ms = vec![
            m("A", "TSP", "2D", "write", 1.0),
            m("B", "TSP", "2D", "write", 2.0),
            m("A", "GSP", "2D", "write", 3.0),
            m("B", "GSP", "2D", "write", 1.0),
        ];
        let s = overall_scores(&ms).unwrap();
        assert!((s["A"] - (0.5 + 1.0) / 2.0).abs() < 1e-12);
        assert!((s["B"] - (1.0 + 1.0 / 3.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn the_worst_everywhere_scores_one() {
        let ms = vec![
            m("worst", "TSP", "2D", "write", 10.0),
            m("best", "TSP", "2D", "write", 1.0),
            m("worst", "TSP", "3D", "read", 9.0),
            m("best", "TSP", "3D", "read", 3.0),
        ];
        let s = overall_scores(&ms).unwrap();
        assert_eq!(s["worst"], 1.0);
        assert!(s["best"] < 1.0);
        let r = ranking(&s);
        assert_eq!(r[0].0, "best");
    }

    #[test]
    fn detects_missing_and_duplicate() {
        let ms = vec![
            m("A", "TSP", "2D", "write", 1.0),
            m("B", "TSP", "2D", "write", 2.0),
            m("A", "GSP", "2D", "write", 3.0),
        ];
        assert!(matches!(
            overall_scores(&ms),
            Err(ScoreError::MissingMeasurement { .. })
        ));
        let dup = vec![
            m("A", "TSP", "2D", "write", 1.0),
            m("A", "TSP", "2D", "write", 2.0),
        ];
        assert!(matches!(
            overall_scores(&dup),
            Err(ScoreError::DuplicateMeasurement { .. })
        ));
        assert_eq!(overall_scores(&[]), Err(ScoreError::Empty));
    }

    #[test]
    fn zero_max_group_contributes_zero() {
        let ms = vec![
            m("A", "TSP", "2D", "write", 0.0),
            m("B", "TSP", "2D", "write", 0.0),
        ];
        let s = overall_scores(&ms).unwrap();
        assert_eq!(s["A"], 0.0);
        assert_eq!(s["B"], 0.0);
    }
}
