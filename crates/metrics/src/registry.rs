//! Live metrics registry: named counters, gauges, and histograms with
//! snapshot + delta semantics.
//!
//! The span system answers "what happened during this operation"; the
//! registry answers "what is the store doing *right now*". The engine
//! registers named metrics once and then updates them through lock-free
//! handles ([`Counter`], [`Gauge`]) — an update is one atomic store, so
//! hot paths pay nothing for observability beyond that. Periodically
//! (the exporter's tick, a `stats()` call, a test) the registry is asked
//! for a [`RegistrySnapshot`]: a point-in-time reading of every metric
//! plus its **delta since the previous snapshot**, which turns free
//! monotonic counters into per-interval rates without the registry ever
//! storing history.
//!
//! Metric names follow the Prometheus convention (`artsparse_wal_bytes`,
//! snake case, unit-suffixed) because snapshots are rendered verbatim
//! into exposition text by [`crate::exposition`].

use crate::histogram::Histogram;
use parking_lot::Mutex;
use serde::{Serialize, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What kind of metric a registry entry is (Prometheus `# TYPE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing count.
    Counter,
    /// Point-in-time value that can move both ways.
    Gauge,
    /// Log₂-bucket distribution ([`Histogram`]).
    Histogram,
}

impl MetricKind {
    /// The Prometheus type name (`counter`, `gauge`, `histogram`).
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Lock-free handle to a registered counter. Cloning shares the cell.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add to the counter.
    #[inline]
    pub fn add(&self, v: u64) {
        if v != 0 {
            self.0.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Ratchet the counter up to an externally-tracked running total
    /// (no-op when `total` is not ahead; counters never move backwards).
    #[inline]
    pub fn record_total(&self, total: u64) {
        self.0.fetch_max(total, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Lock-free handle to a registered gauge (an `f64` stored as bits).
/// Cloning shares the cell.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

struct Entry {
    help: String,
    kind: MetricKind,
    cell: Arc<AtomicU64>,
    histogram: Option<Histogram>,
}

impl Entry {
    fn value(&self) -> f64 {
        match self.kind {
            MetricKind::Counter => self.cell.load(Ordering::Relaxed) as f64,
            MetricKind::Gauge => f64::from_bits(self.cell.load(Ordering::Relaxed)),
            MetricKind::Histogram => self
                .histogram
                .as_ref()
                .map(|h| h.count() as f64)
                .unwrap_or(0.0),
        }
    }
}

#[derive(Default)]
struct RegInner {
    entries: BTreeMap<String, Entry>,
    /// Per-metric value at the previous snapshot (the delta baseline).
    last: BTreeMap<String, f64>,
    /// Snapshots taken so far; stamped into each snapshot as `seq`.
    snapshots: u64,
}

/// The live metrics registry. See the module docs.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegInner>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("MetricsRegistry")
            .field("metrics", &inner.entries.len())
            .field("snapshots", &inner.snapshots)
            .finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Register (or re-fetch) a counter. Registering the same name twice
    /// returns a handle to the same cell; the first registration's help
    /// text wins. Registering a name that exists with a different kind
    /// panics — that is a naming bug, not a runtime condition.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        Counter(self.cell(name, help, MetricKind::Counter))
    }

    /// Register (or re-fetch) a gauge. Same sharing rules as
    /// [`MetricsRegistry::counter`].
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        Gauge(self.cell(name, help, MetricKind::Gauge))
    }

    fn cell(&self, name: &str, help: &str, kind: MetricKind) -> Arc<AtomicU64> {
        let mut inner = self.inner.lock();
        let entry = inner.entries.entry(name.to_string()).or_insert_with(|| {
            let init = match kind {
                MetricKind::Gauge => 0f64.to_bits(),
                _ => 0,
            };
            Entry {
                help: help.to_string(),
                kind,
                cell: Arc::new(AtomicU64::new(init)),
                histogram: None,
            }
        });
        assert_eq!(
            entry.kind,
            kind,
            "metric {name:?} registered as {} and {}",
            entry.kind.name(),
            kind.name()
        );
        Arc::clone(&entry.cell)
    }

    /// Publish (replace) a histogram metric. Histograms are sampled
    /// whole — the engine rebuilds e.g. the fragment size-tier histogram
    /// from the catalog on each observation — so there is no incremental
    /// handle; the latest published distribution is what snapshots see.
    pub fn set_histogram(&self, name: &str, help: &str, h: Histogram) {
        let mut inner = self.inner.lock();
        let entry = inner
            .entries
            .entry(name.to_string())
            .or_insert_with(|| Entry {
                help: help.to_string(),
                kind: MetricKind::Histogram,
                cell: Arc::new(AtomicU64::new(0)),
                histogram: None,
            });
        assert_eq!(
            entry.kind,
            MetricKind::Histogram,
            "metric {name:?} registered as {} and histogram",
            entry.kind.name()
        );
        entry.histogram = Some(h);
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether no metrics are registered.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().entries.is_empty()
    }

    /// Read every metric and compute its delta since the previous
    /// snapshot, then advance the delta baseline. The first snapshot's
    /// deltas equal the values (baseline zero).
    pub fn snapshot(&self) -> RegistrySnapshot {
        let mut inner = self.inner.lock();
        inner.snapshots += 1;
        let seq = inner.snapshots;
        let mut samples = Vec::with_capacity(inner.entries.len());
        let mut next_last = BTreeMap::new();
        for (name, entry) in &inner.entries {
            let value = entry.value();
            let prev = inner.last.get(name).copied().unwrap_or(0.0);
            samples.push(MetricSample {
                name: name.clone(),
                help: entry.help.clone(),
                kind: entry.kind,
                value,
                delta: value - prev,
                histogram: entry.histogram.clone(),
            });
            next_last.insert(name.clone(), value);
        }
        inner.last = next_last;
        RegistrySnapshot {
            seq,
            at_ns: crate::span::now_ns(),
            samples,
        }
    }
}

/// One metric reading inside a [`RegistrySnapshot`].
#[derive(Debug, Clone)]
pub struct MetricSample {
    /// Metric name (Prometheus conventions, `artsparse_` prefix).
    pub name: String,
    /// One-line human description (`# HELP`).
    pub help: String,
    /// Counter, gauge, or histogram.
    pub kind: MetricKind,
    /// Current value (histograms report their sample count).
    pub value: f64,
    /// Change since the previous snapshot (equals `value` on the first).
    pub delta: f64,
    /// The full distribution, for histogram metrics.
    pub histogram: Option<Histogram>,
}

/// A point-in-time reading of the whole registry.
#[derive(Debug, Clone)]
pub struct RegistrySnapshot {
    /// 1-based snapshot sequence number.
    pub seq: u64,
    /// When the snapshot was taken (ns since the process telemetry
    /// epoch, same clock as span records).
    pub at_ns: u64,
    /// Every registered metric, in name order.
    pub samples: Vec<MetricSample>,
}

impl RegistrySnapshot {
    /// The sample for `name`, if registered.
    pub fn sample(&self, name: &str) -> Option<&MetricSample> {
        self.samples.iter().find(|s| s.name == name)
    }
}

fn f64_value(v: f64) -> Value {
    // Integral readings (the common case: counters, byte gauges) export
    // as JSON integers; only genuinely fractional values need a float.
    if v.fract() == 0.0 && v.abs() < (1u64 << 53) as f64 && v >= 0.0 {
        Value::U64(v as u64)
    } else {
        Value::F64(v)
    }
}

impl Serialize for MetricSample {
    fn to_json_value(&self) -> Value {
        let mut m = serde::Map::new();
        m.insert("name".to_string(), Value::String(self.name.clone()));
        m.insert("help".to_string(), Value::String(self.help.clone()));
        m.insert(
            "kind".to_string(),
            Value::String(self.kind.name().to_string()),
        );
        m.insert("value".to_string(), f64_value(self.value));
        m.insert("delta".to_string(), f64_value(self.delta));
        if let Some(h) = &self.histogram {
            m.insert("histogram".to_string(), h.to_json_value());
        }
        Value::Object(m)
    }
}

impl Serialize for RegistrySnapshot {
    /// The registry-snapshot JSONL document (one line per exporter tick;
    /// telemetry schema v6).
    fn to_json_value(&self) -> Value {
        let mut m = serde::Map::new();
        m.insert("seq".to_string(), Value::U64(self.seq));
        m.insert("at_ns".to_string(), Value::U64(self.at_ns));
        m.insert(
            "samples".to_string(),
            Value::Array(self.samples.iter().map(|s| s.to_json_value()).collect()),
        );
        Value::Object(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_share_cells_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("artsparse_ops_total", "Ops.");
        let b = reg.counter("artsparse_ops_total", "ignored");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(reg.len(), 1);
        let g = reg.gauge("artsparse_depth", "Queue depth.");
        g.set(2.5);
        assert_eq!(reg.gauge("artsparse_depth", "x").get(), 2.5);
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_conflicts_panic() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("artsparse_x", "a counter");
        let _ = reg.gauge("artsparse_x", "now a gauge?");
    }

    #[test]
    fn record_total_ratchets_monotonically() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("artsparse_runs_total", "Runs.");
        c.record_total(10);
        c.record_total(7); // stale reading: ignored
        assert_eq!(c.get(), 10);
        c.record_total(12);
        assert_eq!(c.get(), 12);
    }

    #[test]
    fn snapshots_report_deltas_since_previous() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("artsparse_bytes_total", "Bytes.");
        let g = reg.gauge("artsparse_buffered_bytes", "Buffered.");
        c.add(100);
        g.set(40.0);
        let s1 = reg.snapshot();
        assert_eq!(s1.seq, 1);
        let b = s1.sample("artsparse_bytes_total").unwrap();
        assert_eq!((b.value, b.delta), (100.0, 100.0));
        c.add(50);
        g.set(10.0);
        let s2 = reg.snapshot();
        assert_eq!(s2.seq, 2);
        let b = s2.sample("artsparse_bytes_total").unwrap();
        assert_eq!((b.value, b.delta), (150.0, 50.0));
        let b = s2.sample("artsparse_buffered_bytes").unwrap();
        assert_eq!((b.value, b.delta), (10.0, -30.0));
        // Unchanged between snapshots → delta 0.
        let s3 = reg.snapshot();
        assert_eq!(s3.sample("artsparse_bytes_total").unwrap().delta, 0.0);
    }

    #[test]
    fn histograms_are_published_whole() {
        let reg = MetricsRegistry::new();
        let mut h = Histogram::new();
        h.record(10);
        h.record(1000);
        reg.set_histogram("artsparse_fragment_bytes", "Fragment sizes.", h.clone());
        let snap = reg.snapshot();
        let s = snap.sample("artsparse_fragment_bytes").unwrap();
        assert_eq!(s.kind, MetricKind::Histogram);
        assert_eq!(s.value, 2.0);
        assert_eq!(s.histogram.as_ref().unwrap(), &h);
        // Replacement, not accumulation.
        reg.set_histogram("artsparse_fragment_bytes", "x", Histogram::new());
        let snap = reg.snapshot();
        let s = snap.sample("artsparse_fragment_bytes").unwrap();
        assert_eq!(s.value, 0.0);
        assert_eq!(s.delta, -2.0);
    }

    #[test]
    fn snapshot_serializes_to_the_v6_document() {
        let reg = MetricsRegistry::new();
        reg.counter("artsparse_ops_total", "Ops.").add(7);
        reg.gauge("artsparse_read_amplification", "Amp.").set(1.5);
        let v = reg.snapshot().to_json_value();
        assert_eq!(v["seq"].as_u64(), Some(1));
        assert!(v["at_ns"].as_u64().is_some());
        let samples = v["samples"].as_array().unwrap();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0]["name"].as_str(), Some("artsparse_ops_total"));
        assert_eq!(samples[0]["kind"].as_str(), Some("counter"));
        assert_eq!(samples[0]["value"].as_u64(), Some(7));
        assert_eq!(
            samples[1]["name"].as_str(),
            Some("artsparse_read_amplification")
        );
        assert_eq!(samples[1]["value"].as_f64(), Some(1.5));
    }
}
