//! The assembled observability plane: registry + journal + the recorder
//! decorator that feeds them.
//!
//! [`ObservabilityPlane`] bundles one [`MetricsRegistry`] and one
//! [`Journal`] with the derived-event policy (the slow-span threshold).
//! The engine holds it behind an `Option<Arc<..>>`: `None` means the
//! plane is off and **no registry or journal call happens anywhere** —
//! the zero-overhead-when-disabled contract.
//!
//! [`ObservedRecorder`] is how span traffic reaches the plane without
//! touching engine hot paths: it decorates whatever recorder the engine
//! would otherwise use (the aggregating telemetry recorder or the no-op
//! one), forwards every finished span unchanged, and then lets the plane
//! inspect the record — folding its I/O counters into live registry
//! counters and journaling derived events (slow span, retry, checksum
//! failure, quarantine) with the span's `trace_id`.

use crate::journal::{Journal, JournalEvent, Severity};
use crate::recorder::Recorder;
use crate::registry::{Counter, MetricsRegistry};
use crate::span::{now_ns, SpanRecord};
use std::sync::Arc;

/// Registry + journal + derived-event policy. See the module docs.
pub struct ObservabilityPlane {
    registry: MetricsRegistry,
    journal: Journal,
    slow_span_ns: u64,
    // Counters folded out of finished spans, pre-registered so the
    // exposition shows them from the first snapshot.
    bytes_fetched: Counter,
    bytes_written: Counter,
    requests: Counter,
    retries: Counter,
    checksum_failures: Counter,
    quarantines: Counter,
    wal_bytes: Counter,
    group_commits: Counter,
    slow_spans: Counter,
    bytes_returned: Counter,
}

impl std::fmt::Debug for ObservabilityPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObservabilityPlane")
            .field("registry", &self.registry)
            .field("journal", &self.journal)
            .field("slow_span_ns", &self.slow_span_ns)
            .finish()
    }
}

impl ObservabilityPlane {
    /// A plane whose journal retains `journal_capacity` events and whose
    /// slow-span threshold is `slow_span_ns` (0 disables slow-span
    /// events).
    pub fn new(journal_capacity: usize, slow_span_ns: u64) -> ObservabilityPlane {
        let registry = MetricsRegistry::new();
        let c = |name: &str, help: &str| registry.counter(name, help);
        ObservabilityPlane {
            bytes_fetched: c(
                "artsparse_bytes_fetched_total",
                "Bytes returned by backend reads.",
            ),
            bytes_written: c(
                "artsparse_bytes_written_total",
                "Bytes handed to backend writes.",
            ),
            requests: c("artsparse_requests_total", "Backend requests issued."),
            retries: c(
                "artsparse_retries_total",
                "Backend fetches re-attempted after transient failures.",
            ),
            checksum_failures: c(
                "artsparse_checksum_failures_total",
                "Section or header CRC32C verifications that failed.",
            ),
            quarantines: c(
                "artsparse_quarantines_total",
                "Fragments newly quarantined after integrity failures.",
            ),
            wal_bytes: c(
                "artsparse_wal_bytes_total",
                "Bytes appended to the streaming-ingest write-ahead log.",
            ),
            group_commits: c(
                "artsparse_group_commits_total",
                "Write-buffer flushes that produced a fragment.",
            ),
            slow_spans: c(
                "artsparse_slow_spans_total",
                "Spans that exceeded the configured slow-span threshold.",
            ),
            bytes_returned: c(
                "artsparse_read_bytes_returned_total",
                "Value bytes handed back to read callers.",
            ),
            registry,
            journal: Journal::new(journal_capacity),
            slow_span_ns,
        }
    }

    /// The live registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The event journal.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// The slow-span threshold in nanoseconds (0 = disabled).
    pub fn slow_span_ns(&self) -> u64 {
        self.slow_span_ns
    }

    /// Credit value bytes handed back to a read caller (the denominator
    /// of the derived read-amplification gauge).
    pub fn note_read_returned(&self, bytes: u64) {
        self.bytes_returned.add(bytes);
    }

    /// Bytes fetched ÷ bytes returned so far, or `None` before any read
    /// returned data.
    pub fn read_amplification(&self) -> Option<f64> {
        let returned = self.bytes_returned.get();
        (returned > 0).then(|| self.bytes_fetched.get() as f64 / returned as f64)
    }

    /// Record an explicit journal event (scheduler errors, lifecycle
    /// notices — anything not derivable from a span record).
    pub fn event(&self, severity: Severity, code: &'static str, message: String, trace_id: u64) {
        self.journal.record(JournalEvent {
            at_ns: now_ns(),
            severity,
            code,
            message,
            trace_id,
            span: None,
            dur_ns: None,
        });
    }

    /// Fold one finished span into the plane: live counters plus derived
    /// journal events. Called by [`ObservedRecorder`].
    pub fn observe_span(&self, record: &SpanRecord) {
        let io = &record.io;
        self.bytes_fetched.add(io.bytes_fetched);
        self.bytes_written.add(io.bytes_written);
        self.requests.add(io.requests);
        self.retries.add(io.retries);
        self.checksum_failures.add(io.checksum_failures);
        self.quarantines.add(io.fragments_quarantined);
        self.wal_bytes.add(io.wal_bytes);
        self.group_commits.add(io.group_commits);

        let name = record.kind.name();
        if self.slow_span_ns > 0 && record.dur_ns >= self.slow_span_ns {
            self.slow_spans.inc();
            self.journal.record(JournalEvent {
                at_ns: now_ns(),
                severity: Severity::Warn,
                code: "slow_span",
                message: format!(
                    "{name} took {} ms (threshold {} ms)",
                    record.dur_ns / 1_000_000,
                    self.slow_span_ns / 1_000_000
                ),
                trace_id: record.trace_id,
                span: Some(name),
                dur_ns: Some(record.dur_ns),
            });
        }
        if io.retries > 0 {
            self.journal.record(JournalEvent {
                at_ns: now_ns(),
                severity: Severity::Warn,
                code: "retry",
                message: format!(
                    "{} backend retr{} during {name}",
                    io.retries,
                    if io.retries == 1 { "y" } else { "ies" }
                ),
                trace_id: record.trace_id,
                span: Some(name),
                dur_ns: Some(record.dur_ns),
            });
        }
        if io.checksum_failures > 0 {
            self.journal.record(JournalEvent {
                at_ns: now_ns(),
                severity: Severity::Error,
                code: "checksum_failure",
                message: format!("{} checksum failure(s) during {name}", io.checksum_failures),
                trace_id: record.trace_id,
                span: Some(name),
                dur_ns: Some(record.dur_ns),
            });
        }
        if io.fragments_quarantined > 0 {
            self.journal.record(JournalEvent {
                at_ns: now_ns(),
                severity: Severity::Error,
                code: "quarantine",
                message: format!(
                    "{} fragment(s) quarantined during {name}",
                    io.fragments_quarantined
                ),
                trace_id: record.trace_id,
                span: Some(name),
                dur_ns: Some(record.dur_ns),
            });
        }
    }
}

/// Recorder decorator feeding an [`ObservabilityPlane`]. See the module
/// docs.
pub struct ObservedRecorder {
    inner: Arc<dyn Recorder>,
    plane: Arc<ObservabilityPlane>,
}

impl ObservedRecorder {
    /// Wrap `inner` (the aggregating or no-op recorder) so every span
    /// also reaches `plane`.
    pub fn new(inner: Arc<dyn Recorder>, plane: Arc<ObservabilityPlane>) -> ObservedRecorder {
        ObservedRecorder { inner, plane }
    }
}

impl Recorder for ObservedRecorder {
    /// Always enabled: the decorator only exists when the plane is on,
    /// and the plane needs finished spans even if the inner aggregating
    /// recorder is the no-op.
    fn enabled(&self) -> bool {
        true
    }

    fn record_span(&self, record: &SpanRecord) {
        self.inner.record_span(record);
        self.plane.observe_span(record);
    }

    fn record_backend_op(&self, backend: &'static str, op: &'static str, dur_ns: u64, bytes: u64) {
        self.inner.record_backend_op(backend, op, dur_ns, bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{NoopRecorder, TelemetryRecorder};
    use crate::span::{charge, Span, SpanKind};

    fn plane() -> Arc<ObservabilityPlane> {
        Arc::new(ObservabilityPlane::new(64, 0))
    }

    #[test]
    fn spans_fold_into_live_counters() {
        let p = plane();
        let r: Arc<dyn Recorder> = Arc::new(ObservedRecorder::new(
            Arc::new(NoopRecorder),
            Arc::clone(&p),
        ));
        {
            let _s = Span::enter(&r, SpanKind::Ingest);
            charge(|io| {
                io.wal_bytes += 128;
                io.bytes_written += 256;
                io.requests += 2;
            });
        }
        let snap = p.registry().snapshot();
        assert_eq!(
            snap.sample("artsparse_wal_bytes_total").unwrap().value,
            128.0
        );
        assert_eq!(
            snap.sample("artsparse_bytes_written_total").unwrap().value,
            256.0
        );
        assert_eq!(snap.sample("artsparse_requests_total").unwrap().value, 2.0);
        assert!(p.journal().is_empty(), "healthy spans journal nothing");
    }

    #[test]
    fn decorator_still_feeds_the_inner_recorder() {
        let p = plane();
        let t = Arc::new(TelemetryRecorder::new());
        let inner: Arc<dyn Recorder> = t.clone();
        let r: Arc<dyn Recorder> = Arc::new(ObservedRecorder::new(inner, Arc::clone(&p)));
        {
            let _s = Span::enter(&r, SpanKind::Read);
            charge(|io| io.bytes_fetched += 512);
        }
        let report = t.report();
        assert_eq!(report.totals.bytes_fetched, 512);
        assert_eq!(
            p.registry()
                .snapshot()
                .sample("artsparse_bytes_fetched_total")
                .unwrap()
                .value,
            512.0
        );
    }

    #[test]
    fn trouble_spans_produce_trace_correlated_events() {
        let p = Arc::new(ObservabilityPlane::new(64, 1)); // 1ns: everything is slow
        let r: Arc<dyn Recorder> = Arc::new(ObservedRecorder::new(
            Arc::new(NoopRecorder),
            Arc::clone(&p),
        ));
        let trace = {
            let _s = Span::enter(&r, SpanKind::Consolidate);
            let trace = crate::span::current_trace_id();
            charge(|io| {
                io.retries += 2;
                io.checksum_failures += 1;
                io.fragments_quarantined += 1;
            });
            trace
        };
        let events = p.journal().drain_new();
        let codes: Vec<&str> = events.iter().map(|e| e.code).collect();
        assert!(codes.contains(&"slow_span"));
        assert!(codes.contains(&"retry"));
        assert!(codes.contains(&"checksum_failure"));
        assert!(codes.contains(&"quarantine"));
        for e in &events {
            assert_eq!(e.trace_id, trace);
            assert_eq!(e.span, Some("engine.consolidate"));
        }
        assert_eq!(
            events.iter().find(|e| e.code == "retry").unwrap().severity,
            Severity::Warn
        );
        assert_eq!(
            events
                .iter()
                .find(|e| e.code == "quarantine")
                .unwrap()
                .severity,
            Severity::Error
        );
    }

    #[test]
    fn read_amplification_derives_from_fetched_over_returned() {
        let p = plane();
        assert_eq!(p.read_amplification(), None);
        let r: Arc<dyn Recorder> = Arc::new(ObservedRecorder::new(
            Arc::new(NoopRecorder),
            Arc::clone(&p),
        ));
        {
            let _s = Span::enter(&r, SpanKind::Read);
            charge(|io| io.bytes_fetched += 4096);
        }
        p.note_read_returned(1024);
        assert_eq!(p.read_amplification(), Some(4.0));
    }
}
