//! Machine-readable telemetry export.
//!
//! [`TelemetryReport`] is the stable snapshot a
//! [`TelemetryRecorder`](crate::TelemetryRecorder) produces: per-span-kind
//! summaries (count, latency percentiles, I/O totals), per-backend
//! operation timings, the grand I/O total, and the retained raw events.
//! It serializes to the JSON document the harness writes per matrix cell
//! (validated by `schemas/telemetry.schema.json` in CI) and renders to
//! CSV via the shared [`Table`] so telemetry lands in the same formats as
//! the paper tables.

use crate::histogram::Histogram;
use crate::recorder::Inner;
use crate::report::Table;
use crate::span::{IoStats, SpanKind, SpanRecord};
use serde::Serialize;

/// Schema version stamped into every exported document. Version 2 added
/// the integrity counters (`retries`, `checksum_failures`,
/// `fragments_quarantined`) and the `engine.scrub` span kinds. Version 3
/// added the `par_tasks_spawned` counter and the `engine.par.shard` span
/// kind emitted by the compute-parallel execution layer. Version 4 added
/// the adaptive re-organization span kinds (`engine.consolidate.advise`,
/// `engine.consolidate.convert`) and migration counters
/// (`fragments_migrated`, `conversions_direct`, `conversions_fallback`).
/// Version 5 added the streaming-ingest span kinds (`engine.ingest`,
/// `engine.ingest.wal`, `engine.ingest.flush`, `engine.ingest.replay`,
/// `engine.scheduler.run`) and the ingest counters (`wal_bytes`,
/// `group_commits`, `scheduler_runs`). Version 6 added the `trace_id`
/// stamped on every raw span event (correlating each child span with its
/// top-level operation) and the live-observability registry-snapshot
/// document written by the metrics exporter; v5 documents — identical
/// minus the optional `trace_id` — still validate.
pub const TELEMETRY_VERSION: u32 = 6;

/// Aggregated view of one span kind.
#[derive(Debug, Clone, Serialize)]
pub struct SpanSummary {
    /// The span kind (serialized as its dotted name).
    pub kind: SpanKind,
    /// Number of finished spans.
    pub count: u64,
    /// Total wall-clock nanoseconds across all spans of this kind.
    pub total_ns: u64,
    /// Mean span duration in nanoseconds.
    pub mean_ns: u64,
    /// Median duration (log₂-bucket upper bound).
    pub p50_ns: u64,
    /// 95th-percentile duration.
    pub p95_ns: u64,
    /// 99th-percentile duration.
    pub p99_ns: u64,
    /// Summed I/O charged to spans of this kind.
    pub io: IoStats,
    /// The full latency histogram (mergeable offline).
    pub latency: Histogram,
}

/// Aggregated view of one backend operation on one backend kind.
#[derive(Debug, Clone, Serialize)]
pub struct BackendOpSummary {
    /// Backend kind name (`fs`, `mem`, `sim`, `striped`).
    pub backend: String,
    /// Operation name (`get`, `get_range`, `put`, …).
    pub op: String,
    /// Number of timed calls.
    pub count: u64,
    /// Total wall-clock nanoseconds.
    pub total_ns: u64,
    /// Total payload bytes moved by these calls.
    pub bytes: u64,
    /// Mean call duration in nanoseconds.
    pub mean_ns: u64,
    /// Median call duration (log₂-bucket upper bound).
    pub p50_ns: u64,
    /// 95th-percentile call duration.
    pub p95_ns: u64,
    /// 99th-percentile call duration.
    pub p99_ns: u64,
    /// The full latency histogram.
    pub latency: Histogram,
}

/// One telemetry document: everything a recorder saw, aggregated.
#[derive(Debug, Clone, Serialize)]
pub struct TelemetryReport {
    /// Export schema version ([`TELEMETRY_VERSION`]).
    pub version: u32,
    /// Per-span-kind summaries, in taxonomy order.
    pub spans: Vec<SpanSummary>,
    /// Per-(backend, operation) summaries, sorted by key.
    pub backend_ops: Vec<BackendOpSummary>,
    /// Grand total of I/O across every span kind (self-IO accounting
    /// makes this sum double-count-free).
    pub totals: IoStats,
    /// The most recent raw span events (bounded ring; oldest dropped).
    pub events: Vec<SpanRecord>,
    /// Raw events dropped because the ring was full.
    pub events_dropped: u64,
}

impl TelemetryReport {
    pub(crate) fn from_inner(inner: &Inner) -> TelemetryReport {
        let mut totals = IoStats::default();
        let spans = inner
            .spans
            .iter()
            .map(|(&kind, agg)| {
                totals.merge(&agg.io);
                SpanSummary {
                    kind,
                    count: agg.count,
                    total_ns: agg.total_ns,
                    mean_ns: agg.latency.mean(),
                    p50_ns: agg.latency.p50().unwrap_or(0),
                    p95_ns: agg.latency.p95().unwrap_or(0),
                    p99_ns: agg.latency.p99().unwrap_or(0),
                    io: agg.io,
                    latency: agg.latency.clone(),
                }
            })
            .collect();
        let backend_ops = inner
            .backend_ops
            .iter()
            .map(|(&(backend, op), agg)| BackendOpSummary {
                backend: backend.to_string(),
                op: op.to_string(),
                count: agg.count,
                total_ns: agg.total_ns,
                bytes: agg.bytes,
                mean_ns: agg.latency.mean(),
                p50_ns: agg.latency.p50().unwrap_or(0),
                p95_ns: agg.latency.p95().unwrap_or(0),
                p99_ns: agg.latency.p99().unwrap_or(0),
                latency: agg.latency.clone(),
            })
            .collect();
        TelemetryReport {
            version: TELEMETRY_VERSION,
            spans,
            backend_ops,
            totals,
            events: inner.events.iter().cloned().collect(),
            events_dropped: inner.events_dropped,
        }
    }

    /// The summary for one span kind, if any spans of it finished.
    pub fn span(&self, kind: SpanKind) -> Option<&SpanSummary> {
        self.spans.iter().find(|s| s.kind == kind)
    }

    /// The summary for one (backend, operation) pair, if recorded.
    pub fn backend_op(&self, backend: &str, op: &str) -> Option<&BackendOpSummary> {
        self.backend_ops
            .iter()
            .find(|b| b.backend == backend && b.op == op)
    }

    /// Pretty JSON — the `--telemetry-out` document format.
    pub fn to_json_string_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("telemetry serializes infallibly")
    }

    /// Compact JSON.
    pub fn to_json_string(&self) -> String {
        serde_json::to_string(self).expect("telemetry serializes infallibly")
    }

    /// CSV rendering: a span table and a backend-op table separated by a
    /// blank line.
    pub fn to_csv(&self) -> String {
        let mut spans = Table::new(
            "",
            &[
                "span",
                "count",
                "total_ns",
                "mean_ns",
                "p50_ns",
                "p95_ns",
                "p99_ns",
                "bytes_requested",
                "bytes_fetched",
                "bytes_written",
                "requests",
                "cache_hits",
                "cache_misses",
            ],
        );
        for s in &self.spans {
            spans.push_row(vec![
                s.kind.name().to_string(),
                s.count.to_string(),
                s.total_ns.to_string(),
                s.mean_ns.to_string(),
                s.p50_ns.to_string(),
                s.p95_ns.to_string(),
                s.p99_ns.to_string(),
                s.io.bytes_requested.to_string(),
                s.io.bytes_fetched.to_string(),
                s.io.bytes_written.to_string(),
                s.io.requests.to_string(),
                s.io.cache_hits.to_string(),
                s.io.cache_misses.to_string(),
            ]);
        }
        let mut ops = Table::new(
            "",
            &[
                "backend", "op", "count", "total_ns", "mean_ns", "p50_ns", "p95_ns", "p99_ns",
                "bytes",
            ],
        );
        for b in &self.backend_ops {
            ops.push_row(vec![
                b.backend.clone(),
                b.op.clone(),
                b.count.to_string(),
                b.total_ns.to_string(),
                b.mean_ns.to_string(),
                b.p50_ns.to_string(),
                b.p95_ns.to_string(),
                b.p99_ns.to_string(),
                b.bytes.to_string(),
            ]);
        }
        format!("{}\n{}", spans.to_csv(), ops.to_csv())
    }

    /// A short human-readable digest (for harness stdout).
    pub fn to_ascii(&self) -> String {
        let mut t = Table::new(
            "telemetry",
            &[
                "span",
                "count",
                "mean_ns",
                "p95_ns",
                "bytes_fetched",
                "bytes_written",
            ],
        );
        for s in &self.spans {
            t.push_row(vec![
                s.kind.name().to_string(),
                s.count.to_string(),
                s.mean_ns.to_string(),
                s.p95_ns.to_string(),
                s.io.bytes_fetched.to_string(),
                s.io.bytes_written.to_string(),
            ]);
        }
        t.to_ascii()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Recorder, TelemetryRecorder};
    use crate::span::{charge, Span};
    use std::sync::Arc;

    fn sample_report() -> TelemetryReport {
        let t = Arc::new(TelemetryRecorder::new());
        let r: Arc<dyn Recorder> = t.clone();
        {
            let _read = Span::enter(&r, SpanKind::Read);
            charge(|io| io.bytes_requested += 64);
            let _fetch = Span::enter(&r, SpanKind::ReadFetch);
            charge(|io| {
                io.requests += 2;
                io.bytes_fetched += 256;
            });
        }
        t.record_backend_op("sim", "get_range", 2_000, 256);
        t.report()
    }

    #[test]
    fn json_document_has_expected_shape() {
        let report = sample_report();
        let v = serde_json::to_value(&report).unwrap();
        assert_eq!(v["version"].as_u64(), Some(u64::from(TELEMETRY_VERSION)));
        assert_eq!(TELEMETRY_VERSION, 6);
        let events = v["events"].as_array().unwrap();
        assert!(events.iter().all(|e| e["trace_id"].as_u64().is_some()));
        let spans = v["spans"].as_array().unwrap();
        assert_eq!(spans.len(), 2);
        assert!(spans
            .iter()
            .any(|s| s["kind"].as_str() == Some("engine.read.fetch")));
        assert_eq!(v["totals"]["bytes_fetched"].as_u64(), Some(256));
        assert_eq!(v["totals"]["bytes_requested"].as_u64(), Some(64));
        let ops = v["backend_ops"].as_array().unwrap();
        assert_eq!(ops[0]["backend"].as_str(), Some("sim"));
        assert_eq!(ops[0]["bytes"].as_u64(), Some(256));
        assert!(!v["events"].as_array().unwrap().is_empty());
    }

    #[test]
    fn csv_contains_both_tables() {
        let csv = sample_report().to_csv();
        assert!(csv.starts_with("span,count,"));
        assert!(csv.contains("engine.read.fetch"));
        assert!(csv.contains("backend,op,"));
        assert!(csv.contains("sim,get_range"));
    }

    #[test]
    fn ascii_digest_renders() {
        let s = sample_report().to_ascii();
        assert!(s.contains("== telemetry =="));
        assert!(s.contains("engine.read"));
    }
}
