//! Human-readable tables and machine-readable CSV/JSON reports.
//!
//! Every harness experiment prints an aligned ASCII table mirroring the
//! paper's table/figure, and can also emit CSV and JSON so EXPERIMENTS.md
//! numbers stay regenerable and diffable.

use serde::Serialize;

/// A simple aligned table: one header row plus data rows of strings.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; its arity must match the header.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row arity must match header");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn to_ascii(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("== {} ==\n", self.title));
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Render as RFC-4180-ish CSV (quotes cells containing commas/quotes).
    pub fn to_csv(&self) -> String {
        fn esc(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Serialize any report payload to pretty JSON.
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("report types serialize infallibly")
}

/// Format seconds with four decimals, as the paper's tables do.
pub fn fmt_secs(s: f64) -> String {
    format!("{s:.4}")
}

/// Format a byte count with thousands separators and a human suffix.
pub fn fmt_bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{b} B")
    } else {
        format!("{v:.2} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_aligns_columns() {
        let mut t = Table::new("demo", &["org", "value"]);
        t.push_row(vec!["LINEAR".into(), "0.0780".into()]);
        t.push_row(vec!["COO".into(), "0.1393".into()]);
        let s = t.to_ascii();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // Header and rows start their second column at the same offset.
        let off = lines[1].find("value").unwrap();
        assert_eq!(lines[3].find("0.0780").unwrap(), off);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn row_arity_enforced() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("", &["a", "b"]);
        t.push_row(vec!["x,y".into(), "he said \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KiB");
        assert_eq!(fmt_bytes(5 * 1024 * 1024), "5.00 MiB");
    }

    #[test]
    fn secs_formatting_matches_paper_precision() {
        assert_eq!(fmt_secs(0.0109), "0.0109");
        assert_eq!(fmt_secs(0.5366), "0.5366");
    }
}
