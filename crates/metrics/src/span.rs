//! Allocation-frugal span tracing.
//!
//! A [`Span`] brackets one engine operation (or sub-phase) on the thread
//! that runs it. While the span is open, the code inside it reports I/O
//! through [`charge`], which mutates an [`IoStats`] frame on a
//! thread-local stack — no allocation, no locking, no recorder call until
//! the span closes. On drop the span pops its frame, stamps it with a
//! monotonic start/duration, and hands the finished [`SpanRecord`] to the
//! [`Recorder`].
//!
//! Two properties keep the accounting honest:
//!
//! * **Self-IO only.** A frame accumulates only the I/O charged while it
//!   is the *innermost* open span on its thread; nothing propagates to
//!   parents. Summing any one span kind therefore never double-counts,
//!   and the sum over *all* kinds equals the global total.
//! * **Per-thread stacks.** Worker threads (`std::thread::scope` fragment
//!   readers) open spans on their own stacks at depth 0; the recorder is
//!   the only cross-thread rendezvous. Nesting depth is informational,
//!   not a tree encoding.
//!
//! When the recorder is disabled, [`Span::enter`] returns an inert guard
//! and [`charge`] finds an empty stack: the whole layer reduces to one
//! branch per call site.
//!
//! # Trace correlation
//!
//! Every *outermost* span (depth 0 on its thread) allocates a fresh
//! process-unique `trace_id`; child spans opened on the same thread while
//! it is live inherit it. One `engine.ingest` or `engine.consolidate`
//! call therefore stamps its whole span tree — WAL append, flush, commit,
//! advise, convert — with a single id, which the event journal uses to
//! correlate events back to the operation that caused them. Spans opened
//! on *other* threads (fan-out workers) start traces of their own: the
//! stack, and with it the trace, is strictly per-thread.
//! [`current_trace_id`] exposes the live id (0 when no span is open) so
//! synthesized records and journal events can join the trace.

use crate::recorder::Recorder;
use serde::{Serialize, Value};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::OnceLock;
use std::time::Instant;

/// The kinds of spans the engine emits, mirroring its layer structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum SpanKind {
    Write,
    WriteEncode,
    WriteStage,
    WriteCommit,
    Read,
    ReadPlan,
    ReadFetch,
    ReadDecode,
    ReadMerge,
    Consolidate,
    ConsolidateSnapshot,
    ConsolidateMerge,
    /// Adaptive re-organization: characterize the merged region and run
    /// the advisor's cost model to pick the output organization.
    ConsolidateAdvise,
    /// Adaptive re-organization: re-encode the merged region (or a single
    /// migrating fragment) in the advised organization.
    ConsolidateConvert,
    ConsolidateTombstone,
    ConsolidateCommit,
    ConsolidateSweep,
    Recover,
    Scrub,
    ScrubFragment,
    /// One shard of compute-parallel format work (chunked sort or batched
    /// query scan), synthesized by the engine from per-shard timings.
    ParShard,
    /// One streaming-ingest append: validate, WAL, buffer (and possibly a
    /// threshold-triggered group commit).
    Ingest,
    /// The durable write-ahead-log record of one ingest batch.
    IngestWal,
    /// One group commit: the write buffer flushed into a fragment and its
    /// covering WAL records retired.
    IngestFlush,
    /// Replay of surviving WAL records into a fragment at engine open.
    IngestReplay,
    /// One background-scheduler pass (time-threshold flush check plus the
    /// size-tiered consolidation trigger).
    SchedulerRun,
}

impl SpanKind {
    /// The dotted span name used in exports (`engine.read.fetch`, …).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Write => "engine.write",
            SpanKind::WriteEncode => "engine.write.encode",
            SpanKind::WriteStage => "engine.write.stage",
            SpanKind::WriteCommit => "engine.write.commit",
            SpanKind::Read => "engine.read",
            SpanKind::ReadPlan => "engine.read.plan",
            SpanKind::ReadFetch => "engine.read.fetch",
            SpanKind::ReadDecode => "engine.read.decode",
            SpanKind::ReadMerge => "engine.read.merge",
            SpanKind::Consolidate => "engine.consolidate",
            SpanKind::ConsolidateSnapshot => "engine.consolidate.snapshot",
            SpanKind::ConsolidateMerge => "engine.consolidate.merge",
            SpanKind::ConsolidateAdvise => "engine.consolidate.advise",
            SpanKind::ConsolidateConvert => "engine.consolidate.convert",
            SpanKind::ConsolidateTombstone => "engine.consolidate.tombstone",
            SpanKind::ConsolidateCommit => "engine.consolidate.commit",
            SpanKind::ConsolidateSweep => "engine.consolidate.sweep",
            SpanKind::Recover => "engine.recover",
            SpanKind::Scrub => "engine.scrub",
            SpanKind::ScrubFragment => "engine.scrub.fragment",
            SpanKind::ParShard => "engine.par.shard",
            SpanKind::Ingest => "engine.ingest",
            SpanKind::IngestWal => "engine.ingest.wal",
            SpanKind::IngestFlush => "engine.ingest.flush",
            SpanKind::IngestReplay => "engine.ingest.replay",
            SpanKind::SchedulerRun => "engine.scheduler.run",
        }
    }

    /// All span kinds, in taxonomy order.
    pub fn all() -> &'static [SpanKind] {
        &[
            SpanKind::Write,
            SpanKind::WriteEncode,
            SpanKind::WriteStage,
            SpanKind::WriteCommit,
            SpanKind::Read,
            SpanKind::ReadPlan,
            SpanKind::ReadFetch,
            SpanKind::ReadDecode,
            SpanKind::ReadMerge,
            SpanKind::Consolidate,
            SpanKind::ConsolidateSnapshot,
            SpanKind::ConsolidateMerge,
            SpanKind::ConsolidateAdvise,
            SpanKind::ConsolidateConvert,
            SpanKind::ConsolidateTombstone,
            SpanKind::ConsolidateCommit,
            SpanKind::ConsolidateSweep,
            SpanKind::Recover,
            SpanKind::Scrub,
            SpanKind::ScrubFragment,
            SpanKind::ParShard,
            SpanKind::Ingest,
            SpanKind::IngestWal,
            SpanKind::IngestFlush,
            SpanKind::IngestReplay,
            SpanKind::SchedulerRun,
        ]
    }
}

impl Serialize for SpanKind {
    fn to_json_value(&self) -> Value {
        Value::String(self.name().to_string())
    }
}

/// Per-span I/O accounting, charged via [`charge`] while the span is the
/// innermost open one on its thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct IoStats {
    /// Bytes the planner asked the backend for (coalesced run lengths,
    /// whole-section lengths, prefix peeks).
    pub bytes_requested: u64,
    /// Bytes the backend actually returned.
    pub bytes_fetched: u64,
    /// Bytes handed to the backend by put/rename-commit writes.
    pub bytes_written: u64,
    /// Individual backend requests issued (gets, ranges, puts, lists…).
    pub requests: u64,
    /// Value runs merged into a single range request by gap coalescing.
    pub ranges_coalesced: u64,
    /// Range plans abandoned for a whole-section fetch (too many runs or
    /// poor selectivity).
    pub whole_section_fallbacks: u64,
    /// Decoded-fragment cache hits.
    pub cache_hits: u64,
    /// Decoded-fragment cache misses.
    pub cache_misses: u64,
    /// Fragments evicted from the decoded cache while this span was open.
    pub cache_evictions: u64,
    /// Bytes those evictions released.
    pub cache_evicted_bytes: u64,
    /// Fragments the planner pruned by bounding-box intersection.
    pub fragments_skipped_bbox: u64,
    /// Fragments that vanished under a racing delete and forced a
    /// re-plan.
    pub fragments_replanned: u64,
    /// Errors injected by the fault-testing backend.
    pub fault_trips: u64,
    /// Backend fetches re-attempted after a transient failure.
    pub retries: u64,
    /// Section or header CRC32C verifications that failed.
    pub checksum_failures: u64,
    /// Fragments newly quarantined (first observations only).
    pub fragments_quarantined: u64,
    /// Worker threads spawned for compute-parallel format work (sorts,
    /// batched query scans). Zero on sequential paths.
    pub par_tasks_spawned: u64,
    /// Source fragments whose organization differed from the adaptive
    /// consolidation's output organization (i.e. fragments migrated to a
    /// new format).
    pub fragments_migrated: u64,
    /// Format re-encodings that took a direct (sort-elided or
    /// sort-narrowed) conversion routine.
    pub conversions_direct: u64,
    /// Format re-encodings that fell back to decode-to-COO-and-rebuild.
    pub conversions_fallback: u64,
    /// Bytes written to the streaming-ingest write-ahead log.
    pub wal_bytes: u64,
    /// Group commits: write-buffer flushes that produced a fragment.
    pub group_commits: u64,
    /// Background consolidation-scheduler passes executed.
    pub scheduler_runs: u64,
}

impl IoStats {
    /// Accumulate another stats block (saturating).
    pub fn merge(&mut self, other: &IoStats) {
        self.bytes_requested = self.bytes_requested.saturating_add(other.bytes_requested);
        self.bytes_fetched = self.bytes_fetched.saturating_add(other.bytes_fetched);
        self.bytes_written = self.bytes_written.saturating_add(other.bytes_written);
        self.requests = self.requests.saturating_add(other.requests);
        self.ranges_coalesced = self.ranges_coalesced.saturating_add(other.ranges_coalesced);
        self.whole_section_fallbacks = self
            .whole_section_fallbacks
            .saturating_add(other.whole_section_fallbacks);
        self.cache_hits = self.cache_hits.saturating_add(other.cache_hits);
        self.cache_misses = self.cache_misses.saturating_add(other.cache_misses);
        self.cache_evictions = self.cache_evictions.saturating_add(other.cache_evictions);
        self.cache_evicted_bytes = self
            .cache_evicted_bytes
            .saturating_add(other.cache_evicted_bytes);
        self.fragments_skipped_bbox = self
            .fragments_skipped_bbox
            .saturating_add(other.fragments_skipped_bbox);
        self.fragments_replanned = self
            .fragments_replanned
            .saturating_add(other.fragments_replanned);
        self.fault_trips = self.fault_trips.saturating_add(other.fault_trips);
        self.retries = self.retries.saturating_add(other.retries);
        self.checksum_failures = self
            .checksum_failures
            .saturating_add(other.checksum_failures);
        self.fragments_quarantined = self
            .fragments_quarantined
            .saturating_add(other.fragments_quarantined);
        self.par_tasks_spawned = self
            .par_tasks_spawned
            .saturating_add(other.par_tasks_spawned);
        self.fragments_migrated = self
            .fragments_migrated
            .saturating_add(other.fragments_migrated);
        self.conversions_direct = self
            .conversions_direct
            .saturating_add(other.conversions_direct);
        self.conversions_fallback = self
            .conversions_fallback
            .saturating_add(other.conversions_fallback);
        self.wal_bytes = self.wal_bytes.saturating_add(other.wal_bytes);
        self.group_commits = self.group_commits.saturating_add(other.group_commits);
        self.scheduler_runs = self.scheduler_runs.saturating_add(other.scheduler_runs);
    }

    /// Whether every counter is zero.
    pub fn is_empty(&self) -> bool {
        *self == IoStats::default()
    }
}

/// One finished span as delivered to the recorder.
#[derive(Debug, Clone, Serialize)]
pub struct SpanRecord {
    /// What the span measured.
    pub kind: SpanKind,
    /// The trace this span belongs to: allocated by the outermost span of
    /// the operation and inherited by every child on the same thread.
    pub trace_id: u64,
    /// Start time in nanoseconds since the process telemetry epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth on the recording thread (0 = outermost there).
    pub depth: u32,
    /// I/O charged while this span was innermost on its thread.
    pub io: IoStats,
}

thread_local! {
    static STACK: RefCell<Vec<IoStats>> = const { RefCell::new(Vec::new()) };
    /// The trace id of this thread's outermost open span (0 = none).
    static TRACE: Cell<u64> = const { Cell::new(0) };
}

/// Process-wide trace-id allocator; 0 is reserved for "no trace".
static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);

/// The trace id of the innermost open span tree on this thread, or 0 when
/// no span is open. Journal events and synthesized span records call this
/// to correlate themselves with the operation in flight.
pub fn current_trace_id() -> u64 {
    TRACE.with(Cell::get)
}

fn process_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process telemetry epoch (monotonic).
pub fn now_ns() -> u64 {
    process_epoch().elapsed().as_nanos() as u64
}

/// Charge I/O to the innermost open span on this thread, if any.
///
/// The closure only runs when a span is open, so call sites can pass
/// counter updates unconditionally without paying for disabled telemetry.
#[inline]
pub fn charge(f: impl FnOnce(&mut IoStats)) {
    STACK.with(|stack| {
        if let Some(frame) = stack.borrow_mut().last_mut() {
            f(frame);
        }
    });
}

/// RAII guard for one traced operation. See the module docs.
#[must_use = "a span measures the scope it is alive for"]
pub struct Span {
    // `None` when telemetry is disabled: drop does nothing.
    live: Option<LiveSpan>,
}

struct LiveSpan {
    recorder: Arc<dyn Recorder>,
    kind: SpanKind,
    trace_id: u64,
    start: Instant,
    start_ns: u64,
    depth: u32,
}

impl Span {
    /// Open a span; inert (and free beyond one branch) when the recorder
    /// is disabled.
    pub fn enter(recorder: &Arc<dyn Recorder>, kind: SpanKind) -> Span {
        if !recorder.enabled() {
            return Span { live: None };
        }
        let depth = STACK.with(|stack| {
            let mut s = stack.borrow_mut();
            s.push(IoStats::default());
            (s.len() - 1) as u32
        });
        // The outermost span of the operation mints the trace id; nested
        // spans on the same thread join it.
        let trace_id = if depth == 0 {
            let id = NEXT_TRACE.fetch_add(1, Ordering::Relaxed);
            TRACE.with(|t| t.set(id));
            id
        } else {
            current_trace_id()
        };
        // now_ns() and start come from the same clock; keeping the
        // Instant avoids a second epoch subtraction on the hot path.
        let start = Instant::now();
        let start_ns = start.duration_since(process_epoch()).as_nanos() as u64;
        Span {
            live: Some(LiveSpan {
                recorder: Arc::clone(recorder),
                kind,
                trace_id,
                start,
                start_ns,
                depth,
            }),
        }
    }

    /// Whether this span is actually recording.
    pub fn is_recording(&self) -> bool {
        self.live.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let io = STACK
            .with(|stack| stack.borrow_mut().pop())
            .unwrap_or_default();
        if live.depth == 0 {
            // The operation is over; later spans start fresh traces.
            TRACE.with(|t| t.set(0));
        }
        let record = SpanRecord {
            kind: live.kind,
            trace_id: live.trace_id,
            start_ns: live.start_ns,
            dur_ns: live.start.elapsed().as_nanos() as u64,
            depth: live.depth,
            io,
        };
        live.recorder.record_span(&record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::TelemetryRecorder;

    fn telemetry() -> (Arc<TelemetryRecorder>, Arc<dyn Recorder>) {
        let t = Arc::new(TelemetryRecorder::new());
        let r: Arc<dyn Recorder> = t.clone();
        (t, r)
    }

    #[test]
    fn charge_outside_any_span_is_a_no_op() {
        charge(|io| io.bytes_fetched += 100);
        // Nothing to assert beyond "did not panic": the stack was empty.
    }

    #[test]
    fn span_collects_self_io_only() {
        let (t, r) = telemetry();
        {
            let _outer = Span::enter(&r, SpanKind::Read);
            charge(|io| io.bytes_requested += 10);
            {
                let _inner = Span::enter(&r, SpanKind::ReadFetch);
                charge(|io| io.bytes_fetched += 512);
            }
            charge(|io| io.bytes_requested += 5);
        }
        let report = t.report();
        let read = report.span(SpanKind::Read).unwrap();
        let fetch = report.span(SpanKind::ReadFetch).unwrap();
        // The inner fetch's bytes did NOT propagate to the outer span.
        assert_eq!(read.io.bytes_requested, 15);
        assert_eq!(read.io.bytes_fetched, 0);
        assert_eq!(fetch.io.bytes_fetched, 512);
        assert_eq!(report.totals.bytes_fetched, 512);
        assert_eq!(report.totals.bytes_requested, 15);
    }

    #[test]
    fn depth_tracks_nesting_per_thread() {
        let (t, r) = telemetry();
        {
            let _outer = Span::enter(&r, SpanKind::Read);
            let _inner = Span::enter(&r, SpanKind::ReadPlan);
        }
        let events = t.report().events;
        let plan = events
            .iter()
            .find(|e| e.kind == SpanKind::ReadPlan)
            .unwrap();
        let read = events.iter().find(|e| e.kind == SpanKind::Read).unwrap();
        assert_eq!(read.depth, 0);
        assert_eq!(plan.depth, 1);
        assert!(plan.start_ns >= read.start_ns);
    }

    #[test]
    fn worker_threads_record_at_depth_zero_and_aggregate() {
        let (t, r) = telemetry();
        {
            let _outer = Span::enter(&r, SpanKind::Read);
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let r = &r;
                    s.spawn(move || {
                        let _fetch = Span::enter(r, SpanKind::ReadFetch);
                        charge(|io| io.bytes_fetched += 1000);
                    });
                }
            });
        }
        let report = t.report();
        let fetch = report.span(SpanKind::ReadFetch).unwrap();
        assert_eq!(fetch.count, 4);
        assert_eq!(fetch.io.bytes_fetched, 4000);
        // Each worker's stack was its own: their spans sit at depth 0.
        for e in report
            .events
            .iter()
            .filter(|e| e.kind == SpanKind::ReadFetch)
        {
            assert_eq!(e.depth, 0);
        }
    }

    #[test]
    fn disabled_recorder_yields_inert_spans_and_empty_stack() {
        let r: Arc<dyn Recorder> = Arc::new(crate::recorder::NoopRecorder);
        let span = Span::enter(&r, SpanKind::Write);
        assert!(!span.is_recording());
        STACK.with(|s| assert!(s.borrow().is_empty()));
    }

    #[test]
    fn nested_spans_share_one_trace_and_sequential_ops_differ() {
        let (t, r) = telemetry();
        assert_eq!(current_trace_id(), 0, "no span open, no trace");
        {
            let _outer = Span::enter(&r, SpanKind::Ingest);
            let live = current_trace_id();
            assert_ne!(live, 0);
            {
                let _wal = Span::enter(&r, SpanKind::IngestWal);
                assert_eq!(current_trace_id(), live, "children join the trace");
                let _flush = Span::enter(&r, SpanKind::IngestFlush);
                assert_eq!(current_trace_id(), live);
            }
        }
        assert_eq!(current_trace_id(), 0, "trace cleared when the op ends");
        {
            let _next = Span::enter(&r, SpanKind::Consolidate);
        }
        let events = t.report().events;
        let ingest_trace = events
            .iter()
            .find(|e| e.kind == SpanKind::Ingest)
            .unwrap()
            .trace_id;
        for e in &events {
            if matches!(e.kind, SpanKind::IngestWal | SpanKind::IngestFlush) {
                assert_eq!(e.trace_id, ingest_trace, "{:?}", e.kind);
            }
        }
        let next_trace = events
            .iter()
            .find(|e| e.kind == SpanKind::Consolidate)
            .unwrap()
            .trace_id;
        assert_ne!(next_trace, ingest_trace, "each top-level op gets its own");
        assert!(events.iter().all(|e| e.trace_id != 0));
    }

    #[test]
    fn worker_threads_start_traces_of_their_own() {
        let (t, r) = telemetry();
        {
            let _outer = Span::enter(&r, SpanKind::Read);
            let main_trace = current_trace_id();
            std::thread::scope(|s| {
                let r = &r;
                s.spawn(move || {
                    let _fetch = Span::enter(r, SpanKind::ReadFetch);
                    assert_ne!(current_trace_id(), main_trace);
                    assert_ne!(current_trace_id(), 0);
                });
            });
        }
        let events = t.report().events;
        let read = events.iter().find(|e| e.kind == SpanKind::Read).unwrap();
        let fetch = events
            .iter()
            .find(|e| e.kind == SpanKind::ReadFetch)
            .unwrap();
        assert_ne!(read.trace_id, fetch.trace_id);
    }

    #[test]
    fn kind_names_are_unique_and_dotted() {
        let mut seen = std::collections::BTreeSet::new();
        for &k in SpanKind::all() {
            assert!(k.name().starts_with("engine."), "{}", k.name());
            assert!(seen.insert(k.name()), "duplicate name {}", k.name());
        }
        assert_eq!(seen.len(), 26);
    }
}
