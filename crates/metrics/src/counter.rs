//! Operation counters for empirical complexity validation (Table I).
//!
//! The paper states asymptotic build/read bounds per organization; the
//! `table1` experiment validates them by counting the dominant abstract
//! operations while running each algorithm and fitting the counts against
//! the predicted growth. Counters are relaxed atomics so instrumented code
//! can run under rayon; hot loops accumulate locally and flush once per
//! point via [`OpCounter::add`].

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Kinds of abstract operations counted during builds and reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// One coordinate ↔ linear-address transform (cost `O(d)` each).
    Transform,
    /// One coordinate/key comparison during a search.
    Compare,
    /// One comparison performed by a sort.
    SortCompare,
    /// One tree-node visit (CSF descent step).
    NodeVisit,
    /// One element written into an output structure.
    Emit,
}

/// A snapshot of counter values.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounts {
    /// Coordinate ↔ linear transforms.
    pub transforms: u64,
    /// Search comparisons.
    pub compares: u64,
    /// Sort comparisons.
    pub sort_compares: u64,
    /// Tree-node visits.
    pub node_visits: u64,
    /// Output emissions.
    pub emits: u64,
}

impl OpCounts {
    /// Sum of all categories — a crude "total work" proxy (saturating).
    pub fn total(&self) -> u64 {
        self.transforms
            .saturating_add(self.compares)
            .saturating_add(self.sort_compares)
            .saturating_add(self.node_visits)
            .saturating_add(self.emits)
    }
}

impl std::ops::Sub for OpCounts {
    type Output = OpCounts;
    /// Saturating per-field delta: a snapshot pair taken around a reset
    /// must clamp to zero, not panic in debug or wrap in release.
    fn sub(self, rhs: OpCounts) -> OpCounts {
        OpCounts {
            transforms: self.transforms.saturating_sub(rhs.transforms),
            compares: self.compares.saturating_sub(rhs.compares),
            sort_compares: self.sort_compares.saturating_sub(rhs.sort_compares),
            node_visits: self.node_visits.saturating_sub(rhs.node_visits),
            emits: self.emits.saturating_sub(rhs.emits),
        }
    }
}

/// Thread-safe operation counter.
///
/// All increments use relaxed ordering: counts are statistics, not
/// synchronization.
#[derive(Debug, Default)]
pub struct OpCounter {
    transforms: AtomicU64,
    compares: AtomicU64,
    sort_compares: AtomicU64,
    node_visits: AtomicU64,
    emits: AtomicU64,
}

impl OpCounter {
    /// A fresh, zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` operations of the given kind.
    ///
    /// Saturating: long soak runs must never wrap a counter back to a
    /// small number and corrupt a complexity fit.
    #[inline]
    pub fn add(&self, kind: OpKind, n: u64) {
        let cell = match kind {
            OpKind::Transform => &self.transforms,
            OpKind::Compare => &self.compares,
            OpKind::SortCompare => &self.sort_compares,
            OpKind::NodeVisit => &self.node_visits,
            OpKind::Emit => &self.emits,
        };
        let _ = cell.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_add(n))
        });
    }

    /// Add one operation of the given kind.
    #[inline]
    pub fn inc(&self, kind: OpKind) {
        self.add(kind, 1);
    }

    /// Snapshot the current values.
    pub fn snapshot(&self) -> OpCounts {
        OpCounts {
            transforms: self.transforms.load(Ordering::Relaxed),
            compares: self.compares.load(Ordering::Relaxed),
            sort_compares: self.sort_compares.load(Ordering::Relaxed),
            node_visits: self.node_visits.load(Ordering::Relaxed),
            emits: self.emits.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.transforms.store(0, Ordering::Relaxed);
        self.compares.store(0, Ordering::Relaxed);
        self.sort_compares.store(0, Ordering::Relaxed);
        self.node_visits.store(0, Ordering::Relaxed);
        self.emits.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_per_kind() {
        let c = OpCounter::new();
        c.inc(OpKind::Transform);
        c.add(OpKind::Transform, 4);
        c.add(OpKind::Compare, 10);
        c.inc(OpKind::NodeVisit);
        let s = c.snapshot();
        assert_eq!(s.transforms, 5);
        assert_eq!(s.compares, 10);
        assert_eq!(s.node_visits, 1);
        assert_eq!(s.sort_compares, 0);
        assert_eq!(s.total(), 16);
    }

    #[test]
    fn reset_zeroes() {
        let c = OpCounter::new();
        c.add(OpKind::Emit, 7);
        c.reset();
        assert_eq!(c.snapshot(), OpCounts::default());
    }

    #[test]
    fn snapshots_subtract() {
        let c = OpCounter::new();
        c.add(OpKind::Compare, 3);
        let before = c.snapshot();
        c.add(OpKind::Compare, 5);
        let delta = c.snapshot() - before;
        assert_eq!(delta.compares, 5);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let c = OpCounter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.inc(OpKind::Compare);
                    }
                });
            }
        });
        assert_eq!(c.snapshot().compares, 4000);
    }
}
