//! Prometheus text-format exposition: rendering registry snapshots and
//! parsing them back.
//!
//! [`render`] turns a [`RegistrySnapshot`] into the text format a
//! Prometheus scraper (or a future `artsparse-server /metrics` endpoint)
//! consumes verbatim: `# HELP` / `# TYPE` comment pairs followed by
//! sample lines, one family per metric, histograms expanded into
//! cumulative `_bucket{le="…"}` series plus `_sum` and `_count`.
//!
//! [`parse`] is the reverse direction — a strict line-by-line reader of
//! the same grammar, used by the harness `watch` dashboard to tail a
//! live store's exposition file and by tests to prove the rendered
//! output round-trips. It rejects duplicate family declarations,
//! samples without a declared family, and malformed values, which is
//! exactly the golden-file guarantee CI wants.

use crate::histogram::{bucket_bounds, Histogram};
use crate::registry::{MetricKind, RegistrySnapshot};
use std::collections::BTreeMap;

/// Format a sample value: integral readings stay integers, everything
/// else renders as a float.
fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < (1u64 << 53) as f64 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn render_histogram(out: &mut String, name: &str, h: &Histogram) {
    let mut cumulative = 0u64;
    for (i, &n) in h.buckets().iter().enumerate() {
        if n == 0 {
            continue;
        }
        cumulative += n;
        let (_, hi) = bucket_bounds(i);
        out.push_str(&format!("{name}_bucket{{le=\"{hi}\"}} {cumulative}\n"));
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
    out.push_str(&format!("{name}_sum {}\n", h.sum()));
    out.push_str(&format!("{name}_count {}\n", h.count()));
}

/// Render a registry snapshot as Prometheus exposition text.
pub fn render(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for s in &snapshot.samples {
        out.push_str(&format!("# HELP {} {}\n", s.name, s.help));
        out.push_str(&format!("# TYPE {} {}\n", s.name, s.kind.name()));
        match (&s.kind, &s.histogram) {
            (MetricKind::Histogram, Some(h)) => render_histogram(&mut out, &s.name, h),
            (MetricKind::Histogram, None) => render_histogram(&mut out, &s.name, &Histogram::new()),
            _ => out.push_str(&format!("{} {}\n", s.name, fmt_value(s.value))),
        }
    }
    out
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Full metric name on the line (histogram series keep their
    /// `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Raw label block without braces (`le="15"`), if present.
    pub labels: Option<String>,
    /// The sample value.
    pub value: f64,
}

/// A parsed exposition document.
#[derive(Debug, Clone, Default)]
pub struct Exposition {
    /// `# TYPE` declarations: family name → type name.
    pub types: BTreeMap<String, String>,
    /// `# HELP` declarations: family name → help text.
    pub helps: BTreeMap<String, String>,
    /// All sample lines, in file order.
    pub samples: Vec<Sample>,
}

impl Exposition {
    /// The value of a plain (non-histogram) sample, if present.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels.is_none())
            .map(|s| s.value)
    }
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// The family a sample line belongs to: histogram series map back to
/// their base name.
fn family_of<'a>(name: &'a str, types: &BTreeMap<String, String>) -> Option<&'a str> {
    if types.contains_key(name) {
        return Some(name);
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return Some(base);
            }
        }
    }
    None
}

/// Parse Prometheus exposition text, enforcing the grammar line by line:
/// every sample must belong to a `# TYPE`-declared family, families must
/// not be declared twice, and values must be numeric.
pub fn parse(text: &str) -> Result<Exposition, String> {
    let mut doc = Exposition::default();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        let ctx = |msg: String| format!("line {}: {msg}", lineno + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest
                .split_once(' ')
                .ok_or_else(|| ctx("HELP without text".into()))?;
            if !valid_metric_name(name) {
                return Err(ctx(format!("invalid metric name {name:?}")));
            }
            if doc
                .helps
                .insert(name.to_string(), help.to_string())
                .is_some()
            {
                return Err(ctx(format!("duplicate HELP for {name}")));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, ty) = rest
                .split_once(' ')
                .ok_or_else(|| ctx("TYPE without a type".into()))?;
            if !valid_metric_name(name) {
                return Err(ctx(format!("invalid metric name {name:?}")));
            }
            if !matches!(
                ty,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(ctx(format!("unknown metric type {ty:?}")));
            }
            if doc.types.insert(name.to_string(), ty.to_string()).is_some() {
                return Err(ctx(format!("duplicate TYPE for {name}")));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // free-form comment
        }
        // Sample line: name[{labels}] value
        let (name_part, value_part) = match line.find('{') {
            Some(open) => {
                let close = line
                    .rfind('}')
                    .ok_or_else(|| ctx("unterminated label block".into()))?;
                if close < open {
                    return Err(ctx("malformed label block".into()));
                }
                let labels = &line[open + 1..close];
                let value = line[close + 1..].trim();
                ((&line[..open], Some(labels.to_string())), value)
            }
            None => {
                let (name, value) = line
                    .split_once(' ')
                    .ok_or_else(|| ctx("sample without a value".into()))?;
                ((name, None), value.trim())
            }
        };
        let (name, labels) = name_part;
        if !valid_metric_name(name) {
            return Err(ctx(format!("invalid metric name {name:?}")));
        }
        if family_of(name, &doc.types).is_none() {
            return Err(ctx(format!("sample {name} has no # TYPE declaration")));
        }
        let value: f64 = value_part
            .parse()
            .map_err(|_| ctx(format!("unparseable value {value_part:?} for {name}")))?;
        doc.samples.push(Sample {
            name: name.to_string(),
            labels,
            value,
        });
    }
    for name in doc.types.keys() {
        if !doc.helps.contains_key(name) {
            return Err(format!("family {name} has TYPE but no HELP"));
        }
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn snapshot() -> RegistrySnapshot {
        let reg = MetricsRegistry::new();
        reg.counter("artsparse_wal_bytes_total", "WAL bytes appended.")
            .add(4096);
        reg.gauge("artsparse_read_amplification", "Fetched over returned.")
            .set(1.5);
        let mut h = Histogram::new();
        h.record(10); // bucket 3, le="15"
        h.record(10);
        h.record(1000); // bucket 9, le="1023"
        reg.set_histogram("artsparse_fragment_bytes", "Fragment sizes.", h);
        reg.snapshot()
    }

    #[test]
    fn renders_help_type_and_samples() {
        let text = render(&snapshot());
        assert!(text.contains("# HELP artsparse_wal_bytes_total WAL bytes appended.\n"));
        assert!(text.contains("# TYPE artsparse_wal_bytes_total counter\n"));
        assert!(text.contains("\nartsparse_wal_bytes_total 4096\n"));
        assert!(text.contains("artsparse_read_amplification 1.5\n"));
        assert!(text.contains("# TYPE artsparse_fragment_bytes histogram\n"));
        assert!(text.contains("artsparse_fragment_bytes_bucket{le=\"15\"} 2\n"));
        assert!(text.contains("artsparse_fragment_bytes_bucket{le=\"1023\"} 3\n"));
        assert!(text.contains("artsparse_fragment_bytes_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("artsparse_fragment_bytes_sum 1020\n"));
        assert!(text.contains("artsparse_fragment_bytes_count 3\n"));
    }

    #[test]
    fn rendered_output_parses_back_with_no_duplicates() {
        let text = render(&snapshot());
        let doc = parse(&text).expect("rendered exposition must parse");
        assert_eq!(doc.types.len(), 3);
        assert_eq!(doc.helps.len(), 3);
        assert_eq!(
            doc.types
                .get("artsparse_fragment_bytes")
                .map(String::as_str),
            Some("histogram")
        );
        assert_eq!(doc.value("artsparse_wal_bytes_total"), Some(4096.0));
        assert_eq!(doc.value("artsparse_read_amplification"), Some(1.5));
        // Histogram buckets are cumulative and labeled.
        let buckets: Vec<&Sample> = doc
            .samples
            .iter()
            .filter(|s| s.name == "artsparse_fragment_bytes_bucket")
            .collect();
        assert_eq!(buckets.len(), 3);
        assert_eq!(
            buckets.last().unwrap().labels.as_deref(),
            Some("le=\"+Inf\"")
        );
        assert_eq!(buckets.last().unwrap().value, 3.0);
    }

    #[test]
    fn parser_rejects_grammar_violations() {
        assert!(parse("artsparse_x 1\n").is_err(), "sample without TYPE");
        assert!(
            parse("# TYPE artsparse_x counter\n# TYPE artsparse_x counter\n").is_err(),
            "duplicate TYPE"
        );
        assert!(
            parse("# HELP artsparse_x a\n# TYPE artsparse_x counter\nartsparse_x nope\n").is_err(),
            "non-numeric value"
        );
        assert!(
            parse("# HELP artsparse_x a\n# TYPE artsparse_x widget\n").is_err(),
            "unknown type"
        );
        assert!(
            parse("# TYPE artsparse_x counter\nartsparse_x 1\n").is_err(),
            "TYPE without HELP"
        );
        assert!(
            parse("# HELP 9bad a\n# TYPE 9bad counter\n").is_err(),
            "invalid name"
        );
    }

    #[test]
    fn empty_histograms_still_render_a_valid_family() {
        let reg = MetricsRegistry::new();
        reg.set_histogram("artsparse_empty", "Nothing yet.", Histogram::new());
        let text = render(&reg.snapshot());
        let doc = parse(&text).unwrap();
        assert_eq!(doc.value("artsparse_empty_sum"), Some(0.0));
        assert_eq!(doc.value("artsparse_empty_count"), Some(0.0));
    }
}
