//! Fixed-bucket latency histograms.
//!
//! Telemetry wants an answer to "how long do reads take, and how bad is
//! the tail?" without unbounded memory or per-sample allocation. A
//! [`Histogram`] buckets samples by the floor of their base-2 logarithm:
//! bucket 0 holds `{0, 1}`, bucket *i* holds `[2^i, 2^(i+1))`. Sixty-four
//! buckets cover the whole `u64` range, so one histogram is a flat
//! `8 × 64`-byte array regardless of sample count — cheap to record into,
//! cheap to snapshot, and mergeable across threads, engines, and runs by
//! element-wise addition.
//!
//! Quantiles are read back as the *inclusive upper bound* of the bucket
//! the requested rank falls in — a deliberate over-estimate of at most 2×,
//! which is the precision the log₂ layout trades for its fixed footprint.

use serde::{Serialize, Value};

/// Number of log₂ buckets (covers all of `u64`).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// The bucket a sample falls into: 0 for `{0, 1}`, else `⌊log₂ v⌋`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < 2 {
        0
    } else {
        63 - v.leading_zeros() as usize
    }
}

/// The `[lo, hi]` inclusive value range of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < HISTOGRAM_BUCKETS);
    let lo = if i == 0 { 0 } else { 1u64 << i };
    let hi = if i >= 63 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    };
    (lo, hi)
}

/// A mergeable log₂-bucket histogram of `u64` samples (typically
/// nanoseconds or bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] = self.buckets[bucket_index(v)].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Raw bucket counts (index = `bucket_index` of the samples).
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Element-wise accumulate another histogram (the merge used to
    /// combine per-thread or per-cell histograms).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// The value at quantile `q` in `[0, 1]`, reported as the inclusive
    /// upper bound of the bucket holding that rank.
    ///
    /// Returns `None` when the histogram holds no samples: an empty
    /// histogram has no quantiles, and the old behavior of answering `0`
    /// was indistinguishable from "every sample was instantaneous".
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank in 1..=count: the sample index the quantile points at.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= rank {
                return Some(bucket_bounds(i).1);
            }
        }
        // The bucket counts under-cover `count` only if `count` was
        // inflated relative to the buckets (e.g. a merge saturated a
        // bucket but not the count). The largest bucket is the honest
        // answer for any rank beyond what the buckets cover.
        Some(u64::MAX)
    }

    /// Median (see [`Histogram::quantile`] for the bucket rounding).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }
}

impl Serialize for Histogram {
    /// Sparse rendering: only non-empty buckets, as `[index, count]`
    /// pairs, plus the count/sum scalars — compact in exported JSON while
    /// staying exactly reconstructible (and therefore mergeable offline).
    fn to_json_value(&self) -> Value {
        let mut m = serde::Map::new();
        m.insert("count".to_string(), Value::U64(self.count));
        m.insert("sum".to_string(), Value::U64(self.sum));
        let sparse: Vec<Value> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| Value::Array(vec![Value::U64(i as u64), Value::U64(n)]))
            .collect();
        m.insert("buckets".to_string(), Value::Array(sparse));
        Value::Object(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // Bucket 0 holds {0, 1}; bucket i holds [2^i, 2^(i+1)).
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(7), 2);
        assert_eq!(bucket_index(8), 3);
        assert_eq!(bucket_index(u64::MAX), 63);
        for i in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i, "lo of bucket {i}");
            assert_eq!(bucket_index(hi), i, "hi of bucket {i}");
            if hi < u64::MAX {
                assert_eq!(bucket_index(hi + 1), i + 1, "hi+1 of bucket {i}");
            }
        }
    }

    #[test]
    fn record_count_sum_mean() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 4, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 107);
        assert_eq!(h.mean(), 26);
        assert_eq!(h.buckets()[0], 1); // 1
        assert_eq!(h.buckets()[1], 1); // 2
        assert_eq!(h.buckets()[2], 1); // 4
        assert_eq!(h.buckets()[6], 1); // 100 in [64, 128)
    }

    #[test]
    fn merge_is_elementwise_addition() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1u64, 10, 100] {
            a.record(v);
        }
        for v in [2u64, 10, 1000] {
            b.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 6);
        assert_eq!(merged.sum(), a.sum() + b.sum());
        // One histogram fed all six samples agrees bucket-for-bucket.
        let mut direct = Histogram::new();
        for v in [1u64, 10, 100, 2, 10, 1000] {
            direct.record(v);
        }
        assert_eq!(merged, direct);
    }

    #[test]
    fn quantiles_return_bucket_upper_bounds() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(10); // bucket 3: [8, 16)
        }
        h.record(1000); // bucket 9: [512, 1024)
        assert_eq!(h.p50(), Some(15));
        assert_eq!(h.p95(), Some(15));
        // Rank 100 of 100 lands on the single slow sample.
        assert_eq!(h.quantile(1.0), Some(1023));
        assert_eq!(h.p99(), Some(15)); // rank 99 still in the fast bucket
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0);
        // An empty histogram answers None — not a misleading 0 — for
        // every quantile.
        assert_eq!(h.p50(), None);
        assert_eq!(h.p95(), None);
        assert_eq!(h.p99(), None);
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(1.0), None);
    }

    #[test]
    fn single_sample_pins_every_quantile_to_its_bucket() {
        let mut h = Histogram::new();
        h.record(10); // bucket 3: [8, 16)
        for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(15), "q={q}");
        }
        assert_eq!(h.p50(), Some(15));
        assert_eq!(h.p95(), Some(15));
        assert_eq!(h.p99(), Some(15));
    }

    #[test]
    fn merging_empty_histograms_stays_empty_and_defined() {
        let mut a = Histogram::new();
        a.merge(&Histogram::new());
        assert_eq!(a.count(), 0);
        assert_eq!(a.p50(), None);
        // Empty ⊕ non-empty behaves exactly like the non-empty side.
        let mut b = Histogram::new();
        b.record(100);
        a.merge(&b);
        assert_eq!(a, b);
        assert_eq!(a.p50(), b.p50());
        // Non-empty ⊕ empty is likewise an identity.
        b.merge(&Histogram::new());
        assert_eq!(a, b);
    }

    #[test]
    fn merged_histogram_quantiles_match_direct_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for _ in 0..90 {
            a.record(10); // bucket 3: [8, 16)
        }
        for _ in 0..10 {
            b.record(1000); // bucket 9: [512, 1024)
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.p50(), Some(15));
        assert_eq!(merged.p95(), Some(1023));
        assert_eq!(merged.p99(), Some(1023));
        // Saturated merges keep quantiles defined: a count pinned at
        // u64::MAX beyond what the buckets cover answers the top bucket.
        let mut sat = Histogram::new();
        sat.count = u64::MAX;
        sat.buckets[3] = 1;
        sat.merge(&b);
        assert_eq!(sat.count(), u64::MAX);
        assert_eq!(sat.quantile(1.0), Some(u64::MAX));
    }

    #[test]
    fn serializes_sparsely() {
        let mut h = Histogram::new();
        h.record(3);
        h.record(3);
        let v = h.to_json_value();
        assert_eq!(v["count"].as_u64(), Some(2));
        assert_eq!(v["sum"].as_u64(), Some(6));
        let buckets = v["buckets"].as_array().unwrap();
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0][0].as_u64(), Some(1));
        assert_eq!(buckets[0][1].as_u64(), Some(2));
    }
}
