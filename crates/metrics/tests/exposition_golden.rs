//! Golden-file pin of the Prometheus exposition format.
//!
//! The exporter publishes `metrics.prom` for external scrapers, so its
//! byte-level shape is a public contract: HELP/TYPE pairs, one family
//! per metric, histograms as cumulative `le`-labelled buckets plus
//! `_sum`/`_count`, and no duplicate families. This test renders a
//! fixed registry and compares it verbatim against the checked-in
//! `tests/golden/exposition.prom`; any format drift shows up as a diff
//! of that file, not as a silently changed scrape format.

use artsparse_metrics::{exposition, Histogram, MetricsRegistry};

fn fixed_registry() -> MetricsRegistry {
    let r = MetricsRegistry::new();
    r.counter(
        "artsparse_bytes_written_total",
        "Bytes written to the backend.",
    )
    .add(4096);
    r.counter("artsparse_requests_total", "Backend read requests.")
        .add(17);
    r.gauge("artsparse_fragments", "Live fragments in the store.")
        .set(3.0);
    r.gauge(
        "artsparse_read_amplification",
        "Fetched bytes per returned byte.",
    )
    .set(1.5);
    let mut tiers = Histogram::new();
    for v in [1, 2, 900, 4096, 4097] {
        tiers.record(v);
    }
    r.set_histogram(
        "artsparse_fragment_bytes",
        "Fragment sizes by log2 tier.",
        tiers,
    );
    r
}

#[test]
fn rendered_exposition_matches_the_golden_file() {
    let text = exposition::render(&fixed_registry().snapshot());
    let golden = include_str!("golden/exposition.prom");
    assert_eq!(
        text, golden,
        "exposition format drifted from tests/golden/exposition.prom — \
         if intentional, update the golden file and call out the scrape-format \
         change in the changelog"
    );
}

#[test]
fn golden_file_satisfies_the_strict_grammar_with_no_duplicates() {
    let golden = include_str!("golden/exposition.prom");
    let doc = exposition::parse(golden).expect("golden exposition parses");
    assert_eq!(doc.value("artsparse_bytes_written_total"), Some(4096.0));
    assert_eq!(doc.value("artsparse_fragments"), Some(3.0));
    assert_eq!(doc.value("artsparse_read_amplification"), Some(1.5));
    assert_eq!(doc.value("artsparse_fragment_bytes_sum"), Some(9096.0));
    assert_eq!(doc.value("artsparse_fragment_bytes_count"), Some(5.0));
    // Cumulative buckets end at +Inf == count.
    let inf = doc
        .samples
        .iter()
        .find(|s| {
            s.name == "artsparse_fragment_bytes_bucket"
                && s.labels.as_deref() == Some("le=\"+Inf\"")
        })
        .expect("+Inf bucket present");
    assert_eq!(inf.value, 5.0);
    // Concatenating the document with itself re-declares every family —
    // the grammar rejects duplicates.
    let doubled = format!("{golden}{golden}");
    let err = exposition::parse(&doubled).expect_err("duplicate families rejected");
    assert!(err.contains("duplicate"), "{err}");
}
