//! Shard workers: one owning thread per shard, message-passing command
//! loop over [`StorageEngine`]s.
//!
//! Datasets are hashed onto shards by FNV-1a of their namespaced key
//! (`tenant/dataset`, see [`shard_of`]); each shard thread *owns* its
//! engines outright — no engine is ever touched from two threads — so
//! all cross-session coordination reduces to the channel. Sessions send
//! a [`ShardCmd`] carrying a per-request reply `Sender`; the worker
//! executes against the owning engine and replies with one
//! [`ShardReply`]. Engine errors travel back as the typed
//! [`StorageError`] so the session can map them onto protocol error
//! codes (`BACKPRESSURE`, `READONLY`, `CHECKSUM`, …) without loss.

use crate::server::BackendFactory;
use artsparse_core::FormatKind;
use artsparse_storage::{
    EngineConfig, HealthState, IngestScheduler, SchedulerConfig, StorageEngine, StorageError,
};
use artsparse_tensor::{CoordBuffer, Region, Shape};
use std::collections::HashMap;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;

/// FNV-1a 64-bit hash of a namespaced dataset key.
fn fnv1a(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The shard that owns `tenant/dataset`.
pub fn shard_of(tenant: &str, dataset: &str, n_shards: usize) -> usize {
    (fnv1a(&format!("{tenant}/{dataset}")) % n_shards.max(1) as u64) as usize
}

/// One command sent to a shard worker. Non-generic so channel senders
/// can live in non-generic session and handle types.
#[derive(Debug)]
pub enum ShardCmd {
    /// Create (idempotently) a dataset with the given shape.
    Create {
        /// Namespaced key (`tenant/dataset`).
        key: String,
        /// Dimension sizes.
        dims: Vec<u64>,
        /// Reply channel.
        reply: Sender<ShardReply>,
    },
    /// Write a batch of points (`PUT` commits a fragment synchronously,
    /// `INGEST` streams through the WAL-acked buffer).
    Write {
        /// Namespaced key.
        key: String,
        /// `true` = streaming ingest, `false` = synchronous fragment.
        ingest: bool,
        /// Points per line arity.
        ndim: usize,
        /// Interleaved coordinates (`ndim × n`).
        flat: Vec<u64>,
        /// One value per point.
        values: Vec<f64>,
        /// Reply channel.
        reply: Sender<ShardReply>,
    },
    /// Read one point.
    Get {
        /// Namespaced key.
        key: String,
        /// The coordinate.
        coord: Vec<u64>,
        /// Reply channel.
        reply: Sender<ShardReply>,
    },
    /// Read every stored point in an inclusive region.
    Scan {
        /// Namespaced key.
        key: String,
        /// Inclusive lower corner.
        lo: Vec<u64>,
        /// Inclusive upper corner.
        hi: Vec<u64>,
        /// Maximum rows to return.
        limit: usize,
        /// Reply channel.
        reply: Sender<ShardReply>,
    },
    /// Group-commit the dataset's write buffer.
    Flush {
        /// Namespaced key.
        key: String,
        /// Reply channel.
        reply: Sender<ShardReply>,
    },
    /// Merge the dataset's fragments.
    Consolidate {
        /// Namespaced key.
        key: String,
        /// Reply channel.
        reply: Sender<ShardReply>,
    },
    /// Per-dataset statistics, optionally filtered to one tenant and/or
    /// one dataset.
    Stats {
        /// Restrict to this tenant's namespace (`None` = all, used by
        /// the metrics publisher).
        tenant: Option<String>,
        /// Restrict to one namespaced key.
        key: Option<String>,
        /// Reply channel.
        reply: Sender<ShardReply>,
    },
    /// Flush every engine and retire pending WALs (graceful shutdown).
    Drain {
        /// Reply channel.
        reply: Sender<ShardReply>,
    },
}

/// Statistics for one dataset, as the owning shard reports them.
#[derive(Debug, Clone)]
pub struct DatasetStats {
    /// Namespaced key (`tenant/dataset`).
    pub key: String,
    /// Owning shard index.
    pub shard: usize,
    /// Dimension sizes.
    pub dims: Vec<u64>,
    /// Committed fragments.
    pub fragments: usize,
    /// Stored points (before cross-fragment dedup).
    pub points: u64,
    /// Bytes on the device.
    pub bytes: u64,
    /// Write-path health state.
    pub health: HealthState,
    /// Points sitting in the write buffer (WAL-acked, not yet committed).
    pub buffered_points: usize,
    /// Value bytes sitting in the write buffer.
    pub buffered_bytes: usize,
    /// Live WAL backlog in bytes.
    pub wal_backlog_bytes: u64,
    /// Ingest batches shed by admission control so far.
    pub backpressure_rejections: u64,
}

/// A shard worker's answer to one [`ShardCmd`].
#[derive(Debug)]
pub enum ShardReply {
    /// `Create` outcome: whether the dataset already existed.
    Created {
        /// `true` when the dataset pre-existed with the same shape.
        existed: bool,
    },
    /// `Create` refusal: the dataset exists with a different shape.
    ShapeConflict {
        /// The existing dataset's dimension sizes.
        existing: Vec<u64>,
    },
    /// `Write` outcome.
    Written {
        /// Points accepted.
        acked: usize,
        /// Fragment the batch committed into (`PUT` only).
        fragment: Option<String>,
    },
    /// `Get` outcome.
    Point {
        /// The stored value, if present.
        value: Option<f64>,
    },
    /// `Scan` outcome.
    Points {
        /// `(coordinate, value)` rows in linear-address order.
        rows: Vec<(Vec<u64>, f64)>,
        /// Whether the row limit truncated the result.
        truncated: bool,
    },
    /// `Flush` outcome.
    Flushed {
        /// Fragment the buffer committed into (`None` = buffer empty).
        fragment: Option<String>,
    },
    /// `Consolidate` outcome.
    Consolidated {
        /// Fragments merged away.
        merged: usize,
        /// Points in the merged fragment.
        points: usize,
    },
    /// `Stats` outcome.
    Stats(Vec<DatasetStats>),
    /// `Drain` outcome.
    Drained {
        /// Engines drained.
        datasets: usize,
        /// Engines whose drain failed (flush error, stuck device).
        errors: usize,
    },
    /// The dataset has not been created on this shard.
    NoDataset,
    /// The engine refused or failed the operation.
    Err(StorageError),
}

struct Dataset<B: artsparse_storage::StorageBackend> {
    engine: Arc<StorageEngine<B>>,
    scheduler: Option<IngestScheduler>,
    shape: Shape,
}

/// Spawn shard worker `id`. The worker exits when every [`ShardCmd`]
/// sender is dropped; callers should send [`ShardCmd::Drain`] first for
/// a clean flush.
pub fn spawn_shard<F>(
    id: usize,
    factory: Arc<F>,
    engine_config: EngineConfig,
    scheduler_config: Option<SchedulerConfig>,
    rx: Receiver<ShardCmd>,
) -> std::thread::JoinHandle<()>
where
    F: BackendFactory + Send + Sync + 'static,
{
    std::thread::Builder::new()
        .name(format!("artsparse-shard-{id}"))
        .spawn(move || shard_loop(id, &*factory, &engine_config, scheduler_config.as_ref(), rx))
        .expect("spawning a shard worker thread")
}

fn shard_loop<F: BackendFactory>(
    id: usize,
    factory: &F,
    engine_config: &EngineConfig,
    scheduler_config: Option<&SchedulerConfig>,
    rx: Receiver<ShardCmd>,
) {
    let mut datasets: HashMap<String, Dataset<F::Backend>> = HashMap::new();
    while let Ok(cmd) = rx.recv() {
        match cmd {
            ShardCmd::Create { key, dims, reply } => {
                let _ = reply.send(create(
                    factory,
                    engine_config,
                    scheduler_config,
                    &mut datasets,
                    &key,
                    &dims,
                ));
            }
            ShardCmd::Write {
                key,
                ingest,
                ndim,
                flat,
                values,
                reply,
            } => {
                let r = match datasets.get(&key) {
                    None => ShardReply::NoDataset,
                    Some(ds) => write(ds, ingest, ndim, flat, &values),
                };
                let _ = reply.send(r);
            }
            ShardCmd::Get { key, coord, reply } => {
                let r = match datasets.get(&key) {
                    None => ShardReply::NoDataset,
                    Some(ds) => get(ds, &coord),
                };
                let _ = reply.send(r);
            }
            ShardCmd::Scan {
                key,
                lo,
                hi,
                limit,
                reply,
            } => {
                let r = match datasets.get(&key) {
                    None => ShardReply::NoDataset,
                    Some(ds) => scan(ds, &lo, &hi, limit),
                };
                let _ = reply.send(r);
            }
            ShardCmd::Flush { key, reply } => {
                let r = match datasets.get(&key) {
                    None => ShardReply::NoDataset,
                    Some(ds) => match ds.engine.flush() {
                        Ok(report) => ShardReply::Flushed {
                            fragment: report.map(|r| r.fragment),
                        },
                        Err(e) => ShardReply::Err(e),
                    },
                };
                let _ = reply.send(r);
            }
            ShardCmd::Consolidate { key, reply } => {
                let r = match datasets.get(&key) {
                    None => ShardReply::NoDataset,
                    Some(ds) => match ds.engine.consolidate() {
                        Ok(report) => ShardReply::Consolidated {
                            merged: report.merged_fragments,
                            points: report.n_points,
                        },
                        Err(e) => ShardReply::Err(e),
                    },
                };
                let _ = reply.send(r);
            }
            ShardCmd::Stats { tenant, key, reply } => {
                let _ = reply.send(stats(id, &datasets, tenant.as_deref(), key.as_deref()));
            }
            ShardCmd::Drain { reply } => {
                let mut errors = 0usize;
                for ds in datasets.values_mut() {
                    if let Some(sched) = ds.scheduler.as_mut() {
                        sched.shutdown();
                    }
                    if ds.engine.shutdown().is_err() {
                        errors += 1;
                    }
                }
                let _ = reply.send(ShardReply::Drained {
                    datasets: datasets.len(),
                    errors,
                });
            }
        }
    }
    // Channel closed: the server is going away. Engines were already
    // drained by the Drain command; schedulers stop on drop.
}

fn create<F: BackendFactory>(
    factory: &F,
    engine_config: &EngineConfig,
    scheduler_config: Option<&SchedulerConfig>,
    datasets: &mut HashMap<String, Dataset<F::Backend>>,
    key: &str,
    dims: &[u64],
) -> ShardReply {
    if let Some(existing) = datasets.get(key) {
        return if existing.shape.dims() == dims {
            ShardReply::Created { existed: true }
        } else {
            ShardReply::ShapeConflict {
                existing: existing.shape.dims().to_vec(),
            }
        };
    }
    let shape = match Shape::new(dims.to_vec()) {
        Ok(s) => s,
        Err(e) => return ShardReply::Err(e.into()),
    };
    let backend = match factory.open(key) {
        Ok(b) => b,
        Err(e) => return ShardReply::Err(e),
    };
    let engine = match StorageEngine::open_with(
        backend,
        FormatKind::Coo,
        shape.clone(),
        8,
        engine_config.clone(),
    ) {
        Ok(e) => Arc::new(e),
        Err(e) => return ShardReply::Err(e),
    };
    // A durable backend may hand us a dataset written by an earlier
    // process (fragments on disk, or acked points replayed from the
    // WAL at open). Report that as `existed=true` so re-attaching
    // after a restart is distinguishable from a fresh create.
    let existed = engine
        .stats()
        .map(|s| s.fragments > 0 || s.total_points > 0)
        .unwrap_or(false);
    let scheduler = scheduler_config.map(|sc| IngestScheduler::spawn(Arc::clone(&engine), *sc));
    datasets.insert(
        key.to_string(),
        Dataset {
            engine,
            scheduler,
            shape,
        },
    );
    ShardReply::Created { existed }
}

fn write<B: artsparse_storage::StorageBackend>(
    ds: &Dataset<B>,
    ingest: bool,
    ndim: usize,
    flat: Vec<u64>,
    values: &[f64],
) -> ShardReply {
    let coords = match CoordBuffer::from_flat(ndim, flat) {
        Ok(c) => c,
        Err(e) => return ShardReply::Err(e.into()),
    };
    if ingest {
        match ds.engine.ingest_points::<f64>(&coords, values) {
            Ok(acked) => ShardReply::Written {
                acked,
                fragment: None,
            },
            Err(e) => ShardReply::Err(e),
        }
    } else {
        match ds.engine.write_points::<f64>(&coords, values) {
            Ok(report) => ShardReply::Written {
                acked: report.n_points,
                fragment: Some(report.fragment),
            },
            Err(e) => ShardReply::Err(e),
        }
    }
}

/// Reads don't arity-check inside the engine (a wrong-arity query can
/// only ever miss), so the shard validates before dispatch to keep the
/// protocol's MISMATCH contract symmetric with writes.
fn arity_check<B: artsparse_storage::StorageBackend>(
    ds: &Dataset<B>,
    ndim: usize,
) -> Option<ShardReply> {
    let want = ds.shape.dims().len();
    (ndim != want).then(|| {
        ShardReply::Err(StorageError::Mismatch {
            reason: format!("query has {ndim} dimensions, dataset has {want}"),
        })
    })
}

fn get<B: artsparse_storage::StorageBackend>(ds: &Dataset<B>, coord: &[u64]) -> ShardReply {
    if let Some(err) = arity_check(ds, coord.len()) {
        return err;
    }
    let mut queries = CoordBuffer::new(coord.len().max(1));
    if let Err(e) = queries.push(coord) {
        return ShardReply::Err(e.into());
    }
    match ds.engine.read_values::<f64>(&queries) {
        Ok(values) => ShardReply::Point {
            value: values.into_iter().next().flatten(),
        },
        Err(e) => ShardReply::Err(e),
    }
}

fn scan<B: artsparse_storage::StorageBackend>(
    ds: &Dataset<B>,
    lo: &[u64],
    hi: &[u64],
    limit: usize,
) -> ShardReply {
    if let Some(err) = arity_check(ds, lo.len()) {
        return err;
    }
    let region = match Region::from_corners(lo, hi) {
        Ok(r) => r,
        Err(e) => return ShardReply::Err(e.into()),
    };
    let result = match ds.engine.read_region(&region) {
        Ok(r) => r,
        Err(e) => return ShardReply::Err(e),
    };
    // Hits are sorted by (addr, fragment write order); keeping the last
    // hit per address applies the engine's last-write-wins precedence.
    let mut rows: Vec<(u64, Vec<u64>, f64)> = Vec::new();
    for hit in result.hits {
        if hit.value.len() != 8 {
            return ShardReply::Err(StorageError::corrupt(
                &hit.fragment,
                format!("value record is {} bytes, expected 8", hit.value.len()),
            ));
        }
        let value = f64::from_le_bytes(hit.value[..8].try_into().expect("checked length"));
        match rows.last_mut() {
            Some(last) if last.0 == hit.addr => {
                last.1 = hit.coord;
                last.2 = value;
            }
            _ => rows.push((hit.addr, hit.coord, value)),
        }
    }
    let truncated = rows.len() > limit;
    rows.truncate(limit);
    ShardReply::Points {
        rows: rows.into_iter().map(|(_, c, v)| (c, v)).collect(),
        truncated,
    }
}

fn stats<B: artsparse_storage::StorageBackend>(
    shard: usize,
    datasets: &HashMap<String, Dataset<B>>,
    tenant: Option<&str>,
    key: Option<&str>,
) -> ShardReply {
    let mut out = Vec::new();
    let mut keys: Vec<&String> = datasets.keys().collect();
    keys.sort();
    for k in keys {
        if let Some(t) = tenant {
            if k.split('/').next() != Some(t) {
                continue;
            }
        }
        if let Some(want) = key {
            if k != want {
                continue;
            }
        }
        let ds = &datasets[k];
        let store = match ds.engine.stats() {
            Ok(s) => s,
            Err(e) => return ShardReply::Err(e),
        };
        let buf = ds.engine.buffer_stats();
        out.push(DatasetStats {
            key: k.clone(),
            shard,
            dims: ds.shape.dims().to_vec(),
            fragments: store.fragments,
            points: store.total_points,
            bytes: store.total_bytes,
            health: store.health,
            buffered_points: buf.points,
            buffered_bytes: buf.value_bytes,
            wal_backlog_bytes: store.wal_backlog_bytes,
            backpressure_rejections: store.backpressure_rejections,
        });
    }
    if out.is_empty() && key.is_some() {
        return ShardReply::NoDataset;
    }
    ShardReply::Stats(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::MemFactory;
    use std::sync::mpsc;

    fn ask(tx: &Sender<ShardCmd>, make: impl FnOnce(Sender<ShardReply>) -> ShardCmd) -> ShardReply {
        let (reply_tx, reply_rx) = mpsc::channel();
        tx.send(make(reply_tx)).unwrap();
        reply_rx.recv().unwrap()
    }

    #[test]
    fn hashing_is_stable_and_covers_shards() {
        assert_eq!(
            shard_of("t", "d", 4),
            shard_of("t", "d", 4),
            "hash must be deterministic"
        );
        let covered: std::collections::BTreeSet<usize> = (0..32)
            .map(|i| shard_of("t", &format!("d{i}"), 2))
            .collect();
        assert_eq!(covered.len(), 2, "32 datasets must cover both shards");
        assert_eq!(shard_of("t", "d", 0), 0, "zero shards clamps to one");
    }

    #[test]
    fn shard_worker_serves_the_full_command_set() {
        let (tx, rx) = mpsc::channel();
        let handle = spawn_shard(3, Arc::new(MemFactory), EngineConfig::default(), None, rx);

        // Create, idempotently.
        let r = ask(&tx, |reply| ShardCmd::Create {
            key: "t/d".into(),
            dims: vec![8, 8],
            reply,
        });
        assert!(matches!(r, ShardReply::Created { existed: false }));
        let r = ask(&tx, |reply| ShardCmd::Create {
            key: "t/d".into(),
            dims: vec![8, 8],
            reply,
        });
        assert!(matches!(r, ShardReply::Created { existed: true }));
        let r = ask(&tx, |reply| ShardCmd::Create {
            key: "t/d".into(),
            dims: vec![4, 4],
            reply,
        });
        assert!(matches!(r, ShardReply::ShapeConflict { .. }));

        // Write synchronously, then read back.
        let r = ask(&tx, |reply| ShardCmd::Write {
            key: "t/d".into(),
            ingest: false,
            ndim: 2,
            flat: vec![1, 2, 3, 4],
            values: vec![1.5, 2.5],
            reply,
        });
        match r {
            ShardReply::Written { acked, fragment } => {
                assert_eq!(acked, 2);
                assert!(fragment.is_some(), "PUT names its fragment");
            }
            other => panic!("unexpected {other:?}"),
        }
        let r = ask(&tx, |reply| ShardCmd::Get {
            key: "t/d".into(),
            coord: vec![3, 4],
            reply,
        });
        assert!(matches!(r, ShardReply::Point { value: Some(v) } if v == 2.5));

        // Ingest goes to the buffer; flush commits it; scan sees all.
        let r = ask(&tx, |reply| ShardCmd::Write {
            key: "t/d".into(),
            ingest: true,
            ndim: 2,
            flat: vec![5, 5],
            values: vec![9.0],
            reply,
        });
        assert!(matches!(
            r,
            ShardReply::Written {
                acked: 1,
                fragment: None
            }
        ));
        let r = ask(&tx, |reply| ShardCmd::Flush {
            key: "t/d".into(),
            reply,
        });
        assert!(matches!(r, ShardReply::Flushed { fragment: Some(_) }));
        let r = ask(&tx, |reply| ShardCmd::Scan {
            key: "t/d".into(),
            lo: vec![0, 0],
            hi: vec![7, 7],
            limit: 100,
            reply,
        });
        match r {
            ShardReply::Points { rows, truncated } => {
                assert_eq!(rows.len(), 3);
                assert!(!truncated);
            }
            other => panic!("unexpected {other:?}"),
        }

        // Consolidate merges the two fragments.
        let r = ask(&tx, |reply| ShardCmd::Consolidate {
            key: "t/d".into(),
            reply,
        });
        assert!(matches!(
            r,
            ShardReply::Consolidated {
                merged: 2,
                points: 3
            }
        ));

        // Stats filter by tenant.
        let r = ask(&tx, |reply| ShardCmd::Stats {
            tenant: Some("t".into()),
            key: None,
            reply,
        });
        match r {
            ShardReply::Stats(rows) => {
                assert_eq!(rows.len(), 1);
                assert_eq!(rows[0].key, "t/d");
                assert_eq!(rows[0].shard, 3);
                assert_eq!(rows[0].points, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        let r = ask(&tx, |reply| ShardCmd::Stats {
            tenant: Some("other".into()),
            key: None,
            reply,
        });
        assert!(matches!(r, ShardReply::Stats(rows) if rows.is_empty()));

        // Unknown dataset.
        let r = ask(&tx, |reply| ShardCmd::Get {
            key: "t/none".into(),
            coord: vec![0, 0],
            reply,
        });
        assert!(matches!(r, ShardReply::NoDataset));

        // Drain then close the channel; the worker exits.
        let r = ask(&tx, |reply| ShardCmd::Drain { reply });
        assert!(matches!(
            r,
            ShardReply::Drained {
                datasets: 1,
                errors: 0
            }
        ));
        drop(tx);
        handle.join().unwrap();
    }

    #[test]
    fn scan_applies_last_write_wins_and_limits() {
        let (tx, rx) = mpsc::channel();
        let handle = spawn_shard(0, Arc::new(MemFactory), EngineConfig::default(), None, rx);
        ask(&tx, |reply| ShardCmd::Create {
            key: "t/d".into(),
            dims: vec![16],
            reply,
        });
        // Two fragments writing the same cell: the later one must win.
        for v in [1.0f64, 2.0] {
            ask(&tx, |reply| ShardCmd::Write {
                key: "t/d".into(),
                ingest: false,
                ndim: 1,
                flat: vec![7],
                values: vec![v],
                reply,
            });
        }
        let r = ask(&tx, |reply| ShardCmd::Scan {
            key: "t/d".into(),
            lo: vec![0],
            hi: vec![15],
            limit: 100,
            reply,
        });
        match r {
            ShardReply::Points { rows, .. } => {
                assert_eq!(rows, vec![(vec![7u64], 2.0)]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // A limit of zero truncates everything and says so.
        let r = ask(&tx, |reply| ShardCmd::Scan {
            key: "t/d".into(),
            lo: vec![0],
            hi: vec![15],
            limit: 0,
            reply,
        });
        assert!(matches!(r, ShardReply::Points { rows, truncated: true } if rows.is_empty()));
        drop(tx);
        handle.join().unwrap();
    }
}
