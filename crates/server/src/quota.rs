//! Per-tenant quota accounting.
//!
//! Each tenant has a [`Quota`] — caps on total stored points and value
//! bytes (`0` = unlimited). The [`QuotaBook`] holds one atomic usage
//! record per tenant; sessions **charge** before dispatching a write to
//! a shard and **refund** when the engine rejects it, so the book never
//! counts points the store refused. Charging is a compare-and-swap loop
//! over both counters, which keeps concurrent sessions of one tenant
//! from collectively overshooting the cap.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Caps for one tenant. Zero means unlimited.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Quota {
    /// Maximum stored points across the tenant's datasets.
    pub max_points: u64,
    /// Maximum stored value bytes across the tenant's datasets.
    pub max_bytes: u64,
}

impl Quota {
    /// An unlimited quota.
    pub fn unlimited() -> Quota {
        Quota::default()
    }
}

/// Live usage for one tenant.
#[derive(Debug, Default)]
struct Usage {
    points: AtomicU64,
    bytes: AtomicU64,
}

/// One tenant's quota standing, as reported by `STATS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuotaStanding {
    /// Points currently charged.
    pub points: u64,
    /// Value bytes currently charged.
    pub bytes: u64,
    /// The tenant's caps.
    pub quota: Quota,
}

/// The server-wide quota ledger. Cheap to share (`Arc` inside).
#[derive(Debug, Clone, Default)]
pub struct QuotaBook {
    inner: Arc<BookInner>,
}

#[derive(Debug, Default)]
struct BookInner {
    default_quota: Mutex<Quota>,
    overrides: Mutex<HashMap<String, Quota>>,
    usage: Mutex<HashMap<String, Arc<Usage>>>,
}

/// Why a charge was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuotaExceeded {
    /// The point cap would be crossed.
    Points {
        /// Points already charged.
        used: u64,
        /// The cap.
        limit: u64,
    },
    /// The byte cap would be crossed.
    Bytes {
        /// Bytes already charged.
        used: u64,
        /// The cap.
        limit: u64,
    },
}

impl std::fmt::Display for QuotaExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuotaExceeded::Points { used, limit } => {
                write!(f, "point quota exhausted: {used} of {limit} used")
            }
            QuotaExceeded::Bytes { used, limit } => {
                write!(f, "byte quota exhausted: {used} of {limit} used")
            }
        }
    }
}

impl QuotaBook {
    /// A book where every tenant gets `default_quota` unless overridden.
    pub fn new(default_quota: Quota) -> QuotaBook {
        let book = QuotaBook::default();
        *book.inner.default_quota.lock() = default_quota;
        book
    }

    /// Set (or replace) one tenant's quota override.
    pub fn set_quota(&self, tenant: &str, quota: Quota) {
        self.inner
            .overrides
            .lock()
            .insert(tenant.to_string(), quota);
    }

    /// The quota a tenant is held to.
    pub fn quota_of(&self, tenant: &str) -> Quota {
        self.inner
            .overrides
            .lock()
            .get(tenant)
            .copied()
            .unwrap_or(*self.inner.default_quota.lock())
    }

    fn usage_of(&self, tenant: &str) -> Arc<Usage> {
        Arc::clone(
            self.inner
                .usage
                .lock()
                .entry(tenant.to_string())
                .or_default(),
        )
    }

    /// Atomically charge `points` and `bytes` against the tenant,
    /// refusing (and charging nothing) if either cap would be crossed.
    pub fn charge(&self, tenant: &str, points: u64, bytes: u64) -> Result<(), QuotaExceeded> {
        let quota = self.quota_of(tenant);
        let usage = self.usage_of(tenant);
        // CAS loop on the points counter first; bytes second with a
        // points rollback on failure. Two counters cannot be charged in
        // one atomic op, so the rollback keeps refusals exact.
        loop {
            let p = usage.points.load(Ordering::SeqCst);
            if quota.max_points != 0 && p.saturating_add(points) > quota.max_points {
                return Err(QuotaExceeded::Points {
                    used: p,
                    limit: quota.max_points,
                });
            }
            if usage
                .points
                .compare_exchange(p, p + points, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                break;
            }
        }
        loop {
            let b = usage.bytes.load(Ordering::SeqCst);
            if quota.max_bytes != 0 && b.saturating_add(bytes) > quota.max_bytes {
                usage.points.fetch_sub(points, Ordering::SeqCst);
                return Err(QuotaExceeded::Bytes {
                    used: b,
                    limit: quota.max_bytes,
                });
            }
            if usage
                .bytes
                .compare_exchange(b, b + bytes, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return Ok(());
            }
        }
    }

    /// Refund a charge whose write the engine rejected.
    pub fn refund(&self, tenant: &str, points: u64, bytes: u64) {
        let usage = self.usage_of(tenant);
        usage.points.fetch_sub(points, Ordering::SeqCst);
        usage.bytes.fetch_sub(bytes, Ordering::SeqCst);
    }

    /// One tenant's current standing.
    pub fn standing(&self, tenant: &str) -> QuotaStanding {
        let usage = self.usage_of(tenant);
        QuotaStanding {
            points: usage.points.load(Ordering::SeqCst),
            bytes: usage.bytes.load(Ordering::SeqCst),
            quota: self.quota_of(tenant),
        }
    }

    /// Every tenant that has usage recorded, sorted, with standings —
    /// what the metrics publisher samples into per-tenant gauges.
    pub fn standings(&self) -> Vec<(String, QuotaStanding)> {
        let tenants: Vec<String> = {
            let usage = self.inner.usage.lock();
            let mut t: Vec<String> = usage.keys().cloned().collect();
            t.sort();
            t
        };
        tenants
            .into_iter()
            .map(|t| {
                let s = self.standing(&t);
                (t, s)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_by_default() {
        let book = QuotaBook::default();
        assert!(book.charge("t", u64::MAX / 2, u64::MAX / 2).is_ok());
    }

    #[test]
    fn caps_are_enforced_and_exact() {
        let book = QuotaBook::new(Quota {
            max_points: 10,
            max_bytes: 80,
        });
        assert!(book.charge("t", 10, 80).is_ok());
        let err = book.charge("t", 1, 8).unwrap_err();
        assert!(matches!(
            err,
            QuotaExceeded::Points {
                used: 10,
                limit: 10
            }
        ));
        book.refund("t", 10, 80);
        assert!(book.charge("t", 10, 80).is_ok());
    }

    #[test]
    fn byte_refusal_rolls_back_the_point_charge() {
        let book = QuotaBook::new(Quota {
            max_points: 100,
            max_bytes: 8,
        });
        let err = book.charge("t", 2, 16).unwrap_err();
        assert!(matches!(err, QuotaExceeded::Bytes { .. }));
        let s = book.standing("t");
        assert_eq!((s.points, s.bytes), (0, 0), "failed charge must be whole");
    }

    #[test]
    fn overrides_beat_the_default() {
        let book = QuotaBook::new(Quota {
            max_points: 1,
            max_bytes: 0,
        });
        book.set_quota("big", Quota::unlimited());
        assert!(book.charge("big", 1000, 0).is_ok());
        assert!(book.charge("small", 2, 0).is_err());
    }

    #[test]
    fn concurrent_charges_never_overshoot() {
        let book = QuotaBook::new(Quota {
            max_points: 1000,
            max_bytes: 0,
        });
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let book = book.clone();
                std::thread::spawn(move || {
                    let mut granted = 0u64;
                    for _ in 0..1000 {
                        if book.charge("t", 1, 0).is_ok() {
                            granted += 1;
                        }
                    }
                    granted
                })
            })
            .collect();
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 1000, "exactly the cap must be granted");
        assert_eq!(book.standing("t").points, 1000);
    }

    #[test]
    fn standings_list_tenants_sorted() {
        let book = QuotaBook::default();
        book.charge("beta", 1, 8).unwrap();
        book.charge("alpha", 2, 16).unwrap();
        let s = book.standings();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].0, "alpha");
        assert_eq!(s[0].1.points, 2);
        assert_eq!(s[1].0, "beta");
    }
}
