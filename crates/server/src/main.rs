//! The `artsparse-server` binary: parse flags, start the server, wait
//! for a `SHUTDOWN` command (or run forever), drain, report.

use artsparse_server::{quota::Quota, FsFactory, MemFactory, Server, ServerConfig, ServerHandle};
use artsparse_storage::SchedulerConfig;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
artsparse-server — multi-tenant tensor server (protocol: PROTOCOL.md)

USAGE:
    artsparse-server [OPTIONS]

OPTIONS:
    --tcp <ADDR>                TCP listen address (e.g. 127.0.0.1:4141; port 0 = ephemeral)
    --unix <PATH>               Unix socket path
    --data-dir <DIR>            durable datasets under DIR (default: in-memory)
    --shards <N>                shard worker threads (default 2)
    --quota-points <N>          default per-tenant point cap (0 = unlimited)
    --quota-bytes <N>           default per-tenant byte cap (0 = unlimited)
    --tenant-quota <T:P:B>      override for tenant T: P points, B bytes (repeatable)
    --metrics-out <DIR>         publish metrics.prom/metrics.jsonl/journal.jsonl into DIR
    --export-interval-ms <N>    publisher cadence (default 500)
    --max-batch-points <N>      largest accepted PUT/INGEST batch (default 1048576)
    --scan-limit <N>            largest SCAN region in cells (default 1048576)
    --no-scheduler              disable the per-dataset background flush/compact scheduler
    --no-shutdown-cmd           refuse the SHUTDOWN protocol command
    -h, --help                  print this help
";

fn parse_args(args: &[String]) -> Result<(ServerConfig, Option<PathBuf>), String> {
    let mut config = ServerConfig {
        scheduler: Some(SchedulerConfig::default()),
        ..ServerConfig::default()
    };
    let mut data_dir: Option<PathBuf> = None;
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--tcp" => config.tcp = Some(value(&mut i, "--tcp")?),
            "--unix" => config.unix = Some(PathBuf::from(value(&mut i, "--unix")?)),
            "--data-dir" => data_dir = Some(PathBuf::from(value(&mut i, "--data-dir")?)),
            "--shards" => {
                config.shards = value(&mut i, "--shards")?
                    .parse()
                    .map_err(|_| "--shards needs an integer".to_string())?;
            }
            "--quota-points" => {
                config.default_quota.max_points = value(&mut i, "--quota-points")?
                    .parse()
                    .map_err(|_| "--quota-points needs an integer".to_string())?;
            }
            "--quota-bytes" => {
                config.default_quota.max_bytes = value(&mut i, "--quota-bytes")?
                    .parse()
                    .map_err(|_| "--quota-bytes needs an integer".to_string())?;
            }
            "--tenant-quota" => {
                let spec = value(&mut i, "--tenant-quota")?;
                let parts: Vec<&str> = spec.split(':').collect();
                let parsed = if parts.len() == 3 {
                    match (parts[1].parse::<u64>(), parts[2].parse::<u64>()) {
                        (Ok(p), Ok(b)) => Some((parts[0].to_string(), p, b)),
                        _ => None,
                    }
                } else {
                    None
                };
                let Some((tenant, points, bytes)) = parsed else {
                    return Err(format!(
                        "--tenant-quota must look like tenant:points:bytes, got {spec:?}"
                    ));
                };
                config.tenant_quotas.push((
                    tenant,
                    Quota {
                        max_points: points,
                        max_bytes: bytes,
                    },
                ));
            }
            "--metrics-out" => {
                config.metrics_out = Some(PathBuf::from(value(&mut i, "--metrics-out")?));
            }
            "--export-interval-ms" => {
                config.export_interval_ms = value(&mut i, "--export-interval-ms")?
                    .parse()
                    .map_err(|_| "--export-interval-ms needs an integer".to_string())?;
            }
            "--max-batch-points" => {
                config.max_batch_points = value(&mut i, "--max-batch-points")?
                    .parse()
                    .map_err(|_| "--max-batch-points needs an integer".to_string())?;
            }
            "--scan-limit" => {
                config.scan_limit = value(&mut i, "--scan-limit")?
                    .parse()
                    .map_err(|_| "--scan-limit needs an integer".to_string())?;
            }
            "--no-scheduler" => config.scheduler = None,
            "--no-shutdown-cmd" => config.allow_shutdown = false,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 1;
    }
    if config.tcp.is_none() && config.unix.is_none() {
        return Err("nothing to listen on: pass --tcp and/or --unix".to_string());
    }
    Ok((config, data_dir))
}

fn announce(handle: &ServerHandle) {
    if let Some(addr) = handle.tcp_addr() {
        println!("listening tcp {addr}");
    }
    if let Some(path) = handle.unix_path() {
        println!("listening unix {}", path.display());
    }
}

fn run(mut handle: ServerHandle) -> ExitCode {
    announce(&handle);
    handle.wait();
    let report = handle.shutdown();
    println!(
        "drained {} dataset(s), {} error(s)",
        report.datasets, report.errors
    );
    if report.errors == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (config, data_dir) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let started = match data_dir {
        Some(dir) => Server::start(config, FsFactory::new(dir)),
        None => Server::start(config, MemFactory),
    };
    match started {
        Ok(handle) => run(handle),
        Err(e) => {
            eprintln!("error: failed to start: {}", e.chain_string());
            ExitCode::FAILURE
        }
    }
}
