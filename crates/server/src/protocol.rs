//! The `artsparse/1` wire protocol: command table, error codes, and the
//! request/response grammar.
//!
//! The protocol is line-oriented UTF-8 (see `PROTOCOL.md` at the repo
//! root for the full specification): every request is one command line
//! terminated by `\n` (a trailing `\r` is tolerated and stripped),
//! optionally followed by a fixed number of data lines (`PUT`/`INGEST`).
//! Every response is one status line — `OK …` or `ERR <CODE> <message>`
//! — optionally followed by a payload whose exact line count the status
//! line announces (`GET`, `SCAN`, `STATS`, `METRICS`).
//!
//! This module is pure: parsing and rendering only, no sockets. The
//! [`COMMANDS`] and [`ErrorCode::ALL`] tables are the machine-readable
//! source of truth that the integration tests check `PROTOCOL.md`
//! against, so spec and server cannot drift apart silently.

use artsparse_storage::StorageError;

/// Protocol version token exchanged in greetings and `HELLO`.
pub const PROTOCOL_VERSION: &str = "artsparse/1";

/// One row of the command table: name, argument syntax, one-line summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommandSpec {
    /// Upper-case command name as it appears on the wire.
    pub name: &'static str,
    /// Argument syntax sketch (for usage messages and the spec).
    pub syntax: &'static str,
    /// One-line summary.
    pub summary: &'static str,
}

/// Every command the server accepts, in spec order.
///
/// The `server` integration test enumerates this table against
/// `PROTOCOL.md`; adding a command without documenting it fails CI.
pub const COMMANDS: &[CommandSpec] = &[
    CommandSpec {
        name: "HELLO",
        syntax: "HELLO <tenant> [artsparse/<version>]",
        summary: "bind this session to a tenant namespace",
    },
    CommandSpec {
        name: "CREATE",
        syntax: "CREATE <dataset> <d0>x<d1>[x<d2>...]",
        summary: "create (idempotently) a dataset with the given shape",
    },
    CommandSpec {
        name: "PUT",
        syntax: "PUT <dataset> <n>",
        summary: "synchronously commit n COO points as one fragment",
    },
    CommandSpec {
        name: "INGEST",
        syntax: "INGEST <dataset> <n>",
        summary: "stream n COO points through the WAL-acked write buffer",
    },
    CommandSpec {
        name: "GET",
        syntax: "GET <dataset> <c0> <c1> [<c2>...]",
        summary: "read one point",
    },
    CommandSpec {
        name: "SCAN",
        syntax: "SCAN <dataset> <lo0:hi0> [<lo1:hi1>...] [LIMIT <n>]",
        summary: "read every stored point in an inclusive region",
    },
    CommandSpec {
        name: "FLUSH",
        syntax: "FLUSH <dataset>",
        summary: "group-commit the dataset's write buffer",
    },
    CommandSpec {
        name: "CONSOLIDATE",
        syntax: "CONSOLIDATE <dataset>",
        summary: "merge the dataset's fragments into one",
    },
    CommandSpec {
        name: "STATS",
        syntax: "STATS [<dataset>]",
        summary: "tenant-scoped store statistics as key/value lines",
    },
    CommandSpec {
        name: "METRICS",
        syntax: "METRICS",
        summary: "server-wide Prometheus exposition over the wire",
    },
    CommandSpec {
        name: "PING",
        syntax: "PING",
        summary: "liveness probe",
    },
    CommandSpec {
        name: "QUIT",
        syntax: "QUIT",
        summary: "close this session",
    },
    CommandSpec {
        name: "SHUTDOWN",
        syntax: "SHUTDOWN",
        summary: "drain every shard and stop the server",
    },
];

/// Typed protocol error codes — the `<CODE>` token of an `ERR` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Unknown command word.
    BadCmd,
    /// Malformed arguments or data lines.
    BadArg,
    /// A data command arrived before `HELLO`.
    NoTenant,
    /// `HELLO` requested a protocol version this server does not speak.
    Unsupported,
    /// The dataset has not been created in this tenant's namespace.
    NoDataset,
    /// `CREATE` names an existing dataset with a different shape.
    Exists,
    /// The batch or scan exceeds the server's configured size bounds.
    TooBig,
    /// The tenant's point or byte quota is exhausted.
    Quota,
    /// The engine's admission control rejected the batch
    /// ([`StorageError::Backpressure`]); retry after backing off.
    Backpressure,
    /// The engine's write path is read-only after repeated failures
    /// ([`StorageError::ReadOnly`]); reads still serve.
    ReadOnly,
    /// Stored data failed checksum verification
    /// ([`StorageError::ChecksumMismatch`], possibly wrapped in
    /// retry exhaustion).
    Checksum,
    /// A fragment is structurally corrupt ([`StorageError::CorruptFragment`]).
    Corrupt,
    /// A transient fault persisted through every retry
    /// ([`StorageError::RetriesExhausted`]).
    Retries,
    /// Shape/coordinate/format mismatch ([`StorageError::Mismatch`],
    /// [`StorageError::Tensor`], [`StorageError::Format`]).
    Mismatch,
    /// Element size mismatch ([`StorageError::ElementSizeMismatch`]).
    ElemSize,
    /// An underlying device I/O failure ([`StorageError::Io`]).
    Io,
    /// The server is draining; no new work is accepted.
    ShuttingDown,
    /// A server-side invariant failure (shard unavailable, reply lost).
    Internal,
}

impl ErrorCode {
    /// Every error code, in spec order (checked against `PROTOCOL.md`).
    pub const ALL: &'static [ErrorCode] = &[
        ErrorCode::BadCmd,
        ErrorCode::BadArg,
        ErrorCode::NoTenant,
        ErrorCode::Unsupported,
        ErrorCode::NoDataset,
        ErrorCode::Exists,
        ErrorCode::TooBig,
        ErrorCode::Quota,
        ErrorCode::Backpressure,
        ErrorCode::ReadOnly,
        ErrorCode::Checksum,
        ErrorCode::Corrupt,
        ErrorCode::Retries,
        ErrorCode::Mismatch,
        ErrorCode::ElemSize,
        ErrorCode::Io,
        ErrorCode::ShuttingDown,
        ErrorCode::Internal,
    ];

    /// The wire token (`BACKPRESSURE`, `QUOTA`, …).
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::BadCmd => "BADCMD",
            ErrorCode::BadArg => "BADARG",
            ErrorCode::NoTenant => "NO_TENANT",
            ErrorCode::Unsupported => "UNSUPPORTED",
            ErrorCode::NoDataset => "NO_DATASET",
            ErrorCode::Exists => "EXISTS",
            ErrorCode::TooBig => "TOOBIG",
            ErrorCode::Quota => "QUOTA",
            ErrorCode::Backpressure => "BACKPRESSURE",
            ErrorCode::ReadOnly => "READONLY",
            ErrorCode::Checksum => "CHECKSUM",
            ErrorCode::Corrupt => "CORRUPT",
            ErrorCode::Retries => "RETRIES",
            ErrorCode::Mismatch => "MISMATCH",
            ErrorCode::ElemSize => "ELEMSIZE",
            ErrorCode::Io => "IO",
            ErrorCode::ShuttingDown => "SHUTTING_DOWN",
            ErrorCode::Internal => "INTERNAL",
        }
    }

    /// Map a typed [`StorageError`] onto its protocol error code.
    ///
    /// This is the load-shedding contract of the tentpole: the engine's
    /// overload rejections (`Backpressure`, `ReadOnly`) become typed
    /// protocol errors the client can back off on — never dropped
    /// connections. Checksum classification runs first so a
    /// retry-exhausted checksum failure reports as corruption
    /// (`CHECKSUM`), not availability (`RETRIES`).
    pub fn from_storage_error(e: &StorageError) -> ErrorCode {
        if e.is_checksum_mismatch() {
            return ErrorCode::Checksum;
        }
        match e {
            StorageError::Backpressure { .. } => ErrorCode::Backpressure,
            StorageError::ReadOnly { .. } => ErrorCode::ReadOnly,
            StorageError::ChecksumMismatch { .. } => ErrorCode::Checksum,
            StorageError::CorruptFragment { .. } => ErrorCode::Corrupt,
            StorageError::RetriesExhausted { .. } => ErrorCode::Retries,
            StorageError::Mismatch { .. } | StorageError::Tensor(_) | StorageError::Format(_) => {
                ErrorCode::Mismatch
            }
            StorageError::ElementSizeMismatch { .. } => ErrorCode::ElemSize,
            StorageError::Io(_) => ErrorCode::Io,
        }
    }
}

/// Render an `ERR` status line. The message is flattened to one line.
pub fn err_line(code: ErrorCode, message: &str) -> String {
    let flat: String = message
        .chars()
        .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
        .collect();
    format!("ERR {} {}", code.name(), flat.trim())
}

/// Render the `ERR` line for a typed storage error (code + cause chain).
pub fn storage_err_line(e: &StorageError) -> String {
    err_line(ErrorCode::from_storage_error(e), &e.chain_string())
}

/// A parsed command line: upper-cased command word plus raw argument
/// tokens (whitespace-split).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The command word, upper-cased.
    pub command: String,
    /// The remaining whitespace-separated tokens, verbatim.
    pub args: Vec<String>,
}

/// Split a request line into command + args. Empty lines return `None`
/// (the session skips them rather than erroring).
pub fn parse_request(line: &str) -> Option<Request> {
    let mut tokens = line.split_whitespace();
    let command = tokens.next()?.to_ascii_uppercase();
    Some(Request {
        command,
        args: tokens.map(str::to_string).collect(),
    })
}

/// Whether `name` is a valid tenant or dataset identifier:
/// `[A-Za-z0-9_-]{1,64}`. The charset keeps identifiers shell-, path-,
/// and metrics-safe (hyphens are sanitized to `_` in metric names).
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

/// Parse a `CREATE` shape argument like `64x64x64` into dimension sizes.
pub fn parse_shape(arg: &str) -> Result<Vec<u64>, String> {
    let dims: Result<Vec<u64>, _> = arg.split('x').map(str::parse::<u64>).collect();
    match dims {
        Ok(dims) if !dims.is_empty() && dims.iter().all(|&d| d > 0) => Ok(dims),
        _ => Err(format!(
            "shape must look like 64x64 with positive sizes, got {arg:?}"
        )),
    }
}

/// Parse one `SCAN` bound token `lo:hi` (inclusive).
pub fn parse_bound(arg: &str) -> Result<(u64, u64), String> {
    let Some((lo, hi)) = arg.split_once(':') else {
        return Err(format!("bound must look like lo:hi, got {arg:?}"));
    };
    let (Ok(lo), Ok(hi)) = (lo.parse::<u64>(), hi.parse::<u64>()) else {
        return Err(format!("bound must be integers lo:hi, got {arg:?}"));
    };
    if lo > hi {
        return Err(format!("bound lo must not exceed hi, got {arg:?}"));
    }
    Ok((lo, hi))
}

/// Parse one `PUT`/`INGEST` data line: `<c0> <c1> ... <ck> <value>`.
/// Returns the coordinates and the value.
pub fn parse_point(line: &str) -> Result<(Vec<u64>, f64), String> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    if tokens.len() < 2 {
        return Err(format!(
            "data line needs at least one coordinate and a value, got {line:?}"
        ));
    }
    let (coord_tokens, value_token) = tokens.split_at(tokens.len() - 1);
    let coords: Result<Vec<u64>, _> = coord_tokens.iter().map(|t| t.parse::<u64>()).collect();
    let Ok(coords) = coords else {
        return Err(format!("coordinates must be unsigned integers in {line:?}"));
    };
    let Ok(value) = value_token[0].parse::<f64>() else {
        return Err(format!("value must be a float, got {:?}", value_token[0]));
    };
    Ok((coords, value))
}

/// Render one point as a payload line. `f64` Display round-trips through
/// `parse`, so a value read back over the wire is bit-exact.
pub fn render_point(coord: &[u64], value: f64) -> String {
    let mut out = String::new();
    for c in coord {
        out.push_str(&c.to_string());
        out.push(' ');
    }
    out.push_str(&format_value(value));
    out
}

/// Canonical wire rendering of a value (Rust `Display`, which is the
/// shortest string that round-trips).
pub fn format_value(v: f64) -> String {
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_table_is_unique_and_uppercase() {
        let mut seen = std::collections::BTreeSet::new();
        for c in COMMANDS {
            assert!(seen.insert(c.name), "duplicate command {}", c.name);
            assert_eq!(c.name, c.name.to_ascii_uppercase());
            assert!(c.syntax.starts_with(c.name), "{}", c.name);
            assert!(!c.summary.is_empty());
        }
    }

    #[test]
    fn error_codes_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for e in ErrorCode::ALL {
            assert!(seen.insert(e.name()), "duplicate code {}", e.name());
        }
    }

    #[test]
    fn storage_errors_map_to_typed_codes() {
        use artsparse_storage::FragmentSection;
        let cases = [
            (
                StorageError::Backpressure {
                    resource: "buffer",
                    occupancy: 10,
                    limit: 5,
                },
                ErrorCode::Backpressure,
            ),
            (
                StorageError::ReadOnly {
                    consecutive_failures: 3,
                },
                ErrorCode::ReadOnly,
            ),
            (
                StorageError::checksum_mismatch("f", FragmentSection::Index, 1, 2),
                ErrorCode::Checksum,
            ),
            (StorageError::corrupt("f", "broken"), ErrorCode::Corrupt),
            (
                StorageError::Mismatch { reason: "s".into() },
                ErrorCode::Mismatch,
            ),
            (
                StorageError::ElementSizeMismatch {
                    expected: 8,
                    found: 4,
                },
                ErrorCode::ElemSize,
            ),
            (
                StorageError::Io(std::io::Error::other("disk")),
                ErrorCode::Io,
            ),
        ];
        for (err, want) in cases {
            assert_eq!(ErrorCode::from_storage_error(&err), want, "{err}");
        }
    }

    #[test]
    fn retry_wrapped_checksum_reports_corruption_not_availability() {
        use artsparse_storage::FragmentSection;
        let wrapped = StorageError::RetriesExhausted {
            attempts: 3,
            source: Box::new(StorageError::checksum_mismatch(
                "f",
                FragmentSection::Value,
                1,
                2,
            )),
        };
        assert_eq!(ErrorCode::from_storage_error(&wrapped), ErrorCode::Checksum);
        let plain = StorageError::RetriesExhausted {
            attempts: 3,
            source: Box::new(StorageError::Io(std::io::Error::other("flaky"))),
        };
        assert_eq!(ErrorCode::from_storage_error(&plain), ErrorCode::Retries);
    }

    #[test]
    fn err_lines_are_single_lines() {
        let line = err_line(ErrorCode::BadArg, "multi\nline\rmessage");
        assert_eq!(line, "ERR BADARG multi line message");
        let e = StorageError::Backpressure {
            resource: "wal",
            occupancy: 9,
            limit: 8,
        };
        let line = storage_err_line(&e);
        assert!(line.starts_with("ERR BACKPRESSURE "), "{line}");
        assert!(line.contains("wal") && line.contains('9') && line.contains('8'));
    }

    #[test]
    fn request_parsing_uppercases_the_command_only() {
        let r = parse_request("  put  DS-1 5 ").unwrap();
        assert_eq!(r.command, "PUT");
        assert_eq!(r.args, vec!["DS-1", "5"]);
        assert!(parse_request("   ").is_none());
    }

    #[test]
    fn name_validation() {
        assert!(valid_name("tenant-a_1"));
        assert!(!valid_name(""));
        assert!(!valid_name("has space"));
        assert!(!valid_name("dot.dot"));
        assert!(!valid_name(&"x".repeat(65)));
    }

    #[test]
    fn shape_and_bound_parsing() {
        assert_eq!(parse_shape("64x64x64").unwrap(), vec![64, 64, 64]);
        assert_eq!(parse_shape("7").unwrap(), vec![7]);
        assert!(parse_shape("64x0").is_err());
        assert!(parse_shape("x").is_err());
        assert!(parse_shape("a x b").is_err());
        assert_eq!(parse_bound("3:9").unwrap(), (3, 9));
        assert!(parse_bound("9:3").is_err());
        assert!(parse_bound("9").is_err());
    }

    #[test]
    fn point_lines_round_trip() {
        let (c, v) = parse_point("1 2 3 0.12345678901234567").unwrap();
        assert_eq!(c, vec![1, 2, 3]);
        let rendered = render_point(&c, v);
        let (c2, v2) = parse_point(&rendered).unwrap();
        assert_eq!(c, c2);
        assert_eq!(v.to_bits(), v2.to_bits(), "Display must round-trip");
        assert!(parse_point("5").is_err());
        assert!(parse_point("a b 1.0").is_err());
        assert!(parse_point("1 2 notafloat").is_err());
    }
}
