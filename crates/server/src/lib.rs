#![warn(missing_docs)]
//! `artsparse-server`: a multi-tenant tensor server exposing the
//! [`artsparse_storage`] engine over a line-oriented wire protocol.
//!
//! # Architecture
//!
//! - **Shards** — `N` worker threads, each *owning* a set of
//!   [`artsparse_storage::StorageEngine`]s outright. Datasets are hashed
//!   onto shards by FNV-1a of their tenant-qualified name, so all
//!   cross-session coordination reduces to per-shard message channels.
//! - **Sessions** — one thread per client connection (TCP or Unix
//!   socket), speaking the `artsparse/1` protocol documented in
//!   `PROTOCOL.md` at the repository root and codified in [`protocol`].
//! - **Tenancy** — every session binds a tenant with `HELLO`; dataset
//!   names are namespaced per tenant, and each tenant is held to a
//!   point/byte [`quota::Quota`] charged before every write.
//! - **Typed load shedding** — the engine's
//!   [`Backpressure`](artsparse_storage::StorageError::Backpressure) and
//!   [`ReadOnly`](artsparse_storage::StorageError::ReadOnly) rejections
//!   surface as `ERR BACKPRESSURE` / `ERR READONLY` responses clients
//!   can back off on — never as dropped connections.
//!
//! # Example: embed a server and round-trip a point over TCP
//!
//! ```
//! use artsparse_server::{MemFactory, Server, ServerConfig};
//! use std::io::{BufRead, BufReader, Write};
//!
//! let config = ServerConfig {
//!     tcp: Some("127.0.0.1:0".into()), // ephemeral port
//!     shards: 2,
//!     ..ServerConfig::default()
//! };
//! let mut handle = Server::start(config, MemFactory).unwrap();
//!
//! let stream = std::net::TcpStream::connect(handle.tcp_addr().unwrap()).unwrap();
//! let mut reader = BufReader::new(stream.try_clone().unwrap());
//! let mut writer = stream;
//! let mut greeting = String::new();
//! reader.read_line(&mut greeting).unwrap();
//! assert!(greeting.starts_with("OK artsparse/1 ready"));
//!
//! writer
//!     .write_all(b"HELLO demo\nCREATE grid 8x8\nPUT grid 1\n3 4 2.5\nGET grid 3 4\n")
//!     .unwrap();
//! let mut lines = reader.lines().map(|l| l.unwrap());
//! assert_eq!(lines.next().unwrap(), "OK tenant=demo proto=artsparse/1");
//! assert_eq!(lines.next().unwrap(), "OK created=grid existed=false");
//! assert!(lines.next().unwrap().starts_with("OK acked=1 fragment="));
//! assert_eq!(lines.next().unwrap(), "OK found=true value=2.5");
//!
//! handle.shutdown();
//! ```
//!
//! # Example: quotas refuse whole batches, typed and refundable
//!
//! ```
//! use artsparse_server::quota::{Quota, QuotaBook, QuotaExceeded};
//!
//! let book = QuotaBook::new(Quota { max_points: 10, max_bytes: 80 });
//! assert!(book.charge("tenant", 10, 80).is_ok());
//! // The next batch would cross the cap: refused whole, nothing charged.
//! assert!(matches!(
//!     book.charge("tenant", 1, 8),
//!     Err(QuotaExceeded::Points { used: 10, limit: 10 })
//! ));
//! // A write the engine later rejects is refunded.
//! book.refund("tenant", 10, 80);
//! assert_eq!(book.standing("tenant").points, 0);
//! ```

mod metrics;
pub mod protocol;
pub mod quota;
mod server;
mod session;
mod shard;

pub use server::{
    BackendFactory, DrainReport, FsFactory, MemFactory, Server, ServerConfig, ServerHandle,
};
