//! Server-side metrics: one [`MetricsRegistry`] for the whole process,
//! a trace-correlated [`Journal`] of session/shutdown events, and a
//! log₂ command-latency histogram.
//!
//! All series carry the `artsparse_server_` prefix so they compose with
//! the per-engine `artsparse_*` series in one Prometheus scrape. The
//! `METRICS` protocol command and the on-disk publisher both render
//! through [`ServerMetrics::render`], so the wire and the
//! `metrics.prom` file never disagree about a sample.

use crate::quota::QuotaBook;
use artsparse_metrics::{
    exposition, now_ns, Counter, Gauge, Histogram, Journal, JournalEvent, MetricsRegistry, Severity,
};
use parking_lot::Mutex;

/// Metric-safe rendering of a tenant name: the wire charset allows `-`,
/// Prometheus metric names do not.
pub fn sanitize_tenant(tenant: &str) -> String {
    tenant.replace('-', "_")
}

/// The server's metrics plane. Shared by sessions, listeners, and the
/// publisher thread.
#[derive(Debug)]
pub struct ServerMetrics {
    registry: MetricsRegistry,
    /// Session open/close, quota refusals, and shutdown milestones.
    pub journal: Journal,
    latency: Mutex<Histogram>,
    /// Sessions currently connected.
    pub sessions_open: Gauge,
    /// Sessions accepted since start.
    pub sessions_total: Counter,
    /// Commands served (OK and ERR alike).
    pub commands_total: Counter,
    /// Commands answered with an `ERR` line.
    pub protocol_errors_total: Counter,
    /// `ERR BACKPRESSURE` / `ERR READONLY` responses — the engine's
    /// load-shedding surfaced on the wire.
    pub backpressure_errors_total: Counter,
    /// `ERR QUOTA` responses.
    pub quota_rejections_total: Counter,
    /// Request bytes read from sockets.
    pub bytes_in_total: Counter,
    /// Response bytes written to sockets.
    pub bytes_out_total: Counter,
    /// Configured shard count.
    pub shards: Gauge,
    /// Datasets currently open across all shards.
    pub datasets: Gauge,
}

impl ServerMetrics {
    /// A fresh plane retaining `journal_capacity` events.
    pub fn new(journal_capacity: usize) -> ServerMetrics {
        let registry = MetricsRegistry::new();
        let sessions_open = registry.gauge(
            "artsparse_server_sessions_open",
            "Sessions currently connected.",
        );
        let sessions_total = registry.counter(
            "artsparse_server_sessions_total",
            "Sessions accepted since the server started.",
        );
        let commands_total = registry.counter(
            "artsparse_server_commands_total",
            "Protocol commands served (OK and ERR alike).",
        );
        let protocol_errors_total = registry.counter(
            "artsparse_server_protocol_errors_total",
            "Commands answered with an ERR line.",
        );
        let backpressure_errors_total = registry.counter(
            "artsparse_server_backpressure_errors_total",
            "ERR BACKPRESSURE and ERR READONLY responses (typed load shedding).",
        );
        let quota_rejections_total = registry.counter(
            "artsparse_server_quota_rejections_total",
            "Writes refused because a tenant quota was exhausted.",
        );
        let bytes_in_total = registry.counter(
            "artsparse_server_bytes_in_total",
            "Request bytes read from client sockets.",
        );
        let bytes_out_total = registry.counter(
            "artsparse_server_bytes_out_total",
            "Response bytes written to client sockets.",
        );
        let shards = registry.gauge("artsparse_server_shards", "Configured shard worker count.");
        let datasets = registry.gauge(
            "artsparse_server_datasets",
            "Datasets currently open across all shards.",
        );
        ServerMetrics {
            registry,
            journal: Journal::new(journal_capacity.max(1)),
            latency: Mutex::new(Histogram::new()),
            sessions_open,
            sessions_total,
            commands_total,
            protocol_errors_total,
            backpressure_errors_total,
            quota_rejections_total,
            bytes_in_total,
            bytes_out_total,
            shards,
            datasets,
        }
    }

    /// Record one served command's wall-clock latency.
    pub fn record_latency(&self, dur_ns: u64) {
        self.latency.lock().record(dur_ns);
    }

    /// Journal a session lifecycle event.
    pub fn journal_session(&self, code: &'static str, message: String, trace_id: u64) {
        self.journal.record(JournalEvent {
            at_ns: now_ns(),
            severity: Severity::Info,
            code,
            message,
            trace_id,
            span: Some("server.session"),
            dur_ns: None,
        });
    }

    /// Journal a warning (quota refusal, drain error, stuck listener).
    pub fn journal_warn(&self, code: &'static str, message: String, trace_id: u64) {
        self.journal.record(JournalEvent {
            at_ns: now_ns(),
            severity: Severity::Warn,
            code,
            message,
            trace_id,
            span: Some("server.session"),
            dur_ns: None,
        });
    }

    /// Refresh derived series (per-tenant quota gauges, the latency
    /// histogram) and render the full Prometheus exposition.
    pub fn render(&self, quotas: &QuotaBook) -> String {
        exposition::render(&self.snapshot(quotas))
    }

    /// Refresh derived series and take one registry snapshot. The
    /// publisher uses this single snapshot for both `metrics.prom` and
    /// the `metrics.jsonl` series so their delta baselines agree.
    pub fn snapshot(&self, quotas: &QuotaBook) -> artsparse_metrics::RegistrySnapshot {
        for (tenant, standing) in quotas.standings() {
            let t = sanitize_tenant(&tenant);
            self.registry
                .gauge(
                    &format!("artsparse_server_tenant_points_used_{t}"),
                    "Points currently charged against this tenant's quota.",
                )
                .set(standing.points as f64);
            self.registry
                .gauge(
                    &format!("artsparse_server_tenant_bytes_used_{t}"),
                    "Value bytes currently charged against this tenant's quota.",
                )
                .set(standing.bytes as f64);
            self.registry
                .gauge(
                    &format!("artsparse_server_tenant_points_limit_{t}"),
                    "This tenant's point cap (0 = unlimited).",
                )
                .set(standing.quota.max_points as f64);
            self.registry
                .gauge(
                    &format!("artsparse_server_tenant_bytes_limit_{t}"),
                    "This tenant's byte cap (0 = unlimited).",
                )
                .set(standing.quota.max_bytes as f64);
        }
        self.registry.set_histogram(
            "artsparse_server_command_latency_ns",
            "Wall-clock latency of served protocol commands.",
            self.latency.lock().clone(),
        );
        self.registry.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quota::Quota;

    #[test]
    fn render_is_parseable_and_carries_tenant_gauges() {
        let m = ServerMetrics::new(16);
        m.sessions_total.inc();
        m.commands_total.add(3);
        m.record_latency(1500);
        let quotas = QuotaBook::new(Quota {
            max_points: 100,
            max_bytes: 800,
        });
        quotas.charge("tenant-a", 5, 40).unwrap();
        let text = m.render(&quotas);
        let parsed = exposition::parse(&text).expect("strict parse");
        assert!(!parsed.samples.is_empty());
        assert_eq!(parsed.value("artsparse_server_sessions_total"), Some(1.0));
        assert!(text.contains("artsparse_server_commands_total 3"));
        assert!(
            text.contains("artsparse_server_tenant_points_used_tenant_a 5"),
            "hyphenated tenant must sanitize into the metric name:\n{text}"
        );
        assert!(text.contains("artsparse_server_command_latency_ns"));
    }

    #[test]
    fn journal_events_flow_through_drain() {
        let m = ServerMetrics::new(4);
        m.journal_session("session_open", "peer tcp:1".into(), 7);
        m.journal_warn("quota_refused", "tenant t".into(), 7);
        let events = m.journal.drain_new();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].code, "session_open");
        assert_eq!(events[1].severity, Severity::Warn);
        assert!(m.journal.drain_new().is_empty());
    }
}
