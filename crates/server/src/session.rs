//! Per-connection session loop.
//!
//! A session is one thread driving one client socket (TCP or Unix): it
//! reads request lines, routes them to the owning shard by hashed
//! dataset key, and writes exactly one status line (plus any announced
//! payload) per request. The loop is transport-agnostic — it runs over
//! any `BufRead`/`Write` pair — which keeps it unit-testable without
//! sockets and identical across listeners.
//!
//! Load shedding is typed, never silent: engine rejections
//! ([`artsparse_storage::StorageError::Backpressure`], `ReadOnly`),
//! quota refusals, and oversized requests all come back as `ERR` lines
//! the client can parse and back off on. The connection is only closed
//! by `QUIT`, EOF, an I/O failure, or server drain.

use crate::metrics::ServerMetrics;
use crate::protocol::{self, ErrorCode, Request, PROTOCOL_VERSION};
use crate::quota::QuotaBook;
use crate::shard::{shard_of, DatasetStats, ShardCmd, ShardReply};
use artsparse_storage::HealthState;
use std::io::{self, BufRead, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::Arc;
use std::time::Instant;

/// Per-session request size bounds.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Largest accepted `PUT`/`INGEST` batch, in points.
    pub max_batch_points: usize,
    /// Largest region a `SCAN` may visit, in cells — also the row cap
    /// on its response.
    pub scan_limit: usize,
    /// Whether the `SHUTDOWN` command is honored.
    pub allow_shutdown: bool,
}

/// Everything one session thread owns. Shard senders are cloned per
/// session because `mpsc::Sender` is `Send` but not `Sync`.
pub struct SessionCtx {
    /// Command channels, indexed by shard.
    pub shards: Vec<Sender<ShardCmd>>,
    /// The server-wide quota ledger.
    pub quotas: QuotaBook,
    /// The server-wide metrics plane.
    pub metrics: Arc<ServerMetrics>,
    /// Set when the server is draining.
    pub stop: Arc<AtomicBool>,
    /// Notified (once) when this session executes `SHUTDOWN`.
    pub shutdown: Sender<()>,
    /// Request size bounds.
    pub limits: Limits,
    /// Peer description for the journal (`tcp:127.0.0.1:5123`, `unix`).
    pub peer: String,
    /// Session ordinal, used as the journal trace id.
    pub session_id: u64,
}

/// What a fully-read request line turned into.
enum ReadOutcome {
    /// A complete line (trailing newline stripped).
    Line(String),
    /// The peer closed its write side.
    Eof,
    /// The server is draining and the peer is idle.
    Stopped,
}

/// Read one line, tolerating read-timeout errors so the loop can poll
/// the drain flag. Timed-out partial reads stay in `buf` and complete
/// on a later pass.
fn read_line_patient<R: BufRead>(reader: &mut R, stop: &AtomicBool) -> io::Result<ReadOutcome> {
    let mut buf = String::new();
    loop {
        match reader.read_line(&mut buf) {
            Ok(0) => {
                let trimmed = buf.trim_end_matches(['\n', '\r']);
                return Ok(if trimmed.is_empty() {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Line(trimmed.to_string())
                });
            }
            Ok(_) => {
                if buf.ends_with('\n') {
                    return Ok(ReadOutcome::Line(
                        buf.trim_end_matches(['\n', '\r']).to_string(),
                    ));
                }
                // No newline yet: only possible right before EOF or
                // after a timeout left a partial line; keep reading.
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                if stop.load(Ordering::SeqCst) {
                    return Ok(ReadOutcome::Stopped);
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Run one session to completion. Consumes the context; returns when
/// the peer disconnects, `QUIT`s, errors, or the server drains.
pub fn run_session<R: BufRead, W: Write>(ctx: SessionCtx, mut reader: R, mut writer: W) {
    let mut session = Session { ctx, tenant: None };
    session.ctx.metrics.sessions_total.inc();
    session
        .ctx
        .metrics
        .sessions_open
        .set(session.ctx.metrics.sessions_open.get() + 1.0);
    session.ctx.metrics.journal_session(
        "session_open",
        format!("peer {} connected", session.ctx.peer),
        session.ctx.session_id,
    );

    let greeting = format!(
        "OK {} ready shards={}",
        PROTOCOL_VERSION,
        session.ctx.shards.len()
    );
    let outcome = if session.respond(&mut writer, &[greeting]).is_err() {
        Ok(())
    } else {
        session.serve(&mut reader, &mut writer)
    };

    session
        .ctx
        .metrics
        .sessions_open
        .set((session.ctx.metrics.sessions_open.get() - 1.0).max(0.0));
    let how = match outcome {
        Ok(()) => "closed".to_string(),
        Err(e) => format!("failed: {e}"),
    };
    session.ctx.metrics.journal_session(
        "session_close",
        format!("peer {} {how}", session.ctx.peer),
        session.ctx.session_id,
    );
}

struct Session {
    ctx: SessionCtx,
    tenant: Option<String>,
}

impl Session {
    fn serve<R: BufRead, W: Write>(&mut self, reader: &mut R, writer: &mut W) -> io::Result<()> {
        loop {
            let line = match read_line_patient(reader, &self.ctx.stop)? {
                ReadOutcome::Line(l) => l,
                ReadOutcome::Eof | ReadOutcome::Stopped => return Ok(()),
            };
            self.ctx.metrics.bytes_in_total.add(line.len() as u64 + 1);
            let Some(request) = protocol::parse_request(&line) else {
                continue; // blank line
            };
            let started = Instant::now();
            let (response, close) = self.handle(reader, &request)?;
            self.ctx.metrics.commands_total.inc();
            self.ctx
                .metrics
                .record_latency(started.elapsed().as_nanos() as u64);
            self.respond(writer, &response)?;
            if close {
                return Ok(());
            }
        }
    }

    /// Write a response (status line + payload), counting bytes and
    /// classifying `ERR` lines into the error counters.
    fn respond<W: Write>(&self, writer: &mut W, lines: &[String]) -> io::Result<()> {
        if let Some(first) = lines.first() {
            if first.starts_with("ERR ") {
                self.ctx.metrics.protocol_errors_total.inc();
                if first.starts_with("ERR BACKPRESSURE") || first.starts_with("ERR READONLY") {
                    self.ctx.metrics.backpressure_errors_total.inc();
                }
                if first.starts_with("ERR QUOTA") {
                    self.ctx.metrics.quota_rejections_total.inc();
                }
            }
        }
        let mut out = String::new();
        for l in lines {
            out.push_str(l);
            out.push('\n');
        }
        self.ctx.metrics.bytes_out_total.add(out.len() as u64);
        writer.write_all(out.as_bytes())?;
        writer.flush()
    }

    /// Execute one request. Returns the response lines and whether the
    /// session should close afterwards.
    fn handle<R: BufRead>(
        &mut self,
        reader: &mut R,
        request: &Request,
    ) -> io::Result<(Vec<String>, bool)> {
        let cmd = request.command.as_str();
        if self.ctx.stop.load(Ordering::SeqCst) && cmd != "QUIT" {
            return Ok((
                vec![protocol::err_line(
                    ErrorCode::ShuttingDown,
                    "server is draining; no new work is accepted",
                )],
                false,
            ));
        }
        let args = &request.args;
        let response = match cmd {
            "HELLO" => self.cmd_hello(args),
            "PING" => vec!["OK pong".to_string()],
            "QUIT" => return Ok((vec!["OK bye".to_string()], true)),
            "SHUTDOWN" => self.cmd_shutdown(args),
            "METRICS" => self.cmd_metrics(args),
            "CREATE" => self.with_tenant(|s, t| s.cmd_create(&t, args)),
            "PUT" | "INGEST" => {
                let ingest = cmd == "INGEST";
                // Data lines must be consumed even on refusal, so this
                // arm threads the reader through.
                return Ok((self.cmd_write(reader, ingest, args)?, false));
            }
            "GET" => self.with_tenant(|s, t| s.cmd_get(&t, args)),
            "SCAN" => self.with_tenant(|s, t| s.cmd_scan(&t, args)),
            "FLUSH" => self.with_tenant(|s, t| s.cmd_flush(&t, args)),
            "CONSOLIDATE" => self.with_tenant(|s, t| s.cmd_consolidate(&t, args)),
            "STATS" => self.with_tenant(|s, t| s.cmd_stats(&t, args)),
            _ => vec![protocol::err_line(
                ErrorCode::BadCmd,
                &format!("unknown command {cmd:?}; commands: {}", command_names()),
            )],
        };
        Ok((response, false))
    }

    /// Run `f` with the bound tenant, or refuse with `NO_TENANT`.
    fn with_tenant(&mut self, f: impl FnOnce(&mut Session, String) -> Vec<String>) -> Vec<String> {
        match self.tenant.clone() {
            Some(t) => f(self, t),
            None => vec![protocol::err_line(
                ErrorCode::NoTenant,
                "bind a tenant first: HELLO <tenant>",
            )],
        }
    }

    fn cmd_hello(&mut self, args: &[String]) -> Vec<String> {
        if args.is_empty() || args.len() > 2 {
            return vec![protocol::err_line(
                ErrorCode::BadArg,
                "usage: HELLO <tenant> [artsparse/<version>]",
            )];
        }
        if !protocol::valid_name(&args[0]) {
            return vec![protocol::err_line(
                ErrorCode::BadArg,
                "tenant must match [A-Za-z0-9_-]{1,64}",
            )];
        }
        if let Some(version) = args.get(1) {
            if version != PROTOCOL_VERSION {
                return vec![protocol::err_line(
                    ErrorCode::Unsupported,
                    &format!("this server speaks {PROTOCOL_VERSION}, not {version}"),
                )];
            }
        }
        self.tenant = Some(args[0].clone());
        vec![format!("OK tenant={} proto={}", args[0], PROTOCOL_VERSION)]
    }

    fn cmd_shutdown(&mut self, args: &[String]) -> Vec<String> {
        if !args.is_empty() {
            return vec![protocol::err_line(ErrorCode::BadArg, "usage: SHUTDOWN")];
        }
        if !self.ctx.limits.allow_shutdown {
            return vec![protocol::err_line(
                ErrorCode::Unsupported,
                "SHUTDOWN is disabled on this server",
            )];
        }
        self.ctx.metrics.journal_session(
            "shutdown_requested",
            format!("peer {} requested drain", self.ctx.peer),
            self.ctx.session_id,
        );
        self.ctx.stop.store(true, Ordering::SeqCst);
        let _ = self.ctx.shutdown.send(());
        vec!["OK draining".to_string()]
    }

    fn cmd_metrics(&mut self, args: &[String]) -> Vec<String> {
        if !args.is_empty() {
            return vec![protocol::err_line(ErrorCode::BadArg, "usage: METRICS")];
        }
        // Refresh the dataset gauge from the shards' own books.
        if let Ok(stats) = self.broadcast_stats(None, None) {
            self.ctx.metrics.datasets.set(stats.len() as f64);
        }
        let text = self.ctx.metrics.render(&self.ctx.quotas);
        let mut lines = vec![format!("OK lines={}", text.lines().count())];
        lines.extend(text.lines().map(str::to_string));
        lines
    }

    fn cmd_create(&mut self, tenant: &str, args: &[String]) -> Vec<String> {
        if args.len() != 2 {
            return vec![protocol::err_line(
                ErrorCode::BadArg,
                "usage: CREATE <dataset> <d0>x<d1>[x<d2>...]",
            )];
        }
        if !protocol::valid_name(&args[0]) {
            return vec![protocol::err_line(
                ErrorCode::BadArg,
                "dataset must match [A-Za-z0-9_-]{1,64}",
            )];
        }
        let dims = match protocol::parse_shape(&args[1]) {
            Ok(d) => d,
            Err(e) => return vec![protocol::err_line(ErrorCode::BadArg, &e)],
        };
        let reply = self.dispatch(tenant, &args[0], |key, reply| ShardCmd::Create {
            key,
            dims: dims.clone(),
            reply,
        });
        match reply {
            Ok(ShardReply::Created { existed }) => {
                vec![format!("OK created={} existed={existed}", args[0])]
            }
            Ok(ShardReply::ShapeConflict { existing }) => vec![protocol::err_line(
                ErrorCode::Exists,
                &format!("dataset exists with shape {}", render_dims(&existing)),
            )],
            other => self.unexpected(other),
        }
    }

    /// `PUT`/`INGEST`: read the announced data lines (always, so the
    /// stream stays in lock-step even on refusal), then charge quota
    /// and dispatch.
    fn cmd_write<R: BufRead>(
        &mut self,
        reader: &mut R,
        ingest: bool,
        args: &[String],
    ) -> io::Result<Vec<String>> {
        let usage = if ingest {
            "usage: INGEST <dataset> <n>"
        } else {
            "usage: PUT <dataset> <n>"
        };
        let announced = args.get(1).and_then(|n| n.parse::<usize>().ok());
        let valid =
            args.len() == 2 && protocol::valid_name(&args[0]) && announced.is_some_and(|n| n > 0);
        let (dataset, n) = if valid {
            (&args[0], announced.unwrap_or(0))
        } else {
            // Consume any announced data lines so the stream stays in
            // lock-step before refusing.
            if let Some(n) = announced {
                self.discard_lines(reader, n)?;
            }
            return Ok(vec![protocol::err_line(ErrorCode::BadArg, usage)]);
        };
        let Some(tenant) = self.tenant.clone() else {
            // Still consume the batch so the next line parses as a command.
            self.discard_lines(reader, n)?;
            return Ok(vec![protocol::err_line(
                ErrorCode::NoTenant,
                "bind a tenant first: HELLO <tenant>",
            )]);
        };
        if n > self.ctx.limits.max_batch_points {
            self.discard_lines(reader, n)?;
            return Ok(vec![protocol::err_line(
                ErrorCode::TooBig,
                &format!(
                    "batch of {n} points exceeds the server cap of {}",
                    self.ctx.limits.max_batch_points
                ),
            )]);
        }

        // Read and parse the batch. All n lines are consumed even when
        // one is malformed; the first error wins.
        let mut ndim = 0usize;
        let mut flat: Vec<u64> = Vec::new();
        let mut values: Vec<f64> = Vec::with_capacity(n);
        let mut parse_error: Option<String> = None;
        for i in 0..n {
            let line = match read_line_patient(reader, &self.ctx.stop)? {
                ReadOutcome::Line(l) => l,
                ReadOutcome::Eof | ReadOutcome::Stopped => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        format!("peer sent {i} of {n} data lines"),
                    ));
                }
            };
            self.ctx.metrics.bytes_in_total.add(line.len() as u64 + 1);
            if parse_error.is_some() {
                continue;
            }
            match protocol::parse_point(&line) {
                Ok((coords, value)) => {
                    if ndim == 0 {
                        ndim = coords.len();
                    }
                    if coords.len() != ndim {
                        parse_error = Some(format!(
                            "data line {} has {} coordinates, line 1 had {ndim}",
                            i + 1,
                            coords.len()
                        ));
                        continue;
                    }
                    flat.extend_from_slice(&coords);
                    values.push(value);
                }
                Err(e) => parse_error = Some(format!("data line {}: {e}", i + 1)),
            }
        }
        if let Some(e) = parse_error {
            return Ok(vec![protocol::err_line(ErrorCode::BadArg, &e)]);
        }

        // Charge the quota before dispatch; refund if the engine refuses.
        let bytes = (n as u64) * 8;
        if let Err(refusal) = self.ctx.quotas.charge(&tenant, n as u64, bytes) {
            self.ctx.metrics.journal_warn(
                "quota_refused",
                format!("tenant {tenant}: {refusal}"),
                self.ctx.session_id,
            );
            return Ok(vec![protocol::err_line(
                ErrorCode::Quota,
                &refusal.to_string(),
            )]);
        }
        let reply = self.dispatch(&tenant, dataset, |key, reply| ShardCmd::Write {
            key,
            ingest,
            ndim,
            flat: std::mem::take(&mut flat),
            values: std::mem::take(&mut values),
            reply,
        });
        Ok(match reply {
            Ok(ShardReply::Written { acked, fragment }) => match fragment {
                Some(f) => vec![format!("OK acked={acked} fragment={f}")],
                None => vec![format!("OK acked={acked}")],
            },
            Ok(ShardReply::NoDataset) => {
                self.ctx.quotas.refund(&tenant, n as u64, bytes);
                vec![no_dataset(dataset)]
            }
            Ok(ShardReply::Err(e)) => {
                self.ctx.quotas.refund(&tenant, n as u64, bytes);
                vec![protocol::storage_err_line(&e)]
            }
            other => {
                self.ctx.quotas.refund(&tenant, n as u64, bytes);
                self.unexpected(other)
            }
        })
    }

    /// Consume `n` data lines without parsing (refused batches).
    fn discard_lines<R: BufRead>(&self, reader: &mut R, n: usize) -> io::Result<()> {
        for i in 0..n {
            match read_line_patient(reader, &self.ctx.stop)? {
                ReadOutcome::Line(l) => {
                    self.ctx.metrics.bytes_in_total.add(l.len() as u64 + 1);
                }
                ReadOutcome::Eof | ReadOutcome::Stopped => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        format!("peer sent {i} of {n} data lines"),
                    ));
                }
            }
        }
        Ok(())
    }

    fn cmd_get(&mut self, tenant: &str, args: &[String]) -> Vec<String> {
        if args.len() < 2 || !protocol::valid_name(&args[0]) {
            return vec![protocol::err_line(
                ErrorCode::BadArg,
                "usage: GET <dataset> <c0> <c1> [<c2>...]",
            )];
        }
        let coord: Result<Vec<u64>, _> = args[1..].iter().map(|c| c.parse::<u64>()).collect();
        let Ok(coord) = coord else {
            return vec![protocol::err_line(
                ErrorCode::BadArg,
                "coordinates must be unsigned integers",
            )];
        };
        let reply = self.dispatch(tenant, &args[0], |key, reply| ShardCmd::Get {
            key,
            coord: coord.clone(),
            reply,
        });
        match reply {
            Ok(ShardReply::Point { value: Some(v) }) => {
                vec![format!("OK found=true value={}", protocol::format_value(v))]
            }
            Ok(ShardReply::Point { value: None }) => vec!["OK found=false".to_string()],
            Ok(ShardReply::NoDataset) => vec![no_dataset(&args[0])],
            other => self.shard_error(other),
        }
    }

    fn cmd_scan(&mut self, tenant: &str, args: &[String]) -> Vec<String> {
        let usage = "usage: SCAN <dataset> <lo0:hi0> [<lo1:hi1>...] [LIMIT <n>]";
        if args.len() < 2 || !protocol::valid_name(&args[0]) {
            return vec![protocol::err_line(ErrorCode::BadArg, usage)];
        }
        let mut bounds_end = args.len();
        let mut limit = self.ctx.limits.scan_limit;
        // Minimum form with a limit: dataset, one bound, LIMIT, n.
        if args.len() >= 4 && args[args.len() - 2].eq_ignore_ascii_case("LIMIT") {
            let Some(requested) = args[args.len() - 1].parse::<usize>().ok() else {
                return vec![protocol::err_line(ErrorCode::BadArg, usage)];
            };
            limit = requested.min(self.ctx.limits.scan_limit);
            bounds_end = args.len() - 2;
        }
        if bounds_end < 2 {
            return vec![protocol::err_line(ErrorCode::BadArg, usage)];
        }
        let mut lo = Vec::new();
        let mut hi = Vec::new();
        let mut cells: u128 = 1;
        for token in &args[1..bounds_end] {
            match protocol::parse_bound(token) {
                Ok((l, h)) => {
                    cells = cells.saturating_mul(u128::from(h - l) + 1);
                    lo.push(l);
                    hi.push(h);
                }
                Err(e) => return vec![protocol::err_line(ErrorCode::BadArg, &e)],
            }
        }
        if cells > self.ctx.limits.scan_limit as u128 {
            return vec![protocol::err_line(
                ErrorCode::TooBig,
                &format!(
                    "region of {cells} cells exceeds the scan cap of {}",
                    self.ctx.limits.scan_limit
                ),
            )];
        }
        let reply = self.dispatch(tenant, &args[0], |key, reply| ShardCmd::Scan {
            key,
            lo: lo.clone(),
            hi: hi.clone(),
            limit,
            reply,
        });
        match reply {
            Ok(ShardReply::Points { rows, truncated }) => {
                let mut lines = vec![format!("OK points={} truncated={truncated}", rows.len())];
                for (coord, value) in &rows {
                    lines.push(protocol::render_point(coord, *value));
                }
                lines
            }
            Ok(ShardReply::NoDataset) => vec![no_dataset(&args[0])],
            other => self.shard_error(other),
        }
    }

    fn cmd_flush(&mut self, tenant: &str, args: &[String]) -> Vec<String> {
        if args.len() != 1 || !protocol::valid_name(&args[0]) {
            return vec![protocol::err_line(
                ErrorCode::BadArg,
                "usage: FLUSH <dataset>",
            )];
        }
        let reply = self.dispatch(tenant, &args[0], |key, reply| ShardCmd::Flush {
            key,
            reply,
        });
        match reply {
            Ok(ShardReply::Flushed { fragment }) => {
                vec![format!(
                    "OK flushed fragment={}",
                    fragment.as_deref().unwrap_or("none")
                )]
            }
            Ok(ShardReply::NoDataset) => vec![no_dataset(&args[0])],
            other => self.shard_error(other),
        }
    }

    fn cmd_consolidate(&mut self, tenant: &str, args: &[String]) -> Vec<String> {
        if args.len() != 1 || !protocol::valid_name(&args[0]) {
            return vec![protocol::err_line(
                ErrorCode::BadArg,
                "usage: CONSOLIDATE <dataset>",
            )];
        }
        let reply = self.dispatch(tenant, &args[0], |key, reply| ShardCmd::Consolidate {
            key,
            reply,
        });
        match reply {
            Ok(ShardReply::Consolidated { merged, points }) => {
                vec![format!("OK merged={merged} points={points}")]
            }
            Ok(ShardReply::NoDataset) => vec![no_dataset(&args[0])],
            other => self.shard_error(other),
        }
    }

    fn cmd_stats(&mut self, tenant: &str, args: &[String]) -> Vec<String> {
        if args.len() > 1 {
            return vec![protocol::err_line(
                ErrorCode::BadArg,
                "usage: STATS [<dataset>]",
            )];
        }
        let key = match args.first() {
            Some(d) if !protocol::valid_name(d) => {
                return vec![protocol::err_line(
                    ErrorCode::BadArg,
                    "dataset must match [A-Za-z0-9_-]{1,64}",
                )];
            }
            Some(d) => Some(format!("{tenant}/{d}")),
            None => None,
        };
        let only_one = key.is_some();
        let stats = match self.broadcast_stats(Some(tenant), key) {
            Ok(s) => s,
            Err(lines) => return lines,
        };
        if only_one && stats.is_empty() {
            return vec![no_dataset(&args[0])];
        }
        let standing = self.ctx.quotas.standing(tenant);
        let mut payload = vec![format!(
            "tenant={tenant} points={} point_limit={} bytes={} byte_limit={}",
            standing.points, standing.quota.max_points, standing.bytes, standing.quota.max_bytes
        )];
        for s in &stats {
            payload.push(render_dataset_stats(tenant, s));
        }
        let mut lines = vec![format!("OK lines={}", payload.len())];
        lines.extend(payload);
        lines
    }

    /// Send one command to the owning shard and wait for its reply.
    fn dispatch(
        &self,
        tenant: &str,
        dataset: &str,
        build: impl FnOnce(String, mpsc::Sender<ShardReply>) -> ShardCmd,
    ) -> Result<ShardReply, Vec<String>> {
        let idx = shard_of(tenant, dataset, self.ctx.shards.len());
        let key = format!("{tenant}/{dataset}");
        let (reply_tx, reply_rx) = mpsc::channel();
        let internal = || {
            vec![protocol::err_line(
                ErrorCode::Internal,
                &format!("shard {idx} is unavailable"),
            )]
        };
        self.ctx.shards[idx]
            .send(build(key, reply_tx))
            .map_err(|_| internal())?;
        reply_rx.recv().map_err(|_| internal())
    }

    /// Collect [`DatasetStats`] from every shard, merged and sorted.
    fn broadcast_stats(
        &self,
        tenant: Option<&str>,
        key: Option<String>,
    ) -> Result<Vec<DatasetStats>, Vec<String>> {
        let mut receivers = Vec::with_capacity(self.ctx.shards.len());
        for (idx, shard) in self.ctx.shards.iter().enumerate() {
            let (reply_tx, reply_rx) = mpsc::channel();
            shard
                .send(ShardCmd::Stats {
                    tenant: tenant.map(str::to_string),
                    key: key.clone(),
                    reply: reply_tx,
                })
                .map_err(|_| {
                    vec![protocol::err_line(
                        ErrorCode::Internal,
                        &format!("shard {idx} is unavailable"),
                    )]
                })?;
            receivers.push(reply_rx);
        }
        let mut merged = Vec::new();
        for (idx, rx) in receivers.into_iter().enumerate() {
            match rx.recv() {
                Ok(ShardReply::Stats(rows)) => merged.extend(rows),
                Ok(ShardReply::NoDataset) => {}
                Ok(ShardReply::Err(e)) => return Err(vec![protocol::storage_err_line(&e)]),
                _ => {
                    return Err(vec![protocol::err_line(
                        ErrorCode::Internal,
                        &format!("shard {idx} sent an unexpected reply"),
                    )]);
                }
            }
        }
        merged.sort_by(|a, b| a.key.cmp(&b.key));
        Ok(merged)
    }

    /// Map a dispatch result that should have been handled already.
    fn shard_error(&self, reply: Result<ShardReply, Vec<String>>) -> Vec<String> {
        match reply {
            Ok(ShardReply::Err(e)) => vec![protocol::storage_err_line(&e)],
            Err(lines) => lines,
            Ok(other) => vec![protocol::err_line(
                ErrorCode::Internal,
                &format!("unexpected shard reply {other:?}"),
            )],
        }
    }

    fn unexpected(&self, reply: Result<ShardReply, Vec<String>>) -> Vec<String> {
        self.shard_error(reply)
    }
}

fn no_dataset(dataset: &str) -> String {
    protocol::err_line(
        ErrorCode::NoDataset,
        &format!("dataset {dataset:?} has not been created; use CREATE"),
    )
}

fn render_dims(dims: &[u64]) -> String {
    dims.iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("x")
}

fn health_str(h: HealthState) -> &'static str {
    match h {
        HealthState::Healthy => "healthy",
        HealthState::Degraded => "degraded",
        HealthState::ReadOnly => "read_only",
    }
}

fn render_dataset_stats(tenant: &str, s: &DatasetStats) -> String {
    let dataset = s.key.strip_prefix(&format!("{tenant}/")).unwrap_or(&s.key);
    format!(
        "dataset={dataset} shard={} shape={} fragments={} points={} bytes={} health={} \
         buffered_points={} buffered_bytes={} wal_backlog_bytes={} backpressure_rejections={}",
        s.shard,
        render_dims(&s.dims),
        s.fragments,
        s.points,
        s.bytes,
        health_str(s.health),
        s.buffered_points,
        s.buffered_bytes,
        s.wal_backlog_bytes,
        s.backpressure_rejections,
    )
}

fn command_names() -> String {
    protocol::COMMANDS
        .iter()
        .map(|c| c.name)
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quota::Quota;
    use crate::server::MemFactory;
    use crate::shard::spawn_shard;
    use artsparse_storage::EngineConfig;
    use std::io::Cursor;

    /// Drive a scripted session over in-memory I/O against real shards.
    fn run_script(script: &str, default_quota: Quota) -> String {
        let mut shards = Vec::new();
        let mut handles = Vec::new();
        for id in 0..2 {
            let (tx, rx) = mpsc::channel();
            handles.push(spawn_shard(
                id,
                Arc::new(MemFactory),
                EngineConfig::default(),
                None,
                rx,
            ));
            shards.push(tx);
        }
        let (shutdown_tx, _shutdown_rx) = mpsc::channel();
        let ctx = SessionCtx {
            shards: shards.clone(),
            quotas: QuotaBook::new(default_quota),
            metrics: Arc::new(ServerMetrics::new(64)),
            stop: Arc::new(AtomicBool::new(false)),
            shutdown: shutdown_tx,
            limits: Limits {
                max_batch_points: 1 << 20,
                scan_limit: 1 << 20,
                allow_shutdown: false,
            },
            peer: "test".into(),
            session_id: 1,
        };
        let mut out: Vec<u8> = Vec::new();
        run_session(ctx, Cursor::new(script.as_bytes().to_vec()), &mut out);
        drop(shards);
        for h in handles {
            h.join().unwrap();
        }
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn full_round_trip_over_in_memory_io() {
        let out = run_script(
            "HELLO acme artsparse/1\n\
             CREATE grid 8x8\n\
             PUT grid 2\n\
             1 2 1.5\n\
             3 4 -2.25\n\
             GET grid 3 4\n\
             GET grid 0 0\n\
             INGEST grid 1\n\
             5 5 9\n\
             FLUSH grid\n\
             SCAN grid 0:7 0:7\n\
             CONSOLIDATE grid\n\
             STATS grid\n\
             PING\n\
             QUIT\n",
            Quota::unlimited(),
        );
        let lines: Vec<&str> = out.lines().collect();
        assert!(
            lines[0].starts_with("OK artsparse/1 ready shards=2"),
            "{out}"
        );
        assert_eq!(lines[1], "OK tenant=acme proto=artsparse/1");
        assert_eq!(lines[2], "OK created=grid existed=false");
        assert!(lines[3].starts_with("OK acked=2 fragment="), "{out}");
        assert_eq!(lines[4], "OK found=true value=-2.25");
        assert_eq!(lines[5], "OK found=false");
        assert_eq!(lines[6], "OK acked=1");
        assert!(lines[7].starts_with("OK flushed fragment="), "{out}");
        assert!(!lines[7].ends_with("fragment=none"), "{out}");
        assert_eq!(lines[8], "OK points=3 truncated=false");
        // Payload rows are in linear-address order.
        assert_eq!(lines[9], "1 2 1.5");
        assert_eq!(lines[10], "3 4 -2.25");
        assert_eq!(lines[11], "5 5 9");
        assert_eq!(lines[12], "OK merged=2 points=3");
        assert_eq!(lines[13], "OK lines=2");
        assert!(lines[14].starts_with("tenant=acme points=3"), "{out}");
        assert!(
            lines[15].contains("dataset=grid") && lines[15].contains("health=healthy"),
            "{out}"
        );
        assert_eq!(lines[16], "OK pong");
        assert_eq!(lines[17], "OK bye");
    }

    #[test]
    fn refusals_are_typed_and_lockstep() {
        let out = run_script(
            "PUT grid 1\n\
             0 0 1.0\n\
             HELLO acme\n\
             PUT nope 1\n\
             0 0 1.0\n\
             CREATE grid 4x4\n\
             CREATE grid 8x8\n\
             PUT grid 2\n\
             0 0 1.0\n\
             1 1 1 9.0\n\
             PUT grid 9\n\
             0 0 1.0\n\
             0 1 1.0\n\
             0 2 1.0\n\
             0 3 1.0\n\
             1 0 1.0\n\
             1 1 1.0\n\
             1 2 1.0\n\
             1 3 1.0\n\
             2 0 1.0\n\
             GET grid 1 1\n\
             WHAT\n\
             SCAN grid 0:3\n",
            Quota {
                max_points: 8,
                max_bytes: 0,
            },
        );
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[1].starts_with("ERR NO_TENANT"), "{out}");
        assert_eq!(lines[2], "OK tenant=acme proto=artsparse/1");
        assert!(lines[3].starts_with("ERR NO_DATASET"), "{out}");
        assert_eq!(lines[4], "OK created=grid existed=false");
        assert!(
            lines[5].starts_with("ERR EXISTS") && lines[5].contains("4x4"),
            "{out}"
        );
        assert!(
            lines[6].starts_with("ERR BADARG") && lines[6].contains("line 2"),
            "mixed arity must refuse: {out}"
        );
        assert!(
            lines[7].starts_with("ERR QUOTA") && lines[7].contains("point quota exhausted"),
            "{out}"
        );
        // The failed batches charged nothing, so this read still works
        // and sees no data (the mixed-arity batch was refused whole).
        assert_eq!(lines[8], "OK found=false");
        assert!(lines[9].starts_with("ERR BADCMD"), "{out}");
        // SCAN arity mismatch against the 2-D shape maps to MISMATCH.
        assert!(lines[10].starts_with("ERR MISMATCH"), "{out}");
    }

    #[test]
    fn scan_caps_and_limits_apply() {
        let out = run_script(
            "HELLO t\n\
             CREATE big 1000x1000x1000\n\
             SCAN big 0:999 0:999 0:999\n\
             PUT big 3\n\
             0 0 0 1.0\n\
             0 0 1 2.0\n\
             0 0 2 3.0\n\
             SCAN big 0:0 0:0 0:9 LIMIT 2\n\
             QUIT\n",
            Quota::unlimited(),
        );
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[3].starts_with("ERR TOOBIG"), "{out}");
        assert!(lines[4].starts_with("OK acked=3"), "{out}");
        assert_eq!(lines[5], "OK points=2 truncated=true");
        assert_eq!(lines[6], "0 0 0 1");
        assert_eq!(lines[7], "0 0 1 2");
        assert_eq!(lines[8], "OK bye");
    }

    #[test]
    fn metrics_command_needs_no_tenant_and_renders_exposition() {
        let out = run_script("METRICS\nQUIT\n", Quota::unlimited());
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[1].starts_with("OK lines="), "{out}");
        let n: usize = lines[1].trim_start_matches("OK lines=").parse().unwrap();
        assert!(n > 0);
        let body = lines[2..2 + n].join("\n");
        assert!(
            body.contains("artsparse_server_commands_total"),
            "exposition must carry server series: {body}"
        );
        assert_eq!(lines[2 + n], "OK bye");
    }
}
