//! The server: shard workers, socket listeners, session threads, the
//! quota book, and the metrics publisher, assembled behind one handle.
//!
//! Topology: `N` shard threads own every [`artsparse_storage::StorageEngine`]
//! (datasets hash onto shards by tenant-qualified name); one accept
//! thread per listener (TCP, Unix) turns connections into session
//! threads; an optional publisher thread mirrors the server's metrics
//! into an exporter-compatible directory (`metrics.prom`,
//! `metrics.jsonl`, `journal.jsonl`) so `artsparse-bench watch` works
//! on a live server unchanged.
//!
//! Shutdown ordering (see [`ServerHandle::shutdown`]): stop accepting →
//! join sessions → drain every shard through `StorageEngine::shutdown`
//! → join shard workers → final metrics publish. Acked ingest survives
//! because drain group-commits the write buffers before the process
//! lets go of the engines.

use crate::metrics::ServerMetrics;
use crate::quota::{Quota, QuotaBook};
use crate::session::{run_session, Limits, SessionCtx};
use crate::shard::{spawn_shard, ShardCmd, ShardReply};
use artsparse_storage::{
    EngineConfig, FsBackend, MemBackend, SchedulerConfig, StorageBackend, StorageError,
    JOURNAL_JSONL, METRICS_JSONL, METRICS_PROM,
};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Opens one storage backend per dataset. The key is the namespaced
/// dataset name (`tenant/dataset`), already validated against
/// `[A-Za-z0-9_-]{1,64}` per segment — safe to use as a relative path.
pub trait BackendFactory {
    /// The backend type every shard engine runs on.
    type Backend: StorageBackend + Send + Sync + 'static;
    /// Open (creating if needed) the backend for `key`.
    fn open(&self, key: &str) -> Result<Self::Backend, StorageError>;
}

/// Ephemeral in-memory datasets (tests, benchmarks, doctests).
#[derive(Debug, Default, Clone, Copy)]
pub struct MemFactory;

impl BackendFactory for MemFactory {
    type Backend = MemBackend;
    fn open(&self, _key: &str) -> Result<MemBackend, StorageError> {
        Ok(MemBackend::new())
    }
}

/// Durable datasets: one directory per dataset under `root`
/// (`<root>/<tenant>/<dataset>/`).
#[derive(Debug, Clone)]
pub struct FsFactory {
    root: PathBuf,
}

impl FsFactory {
    /// A factory rooted at `root` (created on first use).
    pub fn new(root: impl Into<PathBuf>) -> FsFactory {
        FsFactory { root: root.into() }
    }
}

impl BackendFactory for FsFactory {
    type Backend = FsBackend;
    fn open(&self, key: &str) -> Result<FsBackend, StorageError> {
        FsBackend::new(self.root.join(key))
    }
}

/// Server configuration. `Default` is a two-shard, TCP-less,
/// memory-quota-free server suitable for embedding in tests; binaries
/// set listeners explicitly.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Shard worker count (min 1). Datasets hash onto shards, so this
    /// is the write-path parallelism across datasets.
    pub shards: usize,
    /// TCP listen address (`"127.0.0.1:4141"`), if any. Port `0` binds
    /// an ephemeral port; read it back with [`ServerHandle::tcp_addr`].
    pub tcp: Option<String>,
    /// Unix socket path, if any. Removed on shutdown.
    pub unix: Option<PathBuf>,
    /// Template engine configuration applied to every dataset.
    pub engine: EngineConfig,
    /// Per-dataset background scheduler; `None` disables flush/compact
    /// scheduling (then only explicit `FLUSH` and threshold flushes run).
    pub scheduler: Option<SchedulerConfig>,
    /// Quota applied to tenants without an override (0 = unlimited).
    pub default_quota: Quota,
    /// Per-tenant quota overrides.
    pub tenant_quotas: Vec<(String, Quota)>,
    /// Directory for the exporter-compatible metrics mirror
    /// (`metrics.prom` / `metrics.jsonl` / `journal.jsonl`); `None`
    /// publishes nothing (the `METRICS` command still works).
    pub metrics_out: Option<PathBuf>,
    /// Publisher cadence in milliseconds.
    pub export_interval_ms: u64,
    /// Socket read timeout — the drain-flag polling cadence.
    pub session_read_timeout_ms: u64,
    /// Largest accepted `PUT`/`INGEST` batch, in points.
    pub max_batch_points: usize,
    /// Largest region a `SCAN` may visit (cells) and return (rows).
    pub scan_limit: usize,
    /// Whether the `SHUTDOWN` protocol command is honored.
    pub allow_shutdown: bool,
    /// Journal ring capacity.
    pub journal_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            shards: 2,
            tcp: None,
            unix: None,
            engine: EngineConfig::default(),
            scheduler: None,
            default_quota: Quota::unlimited(),
            tenant_quotas: Vec::new(),
            metrics_out: None,
            export_interval_ms: 500,
            session_read_timeout_ms: 250,
            max_batch_points: 1 << 20,
            scan_limit: 1 << 20,
            allow_shutdown: true,
            journal_capacity: 1024,
        }
    }
}

/// The server entry point; see [`Server::start`].
#[derive(Debug)]
pub struct Server;

impl Server {
    /// Start a server: spawn the shard workers, bind the configured
    /// listeners, and return the running server's [`ServerHandle`].
    ///
    /// The handle drains everything on [`ServerHandle::shutdown`] (or
    /// drop). Fails if a listener cannot bind.
    pub fn start<F>(config: ServerConfig, factory: F) -> Result<ServerHandle, StorageError>
    where
        F: BackendFactory + Send + Sync + 'static,
    {
        let n_shards = config.shards.max(1);
        let factory = Arc::new(factory);
        let mut shard_txs = Vec::with_capacity(n_shards);
        let mut shard_handles = Vec::with_capacity(n_shards);
        for id in 0..n_shards {
            let (tx, rx) = mpsc::channel();
            shard_handles.push(spawn_shard(
                id,
                Arc::clone(&factory),
                config.engine.clone(),
                config.scheduler,
                rx,
            ));
            shard_txs.push(tx);
        }

        let metrics = Arc::new(ServerMetrics::new(config.journal_capacity));
        metrics.shards.set(n_shards as f64);
        let quotas = QuotaBook::new(config.default_quota);
        for (tenant, quota) in &config.tenant_quotas {
            quotas.set_quota(tenant, *quota);
        }

        let stop = Arc::new(AtomicBool::new(false));
        let (shutdown_tx, shutdown_rx) = mpsc::channel();
        let session_handles: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let session_ids = Arc::new(AtomicU64::new(0));
        let limits = Limits {
            max_batch_points: config.max_batch_points,
            scan_limit: config.scan_limit,
            allow_shutdown: config.allow_shutdown,
        };
        let read_timeout = Duration::from_millis(config.session_read_timeout_ms.max(10));

        let mut accept_handles = Vec::new();
        let mut tcp_addr = None;
        if let Some(addr) = &config.tcp {
            let listener = TcpListener::bind(addr)?;
            tcp_addr = Some(listener.local_addr()?);
            listener.set_nonblocking(true)?;
            let loop_ctx = AcceptCtx {
                shards: shard_txs.clone(),
                quotas: quotas.clone(),
                metrics: Arc::clone(&metrics),
                stop: Arc::clone(&stop),
                shutdown: shutdown_tx.clone(),
                limits,
                read_timeout,
                sessions: Arc::clone(&session_handles),
                session_ids: Arc::clone(&session_ids),
            };
            accept_handles.push(
                std::thread::Builder::new()
                    .name("artsparse-accept-tcp".into())
                    .spawn(move || tcp_accept_loop(&listener, &loop_ctx))
                    .expect("spawning the TCP accept thread"),
            );
        }

        let mut unix_path = None;
        #[cfg(unix)]
        if let Some(path) = &config.unix {
            // A stale socket file from a dead process refuses the bind;
            // connecting distinguishes live servers from leftovers.
            if path.exists() && std::os::unix::net::UnixStream::connect(path).is_err() {
                let _ = std::fs::remove_file(path);
            }
            let listener = std::os::unix::net::UnixListener::bind(path)?;
            listener.set_nonblocking(true)?;
            unix_path = Some(path.clone());
            let loop_ctx = AcceptCtx {
                shards: shard_txs.clone(),
                quotas: quotas.clone(),
                metrics: Arc::clone(&metrics),
                stop: Arc::clone(&stop),
                shutdown: shutdown_tx.clone(),
                limits,
                read_timeout,
                sessions: Arc::clone(&session_handles),
                session_ids: Arc::clone(&session_ids),
            };
            accept_handles.push(
                std::thread::Builder::new()
                    .name("artsparse-accept-unix".into())
                    .spawn(move || unix_accept_loop(&listener, &loop_ctx))
                    .expect("spawning the Unix accept thread"),
            );
        }
        #[cfg(not(unix))]
        if config.unix.is_some() {
            return Err(StorageError::Mismatch {
                reason: "unix sockets are not available on this platform".into(),
            });
        }

        let publisher = match &config.metrics_out {
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                let dir = dir.clone();
                let metrics = Arc::clone(&metrics);
                let quotas = quotas.clone();
                let stop = Arc::clone(&stop);
                let interval = Duration::from_millis(config.export_interval_ms.max(10));
                Some(
                    std::thread::Builder::new()
                        .name("artsparse-publisher".into())
                        .spawn(move || loop {
                            let stopping = stop.load(Ordering::SeqCst);
                            let _ = publish_tick(&dir, &metrics, &quotas);
                            if stopping {
                                return;
                            }
                            std::thread::park_timeout(interval);
                        })
                        .expect("spawning the metrics publisher thread"),
                )
            }
            None => None,
        };

        Ok(ServerHandle {
            stop,
            shards: shard_txs,
            shard_handles,
            accept_handles,
            session_handles,
            publisher,
            tcp_addr,
            unix_path,
            shutdown_rx,
            _shutdown_tx: shutdown_tx,
            metrics,
            quotas,
            finished: false,
        })
    }
}

/// Everything an accept loop needs to mint sessions.
struct AcceptCtx {
    shards: Vec<Sender<ShardCmd>>,
    quotas: QuotaBook,
    metrics: Arc<ServerMetrics>,
    stop: Arc<AtomicBool>,
    shutdown: Sender<()>,
    limits: Limits,
    read_timeout: Duration,
    sessions: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    session_ids: Arc<AtomicU64>,
}

impl AcceptCtx {
    fn session_ctx(&self, peer: String) -> SessionCtx {
        SessionCtx {
            shards: self.shards.clone(),
            quotas: self.quotas.clone(),
            metrics: Arc::clone(&self.metrics),
            stop: Arc::clone(&self.stop),
            shutdown: self.shutdown.clone(),
            limits: self.limits,
            peer,
            session_id: self.session_ids.fetch_add(1, Ordering::Relaxed) + 1,
        }
    }

    fn spawn_session(&self, ctx: SessionCtx, run: impl FnOnce(SessionCtx) + Send + 'static) {
        let handle = std::thread::Builder::new()
            .name(format!("artsparse-session-{}", ctx.session_id))
            .spawn(move || run(ctx))
            .expect("spawning a session thread");
        self.sessions
            .lock()
            .expect("session list lock")
            .push(handle);
    }
}

const ACCEPT_POLL: Duration = Duration::from_millis(25);

fn tcp_accept_loop(listener: &TcpListener, ctx: &AcceptCtx) {
    while !ctx.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, peer)) => {
                let timeout = ctx.read_timeout;
                let session_ctx = ctx.session_ctx(format!("tcp:{peer}"));
                ctx.spawn_session(session_ctx, move |sctx| {
                    serve_tcp(stream, timeout, sctx);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn serve_tcp(stream: TcpStream, timeout: Duration, ctx: SessionCtx) {
    if stream.set_nonblocking(false).is_err() || stream.set_read_timeout(Some(timeout)).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    run_session(ctx, BufReader::new(read_half), stream);
}

#[cfg(unix)]
fn unix_accept_loop(listener: &std::os::unix::net::UnixListener, ctx: &AcceptCtx) {
    while !ctx.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let timeout = ctx.read_timeout;
                let id = ctx.session_ids.load(Ordering::Relaxed) + 1;
                let session_ctx = ctx.session_ctx(format!("unix:{id}"));
                ctx.spawn_session(session_ctx, move |sctx| {
                    if stream.set_nonblocking(false).is_err()
                        || stream.set_read_timeout(Some(timeout)).is_err()
                    {
                        return;
                    }
                    let Ok(read_half) = stream.try_clone() else {
                        return;
                    };
                    run_session(sctx, BufReader::new(read_half), stream);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Mirror the server metrics into an exporter-compatible directory:
/// atomically replace `metrics.prom`, append one snapshot line to
/// `metrics.jsonl`, append fresh journal events to `journal.jsonl`.
fn publish_tick(dir: &Path, metrics: &ServerMetrics, quotas: &QuotaBook) -> std::io::Result<()> {
    use std::fs::OpenOptions;
    let snapshot = metrics.snapshot(quotas);
    let prom = artsparse_metrics::exposition::render(&snapshot);
    let tmp = dir.join(format!("{METRICS_PROM}.tmp"));
    std::fs::write(&tmp, prom)?;
    std::fs::rename(&tmp, dir.join(METRICS_PROM))?;

    let mut series = OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join(METRICS_JSONL))?;
    let line =
        serde_json::to_string(&snapshot).map_err(|e| std::io::Error::other(e.to_string()))?;
    writeln!(series, "{line}")?;

    let events = metrics.journal.drain_new();
    if !events.is_empty() {
        let mut journal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(JOURNAL_JSONL))?;
        for event in &events {
            let line =
                serde_json::to_string(event).map_err(|e| std::io::Error::other(e.to_string()))?;
            writeln!(journal, "{line}")?;
        }
    }
    Ok(())
}

/// A running server. Dropping the handle drains and stops everything;
/// call [`ServerHandle::shutdown`] to do it explicitly and observe
/// drain errors.
#[derive(Debug)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    shards: Vec<Sender<ShardCmd>>,
    shard_handles: Vec<std::thread::JoinHandle<()>>,
    accept_handles: Vec<std::thread::JoinHandle<()>>,
    session_handles: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    publisher: Option<std::thread::JoinHandle<()>>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
    shutdown_rx: Receiver<()>,
    // Keeps `wait()` blocking until a session's SHUTDOWN, not until the
    // last session closes.
    _shutdown_tx: Sender<()>,
    metrics: Arc<ServerMetrics>,
    quotas: QuotaBook,
    finished: bool,
}

/// What a graceful shutdown drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Datasets flushed and retired across all shards.
    pub datasets: usize,
    /// Datasets whose drain failed (flush error, stuck device).
    pub errors: usize,
}

impl ServerHandle {
    /// The bound TCP address (useful with port `0`).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The bound Unix socket path.
    pub fn unix_path(&self) -> Option<&Path> {
        self.unix_path.as_deref()
    }

    /// Render the current Prometheus exposition (same text as the
    /// `METRICS` command and the published `metrics.prom`).
    pub fn render_metrics(&self) -> String {
        self.metrics.render(&self.quotas)
    }

    /// Block until a session issues `SHUTDOWN` (or the server stops for
    /// any other reason).
    pub fn wait(&self) {
        if self.stop.load(Ordering::SeqCst) {
            return;
        }
        let _ = self.shutdown_rx.recv();
    }

    /// Gracefully stop: refuse new connections, let sessions finish,
    /// drain every shard through `StorageEngine::shutdown`, publish one
    /// final metrics tick. Idempotent.
    pub fn shutdown(&mut self) -> DrainReport {
        if self.finished {
            return DrainReport {
                datasets: 0,
                errors: 0,
            };
        }
        self.finished = true;
        self.stop.store(true, Ordering::SeqCst);
        for h in self.accept_handles.drain(..) {
            let _ = h.join();
        }
        let sessions: Vec<_> = {
            let mut guard = self.session_handles.lock().expect("session list lock");
            guard.drain(..).collect()
        };
        for h in sessions {
            let _ = h.join();
        }

        let mut report = DrainReport {
            datasets: 0,
            errors: 0,
        };
        for tx in &self.shards {
            let (reply_tx, reply_rx) = mpsc::channel();
            if tx.send(ShardCmd::Drain { reply: reply_tx }).is_err() {
                report.errors += 1;
                continue;
            }
            match reply_rx.recv() {
                Ok(ShardReply::Drained { datasets, errors }) => {
                    report.datasets += datasets;
                    report.errors += errors;
                }
                _ => report.errors += 1,
            }
        }
        self.shards.clear();
        for h in self.shard_handles.drain(..) {
            let _ = h.join();
        }

        if let Some(h) = self.publisher.take() {
            h.thread().unpark();
            let _ = h.join();
        }
        if report.errors > 0 {
            self.metrics.journal_warn(
                "drain_errors",
                format!("{} dataset(s) failed to drain", report.errors),
                0,
            );
        }
        self.metrics.journal_session(
            "server_stopped",
            format!("drained {} dataset(s)", report.datasets),
            0,
        );
        #[cfg(unix)]
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
        report
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, Write};

    #[test]
    fn starts_and_stops_without_listeners() {
        let mut handle = Server::start(ServerConfig::default(), MemFactory).unwrap();
        assert!(handle.tcp_addr().is_none());
        let report = handle.shutdown();
        assert_eq!(
            report,
            DrainReport {
                datasets: 0,
                errors: 0
            }
        );
        // Idempotent.
        handle.shutdown();
    }

    #[test]
    fn tcp_round_trip_on_an_ephemeral_port() {
        let config = ServerConfig {
            tcp: Some("127.0.0.1:0".into()),
            ..ServerConfig::default()
        };
        let mut handle = Server::start(config, MemFactory).unwrap();
        let addr = handle.tcp_addr().expect("bound");
        let stream = std::net::TcpStream::connect(addr).unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let mut write = stream;
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("OK artsparse/1 ready"), "{line}");
        write
            .write_all(b"HELLO t\nCREATE d 4x4\nPUT d 1\n1 1 5.5\nGET d 1 1\nQUIT\n")
            .unwrap();
        let mut replies = String::new();
        for _ in 0..5 {
            let mut l = String::new();
            reader.read_line(&mut l).unwrap();
            replies.push_str(&l);
        }
        assert!(replies.contains("OK found=true value=5.5"), "{replies}");
        assert!(replies.ends_with("OK bye\n"), "{replies}");
        let report = handle.shutdown();
        assert_eq!(report.errors, 0);
        assert_eq!(report.datasets, 1);
    }
}
