//! End-to-end protocol tests: real sockets, concurrent sessions,
//! multi-shard routing, quotas, typed load shedding, graceful drain,
//! and the PROTOCOL.md ↔ implementation sync check.

use artsparse_core::FormatKind;
use artsparse_server::protocol::{ErrorCode, COMMANDS};
use artsparse_server::quota::Quota;
use artsparse_server::{BackendFactory, FsFactory, MemFactory, Server, ServerConfig};
use artsparse_storage::{
    EngineConfig, FailingBackend, FsBackend, HealthConfig, IngestConfig, MemBackend, RetryPolicy,
    StorageEngine, StorageError,
};
use artsparse_tensor::{CoordBuffer, Shape};
use std::io::{BufRead, BufReader, Read, Write};
use std::sync::Arc;

/// A line-oriented test client over any stream transport.
struct Client {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
}

impl Client {
    fn tcp(addr: std::net::SocketAddr) -> Client {
        let stream = std::net::TcpStream::connect(addr).expect("connect");
        let reader = Box::new(stream.try_clone().expect("clone")) as Box<dyn Read + Send>;
        let mut c = Client {
            reader: BufReader::new(reader),
            writer: Box::new(stream),
        };
        assert!(c.line().starts_with("OK artsparse/1 ready"), "greeting");
        c
    }

    #[cfg(unix)]
    fn unix(path: &std::path::Path) -> Client {
        let stream = std::os::unix::net::UnixStream::connect(path).expect("connect unix");
        let reader = Box::new(stream.try_clone().expect("clone")) as Box<dyn Read + Send>;
        let mut c = Client {
            reader: BufReader::new(reader),
            writer: Box::new(stream),
        };
        assert!(c.line().starts_with("OK artsparse/1 ready"), "greeting");
        c
    }

    fn line(&mut self) -> String {
        let mut l = String::new();
        self.reader.read_line(&mut l).expect("read line");
        l.trim_end().to_string()
    }

    /// Send raw text (may be several lines) and read one status line.
    fn send(&mut self, text: &str) -> String {
        self.writer.write_all(text.as_bytes()).expect("write");
        self.writer.write_all(b"\n").expect("write");
        self.writer.flush().expect("flush");
        self.line()
    }

    /// Read `n` payload lines after a status line.
    fn payload(&mut self, n: usize) -> Vec<String> {
        (0..n).map(|_| self.line()).collect()
    }
}

fn server(config: ServerConfig) -> artsparse_server::ServerHandle {
    Server::start(config, MemFactory).expect("start server")
}

fn tcp_config() -> ServerConfig {
    ServerConfig {
        tcp: Some("127.0.0.1:0".into()),
        ..ServerConfig::default()
    }
}

#[test]
fn put_acked_in_one_session_is_readable_from_another() {
    let mut handle = server(tcp_config());
    let addr = handle.tcp_addr().unwrap();

    let mut a = Client::tcp(addr);
    assert_eq!(a.send("HELLO acme"), "OK tenant=acme proto=artsparse/1");
    assert_eq!(a.send("CREATE grid 16x16"), "OK created=grid existed=false");
    assert!(a
        .send("PUT grid 2\n1 2 3.5\n4 5 -1.25")
        .starts_with("OK acked=2"));

    let mut b = Client::tcp(addr);
    assert_eq!(b.send("HELLO acme"), "OK tenant=acme proto=artsparse/1");
    assert_eq!(b.send("GET grid 1 2"), "OK found=true value=3.5");

    // Streaming ingest acked in B is immediately visible to A (the
    // engine snapshots the write buffer on reads), before any flush.
    assert_eq!(b.send("INGEST grid 1\n7 7 9"), "OK acked=1");
    assert_eq!(a.send("GET grid 7 7"), "OK found=true value=9");

    // Tenants are namespaces: the same dataset name elsewhere is empty.
    let mut c = Client::tcp(addr);
    assert_eq!(c.send("HELLO other"), "OK tenant=other proto=artsparse/1");
    assert!(c.send("GET grid 1 2").starts_with("ERR NO_DATASET"));

    handle.shutdown();
}

#[cfg(unix)]
#[test]
fn unix_and_tcp_sessions_share_the_same_shards() {
    let dir = tempfile::tempdir().unwrap();
    let socket = dir.path().join("artsparse.sock");
    let config = ServerConfig {
        tcp: Some("127.0.0.1:0".into()),
        unix: Some(socket.clone()),
        ..ServerConfig::default()
    };
    let mut handle = server(config);

    let mut tcp = Client::tcp(handle.tcp_addr().unwrap());
    tcp.send("HELLO t");
    tcp.send("CREATE d 8x8");
    assert!(tcp.send("PUT d 1\n3 3 42").starts_with("OK acked=1"));

    let mut unix = Client::unix(&socket);
    unix.send("HELLO t");
    assert_eq!(unix.send("GET d 3 3"), "OK found=true value=42");

    handle.shutdown();
    assert!(!socket.exists(), "socket file must be removed on shutdown");
}

#[test]
fn datasets_hash_across_multiple_shards() {
    let config = ServerConfig {
        shards: 4,
        ..tcp_config()
    };
    let mut handle = server(config);
    let mut c = Client::tcp(handle.tcp_addr().unwrap());
    c.send("HELLO t");
    for i in 0..10 {
        assert!(c
            .send(&format!("CREATE d{i} 4x4"))
            .starts_with("OK created"));
    }
    let status = c.send("STATS");
    let n: usize = status.trim_start_matches("OK lines=").parse().unwrap();
    let payload = c.payload(n);
    assert_eq!(payload.len(), 11, "tenant line + 10 datasets");
    let shards: std::collections::BTreeSet<&str> = payload[1..]
        .iter()
        .map(|l| {
            l.split_whitespace()
                .find(|t| t.starts_with("shard="))
                .expect("shard field")
        })
        .collect();
    assert!(
        shards.len() >= 2,
        "10 datasets must spread across >=2 of 4 shards, got {shards:?}"
    );
    handle.shutdown();
}

#[test]
fn quotas_refuse_whole_batches_and_refund_engine_rejections() {
    let config = ServerConfig {
        default_quota: Quota {
            max_points: 10,
            max_bytes: 0,
        },
        ..tcp_config()
    };
    let mut handle = server(config);
    let mut c = Client::tcp(handle.tcp_addr().unwrap());
    c.send("HELLO small");
    c.send("CREATE d 64x64");
    assert!(c
        .send("PUT d 8\n0 0 1\n0 1 1\n0 2 1\n0 3 1\n0 4 1\n0 5 1\n0 6 1\n0 7 1")
        .starts_with("OK acked=8"));
    let refused = c.send("PUT d 3\n1 0 1\n1 1 1\n1 2 1");
    assert!(
        refused.starts_with("ERR QUOTA") && refused.contains("8 of 10"),
        "{refused}"
    );
    // The refused batch charged nothing: two more points still fit.
    assert!(c.send("PUT d 2\n1 0 1\n1 1 1").starts_with("OK acked=2"));
    assert!(c.send("PUT d 1\n2 0 1").starts_with("ERR QUOTA"));
    // A batch the ENGINE rejects (unknown dataset) is refunded too.
    let mut other = Client::tcp(handle.tcp_addr().unwrap());
    other.send("HELLO small2");
    assert!(other
        .send("PUT nope 1\n0 0 1")
        .starts_with("ERR NO_DATASET"));
    assert!(other.send("CREATE d 8x8").starts_with("OK created"));
    assert!(other.send("PUT d 1\n0 0 1").starts_with("OK acked=1"));
    handle.shutdown();
}

#[test]
fn backpressure_surfaces_as_a_typed_protocol_error() {
    let ingest = IngestConfig {
        flush_points: 1 << 30,
        flush_bytes: 1 << 30,
        flush_interval_ms: u64::MAX,
        wal: true,
        max_buffered_bytes: 64, // 8 f64 points
        max_wal_backlog_bytes: 0,
        backpressure_resume_pct: 50,
    };
    let config = ServerConfig {
        engine: EngineConfig::default().with_ingest(ingest),
        scheduler: None,
        ..tcp_config()
    };
    let mut handle = server(config);
    let mut c = Client::tcp(handle.tcp_addr().unwrap());
    c.send("HELLO t");
    c.send("CREATE d 64x64");
    assert!(c
        .send("INGEST d 8\n0 0 1\n0 1 1\n0 2 1\n0 3 1\n0 4 1\n0 5 1\n0 6 1\n0 7 1")
        .starts_with("OK acked=8"));
    let shed = c.send("INGEST d 1\n1 0 1");
    assert!(
        shed.starts_with("ERR BACKPRESSURE"),
        "engine admission control must surface as a typed protocol error: {shed}"
    );
    // The session survives load shedding — the connection is NOT dropped.
    assert_eq!(c.send("GET d 0 0"), "OK found=true value=1");
    // An explicit flush drains the buffer and admission reopens.
    assert!(c.send("FLUSH d").starts_with("OK flushed fragment="));
    assert!(c.send("INGEST d 1\n1 0 1").starts_with("OK acked=1"));
    handle.shutdown();
}

/// Every dataset shares one fault-injected backend the test holds.
struct FailingFactory(Arc<FailingBackend<MemBackend>>);

impl BackendFactory for FailingFactory {
    type Backend = Arc<FailingBackend<MemBackend>>;
    fn open(&self, _key: &str) -> Result<Self::Backend, StorageError> {
        Ok(Arc::clone(&self.0))
    }
}

#[test]
fn write_faults_escalate_to_a_typed_read_only_error() {
    let backend = Arc::new(FailingBackend::new(MemBackend::new()));
    let config = ServerConfig {
        engine: EngineConfig::default()
            .with_write_retry(RetryPolicy::none())
            .with_health(HealthConfig {
                degrade_after: 1,
                read_only_after: 1,
                probe_interval_ms: u64::MAX,
            }),
        scheduler: None,
        ..tcp_config()
    };
    let mut handle = Server::start(config, FailingFactory(Arc::clone(&backend))).unwrap();
    let mut c = Client::tcp(handle.tcp_addr().unwrap());
    c.send("HELLO t");
    c.send("CREATE d 8x8");
    assert!(c.send("PUT d 1\n0 0 1").starts_with("OK acked=1"));

    backend.set_out_of_space(true);
    let first = c.send("PUT d 1\n1 1 2");
    assert!(
        first.starts_with("ERR IO") || first.starts_with("ERR RETRIES"),
        "first failed write reports the device fault: {first}"
    );
    let second = c.send("PUT d 1\n2 2 3");
    assert!(
        second.starts_with("ERR READONLY"),
        "after the health gate trips, writes shed with READONLY: {second}"
    );
    // Reads still serve while the write path is fenced.
    assert_eq!(c.send("GET d 0 0"), "OK found=true value=1");
    let status = c.send("STATS d");
    let n: usize = status.trim_start_matches("OK lines=").parse().unwrap();
    let payload = c.payload(n).join("\n");
    assert!(payload.contains("health=read_only"), "{payload}");
    backend.disarm();
    handle.shutdown();
}

#[test]
fn graceful_drain_persists_acked_ingest_to_disk() {
    let dir = tempfile::tempdir().unwrap();
    let config = tcp_config();
    let mut handle = Server::start(config, FsFactory::new(dir.path())).unwrap();
    let mut c = Client::tcp(handle.tcp_addr().unwrap());
    c.send("HELLO t");
    c.send("CREATE d 16x16");
    // Acked but never flushed: drain must group-commit it.
    assert_eq!(c.send("INGEST d 3\n1 1 10\n2 2 20\n3 3 30"), "OK acked=3");
    drop(c);
    let report = handle.shutdown();
    assert_eq!((report.datasets, report.errors), (1, 0), "{report:?}");

    // Reopen the dataset directly from its directory.
    let backend = FsBackend::new(dir.path().join("t/d")).unwrap();
    let engine = StorageEngine::open_with(
        backend,
        FormatKind::Coo,
        Shape::new(vec![16, 16]).unwrap(),
        8,
        EngineConfig::default(),
    )
    .unwrap();
    let mut queries = CoordBuffer::new(2);
    for c in [[1u64, 1], [2, 2], [3, 3]] {
        queries.push(&c).unwrap();
    }
    let values = engine.read_values::<f64>(&queries).unwrap();
    assert_eq!(values, vec![Some(10.0), Some(20.0), Some(30.0)]);
    let stats = engine.stats().unwrap();
    assert!(stats.fragments >= 1, "drain committed a fragment");
    assert_eq!(stats.wal_backlog_bytes, 0, "drain retired the WAL");
    drop(engine);

    // A restarted server re-attaches lazily: the first CREATE with the
    // original shape reopens the store and reports existed=true, and
    // every previously acked point is readable.
    let mut handle = Server::start(tcp_config(), FsFactory::new(dir.path())).unwrap();
    let mut c = Client::tcp(handle.tcp_addr().unwrap());
    c.send("HELLO t");
    assert_eq!(
        c.send("GET d 1 1"),
        "ERR NO_DATASET dataset \"d\" has not been created; use CREATE"
    );
    assert_eq!(c.send("CREATE d 16x16"), "OK created=d existed=true");
    assert_eq!(c.send("GET d 2 2"), "OK found=true value=20");
    drop(c);
    handle.shutdown();
}

#[test]
fn shutdown_command_drains_and_unblocks_wait() {
    let mut handle = server(tcp_config());
    let mut c = Client::tcp(handle.tcp_addr().unwrap());
    c.send("HELLO t");
    c.send("CREATE d 4x4");
    assert!(c.send("PUT d 1\n0 0 1").starts_with("OK acked=1"));
    assert_eq!(c.send("SHUTDOWN"), "OK draining");
    handle.wait(); // returns because SHUTDOWN signalled
                   // Post-drain commands get a typed refusal or EOF, never a hang.
    c.writer.write_all(b"PING\n").unwrap();
    c.writer.flush().unwrap();
    let mut reply = String::new();
    let _ = c.reader.read_line(&mut reply);
    assert!(
        reply.is_empty() || reply.starts_with("ERR SHUTTING_DOWN"),
        "{reply:?}"
    );
    let report = handle.shutdown();
    assert_eq!(report.errors, 0);
}

#[test]
fn concurrent_tenant_sessions_do_not_interfere() {
    let config = ServerConfig {
        shards: 4,
        ..tcp_config()
    };
    let mut handle = server(config);
    let addr = handle.tcp_addr().unwrap();
    let workers: Vec<_> = (0..4)
        .map(|w| {
            std::thread::spawn(move || {
                let mut c = Client::tcp(addr);
                c.send(&format!("HELLO tenant{w}"));
                c.send("CREATE d 32x32");
                for i in 0..20u64 {
                    let status = c.send(&format!(
                        "INGEST d 1\n{} {} {}",
                        i % 32,
                        i / 32,
                        w * 100 + 1
                    ));
                    assert!(status.starts_with("OK acked=1"), "{status}");
                }
                // Every tenant sees exactly its own value at (0, 0).
                assert_eq!(
                    c.send("GET d 0 0"),
                    format!("OK found=true value={}", w * 100 + 1)
                );
                c.send("QUIT");
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    handle.shutdown();
}

#[test]
fn metrics_command_exposes_server_series_over_the_wire() {
    let mut handle = server(tcp_config());
    let mut c = Client::tcp(handle.tcp_addr().unwrap());
    c.send("HELLO t");
    c.send("CREATE d 4x4");
    c.send("PUT d 1\n0 0 1");
    let status = c.send("METRICS");
    let n: usize = status.trim_start_matches("OK lines=").parse().unwrap();
    let body = c.payload(n).join("\n");
    let doc = artsparse_metrics::exposition::parse(&body).expect("strict Prometheus parse");
    assert!(doc.value("artsparse_server_sessions_open").unwrap_or(0.0) >= 1.0);
    assert!(doc.value("artsparse_server_commands_total").unwrap_or(0.0) >= 2.0);
    assert_eq!(doc.value("artsparse_server_datasets"), Some(1.0));
    handle.shutdown();
}

/// PROTOCOL.md is the spec; [`COMMANDS`] and [`ErrorCode::ALL`] are the
/// implementation. This test pins them together: adding a command or an
/// error code without documenting it fails CI, and vice versa the spec
/// cannot describe commands that do not exist (names are checked
/// exactly).
#[test]
fn protocol_md_documents_every_command_and_error_code() {
    let spec = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../PROTOCOL.md"))
        .expect("PROTOCOL.md must exist at the repository root");
    for command in COMMANDS {
        assert!(
            spec.contains(&format!("### `{}`", command.name)),
            "PROTOCOL.md must document command {} with a '### `{}`' heading",
            command.name,
            command.name
        );
        assert!(
            spec.contains(command.syntax),
            "PROTOCOL.md must quote the exact syntax {:?}",
            command.syntax
        );
    }
    for code in ErrorCode::ALL {
        assert!(
            spec.contains(&format!("`{}`", code.name())),
            "PROTOCOL.md must document error code {}",
            code.name()
        );
    }
    assert!(
        spec.contains("artsparse/1"),
        "PROTOCOL.md must state the protocol version"
    );
}
