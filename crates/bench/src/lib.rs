//! # artsparse-benches
//!
//! Hosts the `cargo bench` targets; the figure/table regeneration logic
//! lives in `artsparse-harness`. Bench groups under `benches/`:
//!
//! * `write_time`, `read_time`, `file_size` — the paper's Fig. 3/5/4
//!   metrics per organization;
//! * `complexity` — Table I cost-model scaling checks;
//! * `ablation` — encoding ablations (delta/varint/prefix toggles);
//! * `read_pipeline` — fragment read path (cache, batching, retries);
//! * `par_scaling` — build and batched-read throughput at 1/2/4/8
//!   compute threads through `artsparse_tensor::par` (see
//!   EXPERIMENTS.md for the recorded table and the single-core caveat).
//!
//! Set `BENCH_JSON_DIR` to make the vendored Criterion shim write one
//! `BENCH_<group>.json` summary per group.

#![warn(missing_docs)]
