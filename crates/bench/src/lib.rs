//! # artsparse-benches
//!
//! Shared helpers for the Criterion benchmarks in `benches/`. The actual
//! figure/table regeneration logic lives in `artsparse-harness`; this crate
//! only hosts the `cargo bench` targets and small setup utilities.
