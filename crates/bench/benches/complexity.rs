//! Table I bench — build/read scaling with n, per organization.
//!
//! Criterion's throughput view makes the asymptotics visible: with
//! `Throughput::Elements(n)`, a flat per-element time across the sweep
//! means linear behavior; growth tracks the `log n` sort factor or the
//! `n/min{mᵢ}` scan factor.

use artsparse_core::FormatKind;
use artsparse_metrics::OpCounter;
use artsparse_patterns::rng::SplitMix64;
use artsparse_tensor::{CoordBuffer, Shape};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

fn random_points(shape: &Shape, n: usize, seed: u64) -> CoordBuffer {
    let mut rng = SplitMix64::new(seed);
    let mut buf = CoordBuffer::with_capacity(shape.ndim(), n);
    let mut coord = vec![0u64; shape.ndim()];
    for _ in 0..n {
        for (d, c) in coord.iter_mut().enumerate() {
            *c = rng.next_below(shape.dim(d));
        }
        buf.push(&coord).unwrap();
    }
    buf
}

fn bench_build_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_build_scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    let shape = Shape::cube(3, 64).unwrap();
    let counter = OpCounter::new();
    for n in [1usize << 10, 1 << 12, 1 << 14] {
        let coords = random_points(&shape, n, 42);
        group.throughput(Throughput::Elements(n as u64));
        for format in FormatKind::PAPER_FIVE {
            let org = format.create();
            group.bench_with_input(BenchmarkId::new(format.name(), n), &coords, |b, coords| {
                b.iter(|| org.build(coords, &shape, &counter).unwrap());
            });
        }
    }
    group.finish();
}

fn bench_read_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_read_scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    let shape = Shape::cube(3, 64).unwrap();
    let counter = OpCounter::new();
    let queries = random_points(&shape, 256, 7);
    for n in [1usize << 10, 1 << 12, 1 << 14] {
        let coords = random_points(&shape, n, 42);
        group.throughput(Throughput::Elements(queries.len() as u64));
        for format in FormatKind::PAPER_FIVE {
            let org = format.create();
            let built = org.build(&coords, &shape, &counter).unwrap();
            group.bench_with_input(
                BenchmarkId::new(format.name(), n),
                &built.index,
                |b, index| {
                    b.iter(|| org.read(index, &queries, &counter).unwrap());
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_build_scaling, bench_read_scaling);
criterion_main!(benches);
