//! Fig. 3 bench — WRITE time per organization × pattern × dimensionality.
//!
//! Measures Algorithm 3's algorithmic write path (build + value
//! reorganization + fragment assembly) on an in-memory device, at smoke
//! scale so a full `cargo bench` stays laptop-sized. The harness binary
//! (`artsparse-bench fig3 --scale medium --backend sim`) produces the
//! device-inclusive version.

use artsparse_core::FormatKind;
use artsparse_metrics::OpCounter;
use artsparse_patterns::{Dataset, Pattern, PatternParams, Scale};
use artsparse_storage::{CommitMode, EngineConfig, MemBackend, StorageEngine};
use artsparse_tensor::value::pack;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_write(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_write");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    for pattern in Pattern::ALL {
        for ndim in [2usize, 3, 4] {
            let ds = Dataset::for_scale(pattern, ndim, Scale::Smoke, PatternParams::default());
            let payload = pack(&ds.values());
            for format in FormatKind::PAPER_FIVE {
                let id = BenchmarkId::new(
                    format.name(),
                    format!("{}-{}D-n{}", pattern.name(), ndim, ds.nnz()),
                );
                group.bench_with_input(id, &ds, |b, ds| {
                    b.iter(|| {
                        let engine =
                            StorageEngine::open(MemBackend::new(), format, ds.shape.clone(), 8)
                                .unwrap();
                        engine.write(&ds.coords, &payload).unwrap()
                    });
                });
            }
        }
    }
    group.finish();
}

fn bench_commit_modes(c: &mut Criterion) {
    // Overhead of the crash-safe staged commit (stage + tombstone-free
    // rename) against the direct `put_atomic` publish, on the write hot
    // path the `commit_mode` knob covers.
    let mut group = c.benchmark_group("commit_mode_write");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    let ds = Dataset::for_scale(Pattern::Gsp, 3, Scale::Smoke, PatternParams::default());
    let payload = pack(&ds.values());
    for (label, mode) in [
        ("staged", CommitMode::Staged),
        ("direct", CommitMode::Direct),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let engine = StorageEngine::open_with(
                    MemBackend::new(),
                    FormatKind::GcsrPP,
                    ds.shape.clone(),
                    8,
                    EngineConfig::default().with_commit_mode(mode),
                )
                .unwrap();
                engine.write(&ds.coords, &payload).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_build_only(c: &mut Criterion) {
    // The Table III "Build" phase in isolation: organization construction
    // without device or payload handling.
    let mut group = c.benchmark_group("fig3_build_phase");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    let ds = Dataset::for_scale(Pattern::Msp, 4, Scale::Smoke, PatternParams::default());
    let counter = OpCounter::new();
    for format in FormatKind::PAPER_FIVE {
        let org = format.create();
        group.bench_function(format.name(), |b| {
            b.iter(|| org.build(&ds.coords, &ds.shape, &counter).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_write, bench_commit_modes, bench_build_only);
criterion_main!(benches);
