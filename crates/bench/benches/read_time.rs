//! Fig. 5 bench — READ time per organization × pattern × dimensionality.
//!
//! The query is the paper's §III evaluation read: every cell of the region
//! starting at `(m/2, …)` with size `(m/10, …)`.

use artsparse_core::FormatKind;
use artsparse_metrics::OpCounter;
use artsparse_patterns::{Dataset, Pattern, PatternParams, Scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_read");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    let counter = OpCounter::new();

    for pattern in Pattern::ALL {
        for ndim in [2usize, 3, 4] {
            let ds = Dataset::for_scale(pattern, ndim, Scale::Smoke, PatternParams::default());
            let queries = ds.read_region().to_coords();
            for format in FormatKind::PAPER_FIVE {
                let org = format.create();
                let built = org.build(&ds.coords, &ds.shape, &counter).unwrap();
                let id = BenchmarkId::new(
                    format.name(),
                    format!(
                        "{}-{}D-n{}-q{}",
                        pattern.name(),
                        ndim,
                        ds.nnz(),
                        queries.len()
                    ),
                );
                group.bench_with_input(id, &built.index, |b, index| {
                    b.iter(|| org.read(index, &queries, &counter).unwrap());
                });
            }
        }
    }
    group.finish();
}

fn bench_read_dimensional_crossover(c: &mut Criterion) {
    // The §III.C crossover claim, isolated: GCSR++'s per-query bucket scan
    // grows with d (buckets shrink relative to n) while CSF's descent does
    // not. Same pattern in every dimensionality.
    let mut group = c.benchmark_group("fig5_crossover");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    let counter = OpCounter::new();
    for ndim in [2usize, 3, 4] {
        let ds = Dataset::for_scale(Pattern::Gsp, ndim, Scale::Smoke, PatternParams::default());
        let queries = ds.read_region().to_coords();
        for format in [FormatKind::GcsrPP, FormatKind::Csf] {
            let org = format.create();
            let built = org.build(&ds.coords, &ds.shape, &counter).unwrap();
            let id = BenchmarkId::new(format.name(), format!("{ndim}D"));
            group.bench_with_input(id, &built.index, |b, index| {
                b.iter(|| org.read(index, &queries, &counter).unwrap());
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_read, bench_read_dimensional_crossover);
criterion_main!(benches);
