//! Fig. 4 bench — fragment size per organization × pattern ×
//! dimensionality.
//!
//! Criterion measures time, so this target times the *encode* while also
//! printing the Fig. 4 size table to stderr once, so a `cargo bench` log
//! contains the byte numbers alongside the timings.

use artsparse_core::FormatKind;
use artsparse_metrics::OpCounter;
use artsparse_patterns::{Dataset, Pattern, PatternParams, Scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_encode_and_report_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_encode");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500));
    let counter = OpCounter::new();

    eprintln!("\n[fig4] index bytes per (pattern, dims, format):");
    for pattern in Pattern::ALL {
        for ndim in [2usize, 3, 4] {
            let ds = Dataset::for_scale(pattern, ndim, Scale::Smoke, PatternParams::default());
            let mut sizes = Vec::new();
            for format in FormatKind::PAPER_FIVE {
                let org = format.create();
                let built = org.build(&ds.coords, &ds.shape, &counter).unwrap();
                sizes.push(format!("{}={}", format.name(), built.index.len()));
                let id = BenchmarkId::new(format.name(), format!("{}-{}D", pattern.name(), ndim));
                group.bench_with_input(id, &ds, |b, ds| {
                    b.iter(|| {
                        org.build(&ds.coords, &ds.shape, &counter)
                            .unwrap()
                            .index
                            .len()
                    });
                });
            }
            eprintln!(
                "[fig4] {} {}D (n={}): {}",
                pattern.name(),
                ndim,
                ds.nnz(),
                sizes.join(" ")
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_encode_and_report_sizes);
criterion_main!(benches);
